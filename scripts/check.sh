#!/usr/bin/env bash
# Tier-1 gate for the hetgraph workspace. Run before every commit:
#
#   scripts/check.sh            # full gate
#   scripts/check.sh --fast     # skip the release build (debug test run only)
#   scripts/check.sh --ci       # GitHub Actions ::group:: annotations
#
# Fully offline: external crates resolve to path stand-ins under
# third_party/ (see third_party/README.md), so no step here touches the
# network or the crates.io registry.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fast=0
ci=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    --ci) ci=1 ;;
    *)
        echo "usage: scripts/check.sh [--fast] [--ci]" >&2
        exit 2
        ;;
    esac
done

group() {
    if [ "$ci" -eq 1 ]; then
        echo "::group::$*"
    else
        echo
        echo "==> $*"
    fi
}

endgroup() {
    if [ "$ci" -eq 1 ]; then
        echo "::endgroup::"
    fi
}

step() {
    group "$*"
    "$@"
    endgroup
}

if [ "$fast" -eq 0 ]; then
    step cargo build --release --workspace --all-targets
fi
step cargo test -q --workspace

# cargo fmt --all would also reformat the third_party/ offline stand-ins,
# which track upstream layout; gate only this repo's own sources. Collect
# the file list into an array first: a `... | while read | xargs` pipeline
# reports the exit status of its last segment under pipefail, and a
# filter step that ends on a failed `[ -f ]` test would flag a clean tree
# (or, worse, earlier segments could mask a real rustfmt failure).
group "rustfmt --check (workspace sources, third_party excluded)"
fmt_files=()
while IFS= read -r f; do
    if [ -f "$f" ]; then
        fmt_files+=("$f")
    fi
done < <(git ls-files '*.rs' | grep -v '^third_party/')
rustfmt --check --edition 2021 "${fmt_files[@]}"
endgroup

step cargo clippy --workspace --all-targets -- -D warnings

echo
echo "check.sh: all gates passed"
echo "(optional: scripts/bench.sh regenerates BENCH_partition.json,"
echo " BENCH_engine.json, BENCH_rebalance.json, BENCH_scale.json, and"
echo " BENCH_serve.json when partitioner, engine, rebalancing,"
echo " graph-representation, or serving hot paths change;"
echo " scripts/bench.sh --check gates a fresh run against the"
echo " committed baselines)"
