#!/usr/bin/env bash
# Tier-1 gate for the hetgraph workspace. Run before every commit:
#
#   scripts/check.sh            # full gate
#   scripts/check.sh --fast     # skip the release build (debug test run only)
#
# Fully offline: external crates resolve to path stand-ins under
# third_party/ (see third_party/README.md), so no step here touches the
# network or the crates.io registry.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fast=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    *)
        echo "usage: scripts/check.sh [--fast]" >&2
        exit 2
        ;;
    esac
done

step() {
    echo
    echo "==> $*"
    "$@"
}

if [ "$fast" -eq 0 ]; then
    step cargo build --release --workspace --all-targets
fi
step cargo test -q --workspace

# cargo fmt --all would also reformat the third_party/ offline stand-ins,
# which track upstream layout; gate only this repo's own sources.
echo
echo "==> rustfmt --check (workspace sources, third_party excluded)"
git ls-files '*.rs' | grep -v '^third_party/' \
    | while read -r f; do [ -f "$f" ] && printf '%s\n' "$f"; done \
    | xargs rustfmt --check --edition 2021

step cargo clippy --workspace --all-targets -- -D warnings

echo
echo "check.sh: all gates passed"
echo "(optional: scripts/bench.sh regenerates BENCH_partition.json when"
echo " partitioner hot paths change)"
