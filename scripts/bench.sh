#!/usr/bin/env bash
# Regenerate or verify the committed perf baselines:
# BENCH_partition.json (partitioner throughput), BENCH_engine.json
# (superstep-kernel throughput), BENCH_rebalance.json (static CCR
# placement vs CCR + mid-run migration under a scripted slowdown),
# BENCH_scale.json (bounded-RSS pipeline: resident bytes/edge and peak
# RSS for the plain vs compact representations), and BENCH_serve.json
# (query serving: simulated p50/p99 latency, throughput, and the
# 1/2/4-thread batch-composition digest).
#
#   scripts/bench.sh            # release build + all experiments at --scale 1
#   scripts/bench.sh --scale 8  # quicker smoke run (numbers not committed)
#   scripts/bench.sh --check    # re-measure and gate against the committed
#                               # baselines (wall-clock-tolerant; this is
#                               # what CI's bench-regression job runs)
#
# Fully offline, like scripts/check.sh: external crates resolve to path
# stand-ins under third_party/, so nothing here touches the network.
# The JSON lands at the repository root; commit it when the partitioner
# or engine hot paths change intentionally, with the speedup noted in
# the message.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

scale=1
check=0
while [ "$#" -gt 0 ]; do
    case "$1" in
    --scale)
        scale="${2:?--scale needs a value}"
        shift 2
        ;;
    --check)
        check=1
        shift
        ;;
    *)
        echo "usage: scripts/bench.sh [--scale N] [--check]" >&2
        exit 2
        ;;
    esac
done

# exp_scale interprets --scale against its own 500M-edge production-target
# spec, so it runs at 10x the figure scale: the default scale=1 gives the
# committed ~50M-edge scale-10 run, and smoke runs shrink proportionally.
scale_scale=$((scale * 10))

echo "==> cargo build --release -p hetgraph-bench --bin exp_partition --bin exp_engine --bin exp_rebalance --bin exp_scale --bin exp_serve"
cargo build --release -p hetgraph-bench --bin exp_partition --bin exp_engine --bin exp_rebalance --bin exp_scale --bin exp_serve

if [ "$check" -eq 1 ]; then
    echo "==> exp_partition --scale $scale --check BENCH_partition.json"
    ./target/release/exp_partition --scale "$scale" --check BENCH_partition.json
    echo
    echo "==> exp_engine --scale $scale --check BENCH_engine.json"
    ./target/release/exp_engine --scale "$scale" --check BENCH_engine.json
    echo
    echo "==> exp_rebalance --scale $scale --check BENCH_rebalance.json"
    ./target/release/exp_rebalance --scale "$scale" --check BENCH_rebalance.json
    echo
    # The memory gate: re-runs the scale pipeline at the committed
    # baseline's own scale and fails on RSS-per-edge regressions.
    echo "==> exp_scale --scale $scale_scale --check BENCH_scale.json"
    ./target/release/exp_scale --scale "$scale_scale" --check BENCH_scale.json
    echo
    # The serving gate: simulated p99 latency, throughput, and the
    # thread-sweep composition digest against the committed baseline.
    echo "==> exp_serve --scale $scale --check BENCH_serve.json"
    ./target/release/exp_serve --scale "$scale" --check BENCH_serve.json
    echo
    echo "bench.sh: checks passed against BENCH_partition.json, BENCH_engine.json, BENCH_rebalance.json, BENCH_scale.json, and BENCH_serve.json"
else
    echo "==> exp_partition --scale $scale --out ."
    ./target/release/exp_partition --scale "$scale" --out .
    echo
    echo "==> exp_engine --scale $scale --out ."
    ./target/release/exp_engine --scale "$scale" --out .
    echo
    echo "==> exp_rebalance --scale $scale --out ."
    ./target/release/exp_rebalance --scale "$scale" --out .
    echo
    echo "==> exp_scale --scale $scale_scale --out ."
    ./target/release/exp_scale --scale "$scale_scale" --out .
    echo
    echo "==> exp_serve --scale $scale --out ."
    ./target/release/exp_serve --scale "$scale" --out .
    echo
    echo "bench.sh: wrote BENCH_partition.json, BENCH_engine.json, BENCH_rebalance.json, BENCH_scale.json, and BENCH_serve.json (scale $scale)"
fi
