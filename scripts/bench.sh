#!/usr/bin/env bash
# Regenerate the committed partition perf baseline, BENCH_partition.json.
#
#   scripts/bench.sh            # release build + exp_partition --scale 1
#   scripts/bench.sh --scale 8  # quicker smoke run (numbers not committed)
#
# Fully offline, like scripts/check.sh: external crates resolve to path
# stand-ins under third_party/, so nothing here touches the network.
# The JSON lands at the repository root; commit it when the partitioner
# hot paths change intentionally, with the speedup noted in the message.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

scale=1
while [ "$#" -gt 0 ]; do
    case "$1" in
    --scale)
        scale="${2:?--scale needs a value}"
        shift 2
        ;;
    *)
        echo "usage: scripts/bench.sh [--scale N]" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo build --release -p hetgraph-bench --bin exp_partition"
cargo build --release -p hetgraph-bench --bin exp_partition

echo "==> exp_partition --scale $scale --out ."
./target/release/exp_partition --scale "$scale" --out .

echo
echo "bench.sh: wrote BENCH_partition.json (scale $scale)"
