//! Offline stand-in for `serde_json` (see `third_party/README.md`).
//!
//! Pretty-prints the [`serde::Value`] data model with the real
//! serde_json's conventions: 2-space indent, `", "`-free compact
//! brackets for empty containers, `\uXXXX` escapes for control
//! characters, and non-finite floats rendered as `null`. [`from_str`]
//! parses JSON text back into a [`Value`] tree (recursive descent; used
//! by the bench-regression gate to read committed baselines).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stand-in serializer is infallible, so this
/// exists only to keep `Result`-shaped call sites compiling.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value).map(|s| {
        // Compact form is only used in tests/debugging; derive it by
        // re-walking, not string surgery.
        let mut out = String::new();
        write_compact(&mut out, &value.to_value());
        let _ = s;
        out
    })
}

/// Parse JSON text into a [`Value`] tree.
///
/// Numbers parse as `UInt` (no sign, no `.`/`e`), `Int` (leading `-`, no
/// `.`/`e`), or `Float` (anything with a fraction or exponent) — the same
/// variant split the serializer produces, so parse→print round-trips.
/// Trailing non-whitespace after the document is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // The serializer only emits \u escapes for
                            // control chars < 0x20, so surrogate pairs
                            // never round-trip here; lone surrogates are
                            // simply rejected.
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is a &str, so
                    // slicing at a char boundary is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("bad number"))
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
        other => write_value(out, other, 0),
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Format a finite `f64` as its canonical JSON text.
///
/// This is the stability contract the metrics snapshots depend on:
///
/// - **Shortest round-trip**: the text parses back (via [`from_str`] or
///   `str::parse::<f64>`) to the *bit-identical* float, including `-0.0`.
/// - **Variant-stable**: the text always contains a `.` or an exponent, so
///   [`from_str`] reads it back as `Value::Float` — never `Int`/`UInt` —
///   and re-printing produces the same bytes. `print → parse → print` is
///   the identity for every finite `f64` (pinned by the round-trip tests
///   below and exercised against random bit patterns).
/// - **Canonical exponent form**: lowercase `e`, no `+` sign, no leading
///   zeros — the form Rust's shortest-round-trip formatter emits. Inputs
///   in other accepted spellings (`1E5`, `1e+5`) parse fine and
///   canonicalize on the first re-print.
///
/// Non-finite values have no JSON spelling; [`write_float`] maps them to
/// `null` (matching real serde_json), which is why snapshot formats in
/// this workspace encode infinities out-of-band (e.g. histogram overflow
/// counts) instead of serializing them.
pub fn format_float(f: f64) -> String {
    // `{:?}` is Rust's shortest-round-trip formatter: it keeps the
    // trailing `.0` on integral floats (matching serde_json's ryu output)
    // and guarantees `text.parse::<f64>() == f` bit-for-bit.
    let text = format!("{f:?}");
    debug_assert!(
        text.parse::<f64>().map(f64::to_bits) == Ok(f.to_bits()),
        "float text {text:?} must round-trip to the identical bits"
    );
    text
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format_float(f));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b".into())),
            (
                "xs".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"a\\\"b\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_keep_decimal_point_and_nan_is_null() {
        assert_eq!(to_string_pretty(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn compact_matches_structure() {
        let v = vec![(1u32, "x".to_string())];
        assert_eq!(to_string(&v).unwrap(), "[[1,\"x\"]]");
    }

    #[test]
    fn parses_scalars_with_the_serializer_variant_split() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" 42 ").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        assert_eq!(from_str("\"\\u0041\"").unwrap(), Value::Str("A".into()));
    }

    #[test]
    fn parses_nested_containers() {
        let v = from_str("{\"xs\": [1, -2, 3.5], \"m\": {\"k\": \"v\"}, \"e\": []}").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![
                (
                    "xs".into(),
                    Value::Seq(vec![Value::UInt(1), Value::Int(-2), Value::Float(3.5)])
                ),
                (
                    "m".into(),
                    Value::Map(vec![("k".into(), Value::Str("v".into()))])
                ),
                ("e".into(), Value::Seq(vec![])),
            ])
        );
    }

    #[test]
    fn pretty_print_round_trips_through_from_str() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b\n".into())),
            ("wall_s".into(), Value::Float(0.125)),
            ("machines".into(), Value::UInt(16)),
            ("ok".into(), Value::Bool(true)),
            ("rows".into(), Value::Seq(vec![Value::Int(-1), Value::Null])),
        ]);
        let printed = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&printed).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"open",
            "1 2",
            "{\"a\":}",
            "nul!",
            "[1]]",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }
}
