//! Offline stand-in for `serde_json` (see `third_party/README.md`).
//!
//! Pretty-prints the [`serde::Value`] data model with the real
//! serde_json's conventions: 2-space indent, `", "`-free compact
//! brackets for empty containers, `\uXXXX` escapes for control
//! characters, and non-finite floats rendered as `null`.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The stand-in serializer is infallible, so this
/// exists only to keep `Result`-shaped call sites compiling.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value).map(|s| {
        // Compact form is only used in tests/debugging; derive it by
        // re-walking, not string surgery.
        let mut out = String::new();
        write_compact(&mut out, &value.to_value());
        let _ = s;
        out
    })
}

fn write_value(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_value(out, val, indent + 1);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
        other => write_value(out, other, 0),
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` keeps the trailing `.0` on integral floats, matching
        // serde_json's ryu output for the values this repo emits.
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Seq(vec![Value::UInt(1), Value::UInt(2)])),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(
            s,
            "{\n  \"name\": \"a\\\"b\",\n  \"xs\": [\n    1,\n    2\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_keep_decimal_point_and_nan_is_null() {
        assert_eq!(to_string_pretty(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string_pretty(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn compact_matches_structure() {
        let v = vec![(1u32, "x".to_string())];
        assert_eq!(to_string(&v).unwrap(), "[[1,\"x\"]]");
    }
}
