//! Offline stand-in for `proptest` (see `third_party/README.md`).
//!
//! Implements the subset this workspace uses: range / tuple /
//! `collection::vec` / `any` strategies, `prop_map`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros. Sampling is
//! driven by a splitmix64 PRNG seeded from the test's module path, so
//! every run of a given test sees the same case sequence on every
//! platform. There is no shrinking: a failing case reports its inputs
//! via the assertion message and the deterministic seed makes it
//! reproducible as-is.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic PRNG (splitmix64) used to drive strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash), so each test gets an
    /// independent but stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejection — the case is skipped.
    Reject(String),
}

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy over every value of `T`, via [`Arbitrary`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! `vec` strategy over an element strategy and a size range.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-low, inclusive-high length bounds.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length in the size range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)+);
                let mut case: u32 = 0;
                let mut rejects: u32 = 0;
                while case < config.cases {
                    let ($($arg,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejects += 1;
                            assert!(
                                rejects < config.cases.saturating_mul(16).max(1024),
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", case, stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(2u32..200), &mut rng);
            assert!((2..200).contains(&v));
            let f = Strategy::sample(&(0.05f64..10.0), &mut rng);
            assert!((0.05..10.0).contains(&f));
            let n = Strategy::sample(&(1usize..=6), &mut rng);
            assert!((1..=6).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::from_name("vecsize");
        let strat = crate::collection::vec(0u64..10, 1..400);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((1..400).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(x in 0u32..50, flag in any::<bool>()) {
            prop_assert!(x < 50);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
            prop_assume!(flag || !flag);
        }
    }
}
