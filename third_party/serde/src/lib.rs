//! Offline stand-in for `serde` (see `third_party/README.md`).
//!
//! The real serde serializes through a visitor (`Serializer`); this
//! stand-in serializes into an owned [`Value`] tree that `serde_json`
//! then prints. That covers every use in this workspace — derived
//! `Serialize` on plain data types fed to `serde_json::to_string_pretty`
//! — with a fraction of the machinery.

// Lets the derive's generated `::serde::` paths resolve inside this
// crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Owned JSON-like data model produced by [`Serialize::to_value`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating-point number (non-finite prints as `null`, as in serde_json).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

/// A type that can serialize itself into the [`Value`] data model.
pub trait Serialize {
    /// Convert to the owned data model.
    fn to_value(&self) -> Value;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);
impl_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Value {
    /// Look up `key` in a [`Value::Map`]; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`, `UInt`, and `Float` all convert; everything
    /// else is `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Unsigned view: `UInt` directly, non-negative `Int` by conversion.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.display().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![(1u32, "a".to_string())];
        assert_eq!(
            v.to_value(),
            Value::Seq(vec![Value::Seq(vec![
                Value::UInt(1),
                Value::Str("a".into())
            ])])
        );
    }

    #[test]
    fn value_accessors_view_the_right_variants() {
        let v = Value::Map(vec![
            ("n".into(), Value::Float(1.5)),
            ("u".into(), Value::UInt(7)),
            ("s".into(), Value::Str("x".into())),
            ("b".into(), Value::Bool(true)),
            ("xs".into(), Value::Seq(vec![Value::Int(-2)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("u").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Value::as_seq).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(
            v.get("xs").unwrap().as_seq().unwrap()[0].as_f64(),
            Some(-2.0)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("n"), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct Row {
            name: String,
            score: f64,
        }
        let v = Row {
            name: "a".into(),
            score: 2.0,
        }
        .to_value();
        assert_eq!(
            v,
            Value::Map(vec![
                ("name".into(), Value::Str("a".into())),
                ("score".into(), Value::Float(2.0)),
            ])
        );
    }

    #[test]
    fn derive_newtype_and_enum() {
        #[derive(Serialize)]
        struct Id(u16);
        #[derive(Serialize)]
        enum Kind {
            A,
            B(u32, u32),
            C { x: u8 },
        }
        assert_eq!(Id(7).to_value(), Value::UInt(7));
        assert_eq!(Kind::A.to_value(), Value::Str("A".into()));
        assert_eq!(
            Kind::B(1, 2).to_value(),
            Value::Map(vec![(
                "B".into(),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)])
            )])
        );
        assert_eq!(
            Kind::C { x: 9 }.to_value(),
            Value::Map(vec![(
                "C".into(),
                Value::Map(vec![("x".into(), Value::UInt(9))])
            )])
        );
    }
}
