//! Offline stand-in for `serde_derive` (see `third_party/README.md`).
//!
//! Implements `#[derive(Serialize)]` by walking the raw `TokenStream` —
//! no `syn`/`quote`, which would themselves need network access to
//! fetch. Supported item shapes (everything this workspace derives on):
//!
//! - structs with named fields → `Value::Map`
//! - newtype structs → the inner value, transparent
//! - multi-field tuple structs → `Value::Seq`
//! - unit structs → `Value::Null`
//! - enums: unit variants → `Value::Str(name)`; newtype variants →
//!   `{"Name": value}`; tuple variants → `{"Name": [..]}`; struct
//!   variants → `{"Name": {..}}` (serde's externally-tagged default)
//!
//! Generic items are rejected with a `compile_error!` rather than
//! silently mis-serialized. `#[derive(Deserialize)]` expands to nothing:
//! the workspace only ever derives it alongside `Serialize` and never
//! deserializes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(src) => src.parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

fn generate(input: TokenStream) -> Result<String, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "offline serde derive does not support generic type `{name}`"
        ));
    }
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!(
            "offline serde derive does not support `where` clauses on `{name}`"
        ));
    }

    let body = match item_kind.as_str() {
        "struct" => struct_body(&name, &tokens[i..])?,
        "enum" => enum_body(&name, &tokens[i..])?,
        other => return Err(format!("cannot derive Serialize for `{other}` items")),
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    ))
}

/// Advance past any `#[...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a field/variant list on top-level commas. Commas inside nested
/// delimiter groups arrive as single `Group` tokens so only `<...>` type
/// arguments need explicit depth tracking.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// First identifier of a field chunk, past attributes and visibility.
fn field_name(chunk: &[TokenTree]) -> Result<String, String> {
    let mut i = 0;
    skip_attrs_and_vis(chunk, &mut i);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected field name, got {other:?}")),
    }
}

fn struct_body(name: &str, rest: &[TokenTree]) -> Result<String, String> {
    match rest.first() {
        // Unit struct: `struct Foo;`
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok("::serde::Value::Null".into()),
        None => Ok("::serde::Value::Null".into()),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = split_top_level(g.stream().into_iter().collect());
            let entries: Vec<String> = fields
                .iter()
                .filter(|c| !c.is_empty())
                .map(|c| {
                    let f = field_name(c)?;
                    Ok(format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))",
                        f
                    ))
                })
                .collect::<Result<_, String>>()?;
            Ok(format!("::serde::Value::Map(vec![{}])", entries.join(", ")))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = split_top_level(g.stream().into_iter().collect())
                .iter()
                .filter(|c| !c.is_empty())
                .count();
            match n {
                0 => Ok("::serde::Value::Seq(vec![])".into()),
                // Newtype structs are transparent, as in real serde.
                1 => Ok("::serde::Serialize::to_value(&self.0)".into()),
                _ => {
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    Ok(format!("::serde::Value::Seq(vec![{}])", items.join(", ")))
                }
            }
        }
        other => Err(format!("unsupported struct `{name}` body: {other:?}")),
    }
}

fn enum_body(name: &str, rest: &[TokenTree]) -> Result<String, String> {
    let group = match rest.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("unsupported enum `{name}` body: {other:?}")),
    };
    let mut arms = Vec::new();
    for chunk in split_top_level(group.stream().into_iter().collect()) {
        if chunk.is_empty() {
            continue;
        }
        let mut i = 0;
        skip_attrs_and_vis(&chunk, &mut i);
        let variant = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name in `{name}`, got {other:?}")),
        };
        i += 1;
        let arm = match chunk.get(i) {
            None => format!("{name}::{variant} => ::serde::Value::Str({variant:?}.to_string()),"),
            // Discriminant (`Variant = 3`): still a unit variant to serde.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                format!("{name}::{variant} => ::serde::Value::Str({variant:?}.to_string()),")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = split_top_level(g.stream().into_iter().collect())
                    .iter()
                    .filter(|c| !c.is_empty())
                    .count();
                let binds: Vec<String> = (0..n).map(|k| format!("f{k}")).collect();
                let payload = if n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{variant}({}) => ::serde::Value::Map(vec![({:?}.to_string(), {payload})]),",
                    binds.join(", "),
                    variant
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields: Vec<String> = split_top_level(g.stream().into_iter().collect())
                    .iter()
                    .filter(|c| !c.is_empty())
                    .map(|c| field_name(c))
                    .collect::<Result<_, String>>()?;
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("({:?}.to_string(), ::serde::Serialize::to_value({f}))", f))
                    .collect();
                format!(
                    "{name}::{variant} {{ {} }} => ::serde::Value::Map(vec![({:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                    fields.join(", "),
                    variant,
                    entries.join(", ")
                )
            }
            other => {
                return Err(format!(
                    "unsupported variant shape `{name}::{variant}`: {other:?}"
                ))
            }
        };
        arms.push(arm);
    }
    Ok(format!(
        "match self {{\n            {}\n        }}",
        arms.join("\n            ")
    ))
}
