//! Offline stand-in for `criterion` (see `third_party/README.md`).
//!
//! Keeps the macro/API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` — and measures with plain
//! `std::time::Instant`. No statistical analysis, HTML reports, or
//! baseline comparison: each benchmark prints its median sample time
//! (and derived throughput) to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration used to derive a rate from the
/// measured time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s as benchmark labels.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, recording
    /// total wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    // Calibration pass: find an iteration count that runs long enough
    // to time reliably (~25ms per sample), capped to keep total
    // benchmark time bounded.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3} Melem/s)", rate_per_s(n, median) / 1e6),
        Throughput::Bytes(n) => format!(
            " ({:.3} MiB/s)",
            rate_per_s(n, median) / (1u64 << 20) as f64
        ),
    });
    println!(
        "{label:<50} {:>12}/iter{}",
        format_duration(median),
        rate.unwrap_or_default()
    );
}

fn rate_per_s(items: u64, per_iter: Duration) -> f64 {
    items as f64 / per_iter.as_secs_f64().max(1e-12)
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Group benchmark functions under one callable, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                runs += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(format_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.00 ms");
    }
}
