//! Algorithm 1: the synthetic power-law proxy-graph generator.
//!
//! Given a vertex count `N` and exponent `α`, the generator:
//!
//! 1. computes the degree pdf `pdf[d] ∝ d^-α` over the support
//!    `d ∈ [1, d_max]`,
//! 2. transforms it into a cdf,
//! 3. draws each vertex's out-degree from the cdf (the paper's
//!    "multinomial(cdf)"), and
//! 4. produces the connected vertices by random hashing, skipping self
//!    loops (the paper's `v = (u + hash) mod N` with the optional
//!    `u != v` check).
//!
//! Everything is seeded, so a (config, seed) pair always generates the
//! identical graph — the property the paper relies on when it says proxies
//! "only need to be generated once".

use hetgraph_core::rng::{hash_combine, Xoshiro256};
use hetgraph_core::{Edge, EdgeList, Graph};

/// Configuration for the power-law generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerLawConfig {
    /// Number of vertices `N`.
    pub num_vertices: u32,
    /// Power-law exponent α (the paper's proxies use 1.95, 2.1, 2.3).
    pub alpha: f64,
    /// Maximum degree in the support. Defaults to `min(N − 1, 100_000)`;
    /// capping bounds the cdf table size without visibly changing the
    /// distribution for α > 1.5.
    pub max_degree: Option<usize>,
    /// Whether to omit self loops (Algorithm 1's optional `u != v` check).
    pub omit_self_loops: bool,
}

impl PowerLawConfig {
    /// Standard configuration for `num_vertices` vertices and exponent
    /// `alpha`, omitting self loops.
    pub fn new(num_vertices: u32, alpha: f64) -> Self {
        PowerLawConfig {
            num_vertices,
            alpha,
            max_degree: None,
            omit_self_loops: true,
        }
    }

    /// Override the degree-support cap.
    pub fn with_max_degree(mut self, d_max: usize) -> Self {
        self.max_degree = Some(d_max);
        self
    }

    /// The effective degree support for this configuration.
    pub fn support(&self) -> usize {
        let natural = (self.num_vertices.saturating_sub(1)) as usize;
        match self.max_degree {
            Some(d) => d.min(natural.max(1)),
            None => natural.clamp(1, 100_000),
        }
    }

    /// Expected number of edges `N · E[d]` for this configuration.
    pub fn expected_edges(&self) -> f64 {
        self.num_vertices as f64 * crate::alpha::expected_avg_degree(self.alpha, self.support())
    }

    /// Generate the graph with the given seed.
    ///
    /// # Panics
    /// Panics if `num_vertices == 0` (an empty proxy is meaningless).
    pub fn generate(&self, seed: u64) -> Graph {
        let expected = self.expected_edges();
        let mut list = EdgeList::with_capacity(self.num_vertices, expected as usize + 16);
        self.for_each_edge_impl(seed, &mut |e| list.push(e));
        Graph::from_edge_list(list)
    }

    /// Emit every edge of `generate(seed)` in order through `f` — the
    /// streaming core both `generate` and the shard writer share, so the
    /// two paths cannot diverge.
    pub(crate) fn for_each_edge_impl(&self, seed: u64, f: &mut dyn FnMut(Edge)) {
        assert!(
            self.num_vertices > 0,
            "power-law generator needs at least one vertex"
        );
        let n = self.num_vertices;
        let d_max = self.support();
        let mut rng = Xoshiro256::new(seed);

        // Steps 1–2: pdf[i] = i^-α, transformed to a cdf. Index 0 of the
        // table corresponds to degree 1. The table only depends on
        // (α, d_max) — not the seed — so multi-seed sweeps share it.
        let cdf = cdf_table(self.alpha, d_max);

        // Step 3–4: per-vertex degree draw, then hashed targets. The target
        // hash mixes the seed so different seeds give different wirings even
        // for the same degree sequence draw order.
        let target_salt = hash_combine(seed, 0x9e3779b97f4a7c15);
        for u in 0..n {
            let degree = rng.sample_cdf(&cdf) + 1; // cdf index 0 == degree 1
            for j in 0..degree {
                let mut v = (hash_combine(target_salt ^ u as u64, j as u64) % n as u64) as u32;
                if self.omit_self_loops && v == u {
                    // Deterministic re-hash; at most a handful of probes.
                    let mut probe = 1u64;
                    while v == u {
                        v = (hash_combine(target_salt ^ u as u64, j as u64 ^ (probe << 32))
                            % n as u64) as u32;
                        probe += 1;
                        if probe > 8 {
                            // Single-vertex graphs can never escape; give up
                            // and drop the edge (cannot happen for n > 1
                            // before probe 8 with overwhelming probability).
                            break;
                        }
                    }
                    if v == u {
                        continue;
                    }
                }
                f(Edge::new(u, v));
            }
        }
    }
}

/// The degree cdf for `(α, d_max)`, memoized process-wide.
///
/// Sweeps generate the same configuration under many seeds (ensemble
/// averages, the partition snapshot fixtures, the experiment matrix), and
/// the O(d_max) `exp`/`ln` table is seed-independent, so it is computed
/// once per distinct `(α, d_max)` pair and shared. α is keyed by its bit
/// pattern: configurations compare by exact f64 value everywhere else
/// too. The cache grows by one `Vec<f64>` (≤ 100 000 entries, the support
/// cap) per distinct configuration, which is bounded by the handful of α
/// values an experiment matrix uses.
fn cdf_table(alpha: f64, d_max: usize) -> std::sync::Arc<Vec<f64>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type Cache = Mutex<HashMap<(u64, usize), Arc<Vec<f64>>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(table) = cache.lock().unwrap().get(&(alpha.to_bits(), d_max)) {
        return Arc::clone(table);
    }
    // Build outside the lock: a racing thread at worst recomputes the
    // same table, and the insert below keeps whichever lands last.
    let mut cdf = Vec::with_capacity(d_max);
    let mut acc = 0.0f64;
    for d in 1..=d_max {
        acc += (-alpha * (d as f64).ln()).exp();
        cdf.push(acc);
    }
    let table = Arc::new(cdf);
    cache
        .lock()
        .unwrap()
        .insert((alpha.to_bits(), d_max), Arc::clone(&table));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::degree::DegreeHistogram;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = PowerLawConfig::new(2_000, 2.1);
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn cdf_table_shared_across_seeds() {
        // Same (α, d_max) → same memoized allocation; different α → a
        // different table with different mass.
        let a = cdf_table(2.17, 500);
        let b = cdf_table(2.17, 500);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let c = cdf_table(1.97, 500);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_ne!(a.last(), c.last());
        let d = cdf_table(2.17, 400);
        assert_eq!(d.len(), 400);
        assert!(!std::sync::Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = PowerLawConfig::new(2_000, 2.1);
        let a = cfg.generate(1);
        let b = cfg.generate(2);
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn edge_count_matches_expectation() {
        let cfg = PowerLawConfig::new(20_000, 2.0);
        let g = cfg.generate(42);
        let expected = cfg.expected_edges();
        let rel = (g.num_edges() as f64 - expected).abs() / expected;
        assert!(rel < 0.1, "edges {} vs expected {expected}", g.num_edges());
    }

    #[test]
    fn no_self_loops_by_default() {
        let g = PowerLawConfig::new(5_000, 1.9).generate(3);
        assert!(g.edges().iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn self_loops_allowed_when_configured() {
        let mut cfg = PowerLawConfig::new(50, 1.5);
        cfg.omit_self_loops = false;
        // With 50 vertices and a dense α, some self loop appears across seeds.
        let found = (0..20).any(|s| cfg.generate(s).edges().iter().any(|e| e.is_self_loop()));
        assert!(found, "expected at least one self loop over 20 seeds");
    }

    #[test]
    fn smaller_alpha_is_denser() {
        let dense = PowerLawConfig::new(10_000, 1.95).generate(9);
        let sparse = PowerLawConfig::new(10_000, 2.3).generate(9);
        assert!(
            dense.num_edges() > sparse.num_edges(),
            "dense {} !> sparse {}",
            dense.num_edges(),
            sparse.num_edges()
        );
    }

    #[test]
    fn degree_distribution_has_power_law_tail() {
        let alpha = 2.2;
        let g = PowerLawConfig::new(50_000, alpha).generate(11);
        let h = DegreeHistogram::out_degrees(&g);
        let fitted = h.fit_alpha_ccdf(2).expect("enough distinct degrees");
        // The out-degree CCDF is a noisy sample; accept a loose band.
        assert!(
            (fitted - alpha).abs() < 0.5,
            "fitted {fitted} too far from {alpha}"
        );
    }

    #[test]
    fn alpha_solver_inverts_generator() {
        // Generate with α, then fit α' from (V, E) alone (the paper's
        // workflow for natural graphs); they should agree closely because
        // the solver models exactly this distribution.
        let cfg = PowerLawConfig::new(30_000, 2.1);
        let g = cfg.generate(5);
        let fit = crate::alpha::fit_alpha_with_support(
            g.num_vertices() as u64,
            g.num_edges() as u64,
            cfg.support(),
        )
        .unwrap();
        assert!(
            (fit.alpha - 2.1).abs() < 0.05,
            "fitted {} vs true 2.1",
            fit.alpha
        );
    }

    #[test]
    fn support_respects_overrides_and_bounds() {
        assert_eq!(PowerLawConfig::new(10, 2.0).support(), 9);
        assert_eq!(PowerLawConfig::new(10, 2.0).with_max_degree(4).support(), 4);
        assert_eq!(PowerLawConfig::new(1_000_000, 2.0).support(), 100_000);
    }

    #[test]
    fn max_degree_is_respected() {
        let g = PowerLawConfig::new(2_000, 1.5)
            .with_max_degree(3)
            .generate(1);
        for v in g.vertices() {
            assert!(g.out_degree(v) <= 3);
        }
    }

    #[test]
    fn generated_graph_validates() {
        assert!(PowerLawConfig::new(3_000, 2.0).generate(0).validate());
    }
}
