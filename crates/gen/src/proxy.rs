//! The deployed synthetic proxy graphs (Table II, bottom rows).
//!
//! The paper deploys three proxies — 3.2 M vertices each, α = 1.95 / 2.1 /
//! 2.3 — which together cover the α range of natural graphs (≈ 1.9–2.4).
//! Profiling runs every application on every proxy on one machine of each
//! group; a new natural graph is then matched to the covering proxy by its
//! fitted α.

use hetgraph_core::Graph;

use crate::alpha::fit_alpha;
use crate::powerlaw::PowerLawConfig;

/// Full-scale vertex count of each deployed proxy (Table II).
pub const FULL_SCALE_VERTICES: u32 = 3_200_000;

/// One synthetic proxy graph definition.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProxyGraph {
    /// Display name (Table II row).
    pub name: String,
    /// Vertex count.
    pub num_vertices: u32,
    /// Power-law exponent.
    pub alpha: f64,
    /// Generation seed.
    pub seed: u64,
    /// Degree-support cap. Proxies at full scale cap degrees at 100 000
    /// (the generator default); a *downscaled* proxy must downscale its cap
    /// too, or its hub fraction — and with it the measured parallel
    /// behaviour — would be an artifact of the scale rather than of the
    /// distribution.
    pub max_degree: Option<usize>,
}

impl ProxyGraph {
    /// Create a proxy definition with the generator's default degree cap.
    pub fn new(name: impl Into<String>, num_vertices: u32, alpha: f64, seed: u64) -> Self {
        ProxyGraph {
            name: name.into(),
            num_vertices,
            alpha,
            seed,
            max_degree: None,
        }
    }

    /// Override the degree-support cap.
    pub fn with_max_degree(mut self, cap: usize) -> Self {
        self.max_degree = Some(cap);
        self
    }

    fn config(&self) -> PowerLawConfig {
        let cfg = PowerLawConfig::new(self.num_vertices, self.alpha);
        match self.max_degree {
            Some(cap) => cfg.with_max_degree(cap),
            None => cfg,
        }
    }

    /// Generate the proxy graph (Algorithm 1).
    pub fn generate(&self) -> Graph {
        self.config().generate(self.seed)
    }

    /// Expected edge count of this proxy.
    pub fn expected_edges(&self) -> f64 {
        self.config().expected_edges()
    }
}

/// The set of proxies used for profiling, ordered by α ascending coverage.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProxySet {
    proxies: Vec<ProxyGraph>,
}

impl ProxySet {
    /// The paper's standard three proxies at `1/scale` of full size
    /// (`scale = 1` reproduces Table II exactly).
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn standard(scale: u32) -> Self {
        assert!(scale > 0, "scale must be positive");
        let n = (FULL_SCALE_VERTICES / scale).max(2);
        // Scale the degree cap with the vertex count so the proxies'
        // hub fraction is scale-invariant (see `ProxyGraph::max_degree`).
        let cap = ((100_000 / scale as usize).max(64)).min(n.saturating_sub(1).max(1) as usize);
        ProxySet {
            proxies: vec![
                ProxyGraph::new("SyntheticGraph_one", n, 1.95, 0x5e11_0001).with_max_degree(cap),
                ProxyGraph::new("SyntheticGraph_two", n, 2.10, 0x5e11_0002).with_max_degree(cap),
                ProxyGraph::new("SyntheticGraph_three", n, 2.30, 0x5e11_0003).with_max_degree(cap),
            ],
        }
    }

    /// Build from explicit proxies.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn from_proxies(proxies: Vec<ProxyGraph>) -> Self {
        assert!(!proxies.is_empty(), "a proxy set needs at least one proxy");
        ProxySet { proxies }
    }

    /// The proxies.
    pub fn proxies(&self) -> &[ProxyGraph] {
        &self.proxies
    }

    /// Number of proxies.
    pub fn len(&self) -> usize {
        self.proxies.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.proxies.is_empty()
    }

    /// The inclusive α range `[min, max]` covered by this set.
    pub fn alpha_range(&self) -> (f64, f64) {
        let min = self
            .proxies
            .iter()
            .map(|p| p.alpha)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .proxies
            .iter()
            .map(|p| p.alpha)
            .fold(f64::NEG_INFINITY, f64::max);
        (min, max)
    }

    /// Whether a graph with fitted exponent `alpha` is covered by this set
    /// (within a tolerance band the paper leaves implicit; we use ±0.25,
    /// half the spacing the standard set provides at its edges).
    pub fn covers(&self, alpha: f64) -> bool {
        let (lo, hi) = self.alpha_range();
        alpha >= lo - 0.25 && alpha <= hi + 0.25
    }

    /// The proxy whose α is closest to `alpha` (ties break toward the
    /// denser, smaller-α proxy, which is the conservative choice for load
    /// estimation).
    pub fn closest(&self, alpha: f64) -> &ProxyGraph {
        self.proxies
            .iter()
            .min_by(|a, b| {
                let da = (a.alpha - alpha).abs();
                let db = (b.alpha - alpha).abs();
                da.partial_cmp(&db)
                    .expect("alphas are finite")
                    .then(a.alpha.partial_cmp(&b.alpha).expect("finite"))
            })
            .expect("proxy set is non-empty")
    }

    /// Extend coverage for an uncovered graph by generating one additional
    /// proxy at exactly its α (the paper's "if its α is beyond the covered
    /// range, an additional synthetic graph can be generated").
    ///
    /// Returns `true` if a proxy was added.
    pub fn ensure_coverage(&mut self, alpha: f64) -> bool {
        if self.covers(alpha) {
            return false;
        }
        let n = self.proxies[0].num_vertices;
        let idx = self.proxies.len() as u64;
        let mut extra = ProxyGraph::new(
            format!("SyntheticGraph_extra_{idx}"),
            n,
            alpha,
            0x5e11_1000 + idx,
        );
        // Inherit the set's degree cap so the new proxy is comparable.
        extra.max_degree = self.proxies[0].max_degree;
        self.proxies.push(extra);
        true
    }

    /// Match a natural graph to the best proxy by fitting its α from
    /// (|V|, |E|) — the paper's end-to-end matching flow.
    pub fn match_graph(&self, num_vertices: u64, num_edges: u64) -> Option<&ProxyGraph> {
        let fit = fit_alpha(num_vertices, num_edges).ok()?;
        Some(self.closest(fit.alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_matches_table2() {
        let set = ProxySet::standard(1);
        assert_eq!(set.len(), 3);
        assert_eq!(set.proxies()[0].num_vertices, 3_200_000);
        let alphas: Vec<f64> = set.proxies().iter().map(|p| p.alpha).collect();
        assert_eq!(alphas, vec![1.95, 2.10, 2.30]);
    }

    #[test]
    fn expected_edges_ordering_matches_table2() {
        // Table II: SyntheticGraph one (α=1.95) has 42 M edges, two (2.1)
        // has 16 M, three (2.3) has 7 M — monotone decreasing in α.
        let set = ProxySet::standard(1);
        let e: Vec<f64> = set.proxies().iter().map(|p| p.expected_edges()).collect();
        assert!(e[0] > e[1] && e[1] > e[2], "{e:?}");
        // Within 2x of the paper's counts (the paper does not give its
        // support cutoff, so exact counts are not recoverable).
        assert!(e[0] > 20e6 && e[0] < 80e6, "e0 = {}", e[0]);
        assert!(e[2] > 3e6 && e[2] < 14e6, "e2 = {}", e[2]);
    }

    #[test]
    fn coverage_band() {
        let set = ProxySet::standard(100);
        assert!(set.covers(2.0));
        assert!(set.covers(1.75));
        assert!(!set.covers(1.2));
        assert!(!set.covers(3.0));
    }

    #[test]
    fn closest_picks_nearest_alpha() {
        let set = ProxySet::standard(100);
        assert_eq!(set.closest(1.9).alpha, 1.95);
        assert_eq!(set.closest(2.12).alpha, 2.10);
        assert_eq!(set.closest(2.9).alpha, 2.30);
    }

    #[test]
    fn ensure_coverage_adds_only_when_needed() {
        let mut set = ProxySet::standard(100);
        assert!(!set.ensure_coverage(2.0));
        assert_eq!(set.len(), 3);
        assert!(set.ensure_coverage(3.1));
        assert_eq!(set.len(), 4);
        assert!(set.covers(3.1));
    }

    #[test]
    fn match_graph_uses_fitted_alpha() {
        let set = ProxySet::standard(100);
        // amazon: fitted alpha is on the dense side -> one of the denser proxies
        let p = set.match_graph(403_394, 3_387_388).expect("fit succeeds");
        assert!(p.alpha <= 2.30);
        // degenerate graph -> None
        assert!(set.match_graph(0, 0).is_none());
    }

    #[test]
    fn degree_cap_scales_with_proxy_size() {
        // Hub fraction (max degree over total degree) must be roughly
        // scale-invariant, not an artifact of downscaling.
        let frac = |scale: u32| {
            let g = ProxySet::standard(scale).proxies()[0].generate();
            let d_max = g.vertices().map(|v| g.degree(v)).max().unwrap() as f64;
            d_max / (2.0 * g.num_edges() as f64)
        };
        let coarse = frac(256);
        let fine = frac(64);
        assert!(
            (coarse / fine) < 4.0 && (fine / coarse) < 4.0,
            "hub fraction should be comparable across scales: {coarse} vs {fine}"
        );
        assert!(
            coarse < 0.02,
            "capped proxies must not be one giant star: {coarse}"
        );
    }

    #[test]
    fn ensure_coverage_inherits_cap() {
        let mut set = ProxySet::standard(256);
        set.ensure_coverage(3.5);
        let added = set.proxies().last().unwrap();
        assert_eq!(added.max_degree, set.proxies()[0].max_degree);
    }

    #[test]
    fn proxy_generation_is_deterministic_and_scaled() {
        let set = ProxySet::standard(1600); // 2 000 vertices
        let g1 = set.proxies()[1].generate();
        let g2 = set.proxies()[1].generate();
        assert_eq!(g1.edges(), g2.edges());
        assert_eq!(g1.num_vertices(), 2_000);
    }
}
