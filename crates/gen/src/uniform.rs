//! Erdős–Rényi `G(n, m)` uniform random graphs.
//!
//! The no-skew baseline: every edge slot is uniform over all vertex pairs.
//! Used in tests (partitioners should behave identically to their
//! homogeneous variants under uniform weights) and in ablations comparing
//! proxy fidelity across input families.

use hetgraph_core::rng::Xoshiro256;
use hetgraph_core::{Edge, EdgeList, Graph};

/// Generate a uniform random directed multigraph with `num_edges` edges
/// over `num_vertices` vertices, self loops excluded.
///
/// # Panics
/// Panics if `num_vertices < 2` while `num_edges > 0`.
pub fn gnm(num_vertices: u32, num_edges: usize, seed: u64) -> Graph {
    GnmConfig::new(num_vertices, num_edges).generate(seed)
}

/// Configuration wrapper for `G(n, m)`, mainly so the uniform family can
/// participate in the streaming-generator machinery alongside the
/// power-law and R-MAT configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct GnmConfig {
    /// Number of vertices `n`.
    pub num_vertices: u32,
    /// Number of edges `m`.
    pub num_edges: usize,
}

impl GnmConfig {
    /// A `G(n, m)` configuration.
    pub fn new(num_vertices: u32, num_edges: usize) -> Self {
        GnmConfig {
            num_vertices,
            num_edges,
        }
    }

    /// Generate the graph with the given seed (same contract as [`gnm`]).
    pub fn generate(&self, seed: u64) -> Graph {
        let mut list = EdgeList::with_capacity(self.num_vertices, self.num_edges);
        self.for_each_edge_impl(seed, &mut |e| list.push(e));
        Graph::from_edge_list(list)
    }

    /// Emit every edge of `generate(seed)` in order through `f` — the
    /// streaming core both `generate` and the shard writer share.
    pub(crate) fn for_each_edge_impl(&self, seed: u64, f: &mut dyn FnMut(Edge)) {
        if self.num_edges > 0 {
            assert!(
                self.num_vertices >= 2,
                "need at least 2 vertices to avoid self loops"
            );
        }
        let mut rng = Xoshiro256::new(seed);
        for _ in 0..self.num_edges {
            let src = rng.next_bounded(self.num_vertices as u64) as u32;
            // Draw dst from the n-1 non-src vertices (uniform, no rejection loop).
            let mut dst = rng.next_bounded(self.num_vertices as u64 - 1) as u32;
            if dst >= src {
                dst += 1;
            }
            f(Edge::new(src, dst));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_no_self_loops() {
        let g = gnm(1_000, 5_000, 1);
        assert_eq!(g.num_edges(), 5_000);
        assert!(g.edges().iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(100, 500, 9).edges(), gnm(100, 500, 9).edges());
    }

    #[test]
    fn low_degree_skew() {
        let g = gnm(10_000, 100_000, 3);
        let cv = g.degree_stats().coefficient_of_variation();
        assert!(cv < 0.5, "uniform graph unexpectedly skewed: cv = {cv}");
    }

    #[test]
    fn empty_graph_ok() {
        let g = gnm(0, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn destinations_cover_all_vertices() {
        let g = gnm(10, 1_000, 4);
        let mut seen = [false; 10];
        for e in g.edges() {
            seen[e.dst as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some vertex never a target");
    }
}
