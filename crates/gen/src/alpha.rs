//! Numerical fitting of the power-law exponent α (paper Eq. 4–7).
//!
//! The paper characterizes a power-law degree distribution as
//!
//! ```text
//! P(d) = d^-α / Σ_{i=1}^{D} i^-α                      (Eq. 4)
//! ```
//!
//! whose first moment is
//!
//! ```text
//! E[d] = Σ_{d=1}^{D} d^(1-α) / Σ_{i=1}^{D} i^-α       (Eq. 5)
//! ```
//!
//! Equating with the empirical average degree `|E| / |V|` (Eq. 6) gives the
//! root-finding problem (Eq. 7)
//!
//! ```text
//! F(α) = Σ d^(1-α) / Σ i^-α  -  |E|/|V|  =  0
//! ```
//!
//! solved here with a damped Newton iteration; `F` is strictly decreasing in
//! α, so a bisection fallback guarantees convergence when Newton steps
//! escape the bracket.

/// Result of fitting α.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlphaFit {
    /// Fitted exponent.
    pub alpha: f64,
    /// Residual `F(alpha)` at the returned value.
    pub residual: f64,
    /// Newton/bisection iterations consumed.
    pub iterations: u32,
}

/// Errors from the α solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphaError {
    /// The graph is degenerate (no vertices or no edges).
    DegenerateGraph,
    /// The target average degree is outside the representable range
    /// `(support mean at α → ∞, support mean at α → 0)`.
    TargetOutOfRange,
}

impl std::fmt::Display for AlphaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphaError::DegenerateGraph => write!(f, "graph has no vertices or no edges"),
            AlphaError::TargetOutOfRange => {
                write!(
                    f,
                    "average degree not representable by a power law on this support"
                )
            }
        }
    }
}

impl std::error::Error for AlphaError {}

/// Generalized harmonic-type sums over the degree support `1..=d_max`:
/// returns `(Σ i^-α, Σ i^(1-α), Σ i^-α ln i, Σ i^(1-α) ln i)`.
///
/// One pass computes the zeroth/first moments and their α-derivatives (up
/// to sign), which is everything Newton needs.
fn harmonic_sums(d_max: usize, alpha: f64) -> (f64, f64, f64, f64) {
    let mut h0 = 0.0; // Σ i^-α
    let mut h1 = 0.0; // Σ i^(1-α)
    let mut dh0 = 0.0; // Σ i^-α ln i
    let mut dh1 = 0.0; // Σ i^(1-α) ln i
    for i in 1..=d_max {
        let x = i as f64;
        let ln_x = x.ln();
        let p = (-alpha * ln_x).exp(); // i^-α without powf-per-term drift
        let q = p * x; // i^(1-α)
        h0 += p;
        h1 += q;
        dh0 += p * ln_x;
        dh1 += q * ln_x;
    }
    (h0, h1, dh0, dh1)
}

/// `F(α) = E[d](α) − target` and its derivative `F'(α)`.
fn f_and_deriv(d_max: usize, alpha: f64, target: f64) -> (f64, f64) {
    let (h0, h1, dh0, dh1) = harmonic_sums(d_max, alpha);
    let mean = h1 / h0;
    // d/dα (h1/h0) = (h1' h0 − h1 h0') / h0²,  h' = −Σ ... ln i
    let deriv = (-dh1 * h0 + h1 * dh0) / (h0 * h0);
    (mean - target, deriv)
}

/// Default cap on the degree support used in the sums.
///
/// The exact support is `D = |V| − 1`; for multi-million-vertex graphs the
/// tail terms beyond ~2×10⁵ contribute below double-precision noise for
/// α ≥ 1.5 while costing linear time per Newton step, so the solver caps
/// the support. Override through [`fit_alpha_with_support`].
pub const DEFAULT_MAX_SUPPORT: usize = 200_000;

/// Fit α from a graph's vertex and edge counts (Eq. 7), using the default
/// support cap.
///
/// # Errors
/// [`AlphaError::DegenerateGraph`] for empty inputs,
/// [`AlphaError::TargetOutOfRange`] when `|E|/|V|` cannot be produced by any
/// α on the support (e.g. average degree below 1).
pub fn fit_alpha(num_vertices: u64, num_edges: u64) -> Result<AlphaFit, AlphaError> {
    let support = (num_vertices.saturating_sub(1) as usize).min(DEFAULT_MAX_SUPPORT);
    fit_alpha_with_support(num_vertices, num_edges, support)
}

/// Fit α with an explicit degree support `d_max`.
pub fn fit_alpha_with_support(
    num_vertices: u64,
    num_edges: u64,
    d_max: usize,
) -> Result<AlphaFit, AlphaError> {
    if num_vertices == 0 || num_edges == 0 || d_max == 0 {
        return Err(AlphaError::DegenerateGraph);
    }
    let target = num_edges as f64 / num_vertices as f64;

    // F is strictly decreasing in α. Establish a bracket [lo, hi] with
    // F(lo) > 0 > F(hi).
    let mut lo = 0.05_f64;
    let mut hi = 12.0_f64;
    let (f_lo, _) = f_and_deriv(d_max, lo, target);
    let (f_hi, _) = f_and_deriv(d_max, hi, target);
    if f_lo < 0.0 || f_hi > 0.0 {
        return Err(AlphaError::TargetOutOfRange);
    }

    const TOL: f64 = 1e-10;
    const MAX_ITERS: u32 = 100;
    let mut alpha = 2.0; // natural graphs live in [1.9, 2.4] per the paper
    let mut iterations = 0;
    loop {
        iterations += 1;
        let (f, df) = f_and_deriv(d_max, alpha, target);
        if f.abs() < TOL || iterations >= MAX_ITERS {
            return Ok(AlphaFit {
                alpha,
                residual: f,
                iterations,
            });
        }
        // Maintain the bracket for the bisection fallback.
        if f > 0.0 {
            lo = lo.max(alpha);
        } else {
            hi = hi.min(alpha);
        }
        let newton = alpha - f / df;
        alpha = if df.abs() > 1e-300 && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi) // Newton escaped the bracket: bisect
        };
    }
}

/// The expected average degree `E[d]` of the power-law distribution with
/// exponent `alpha` on support `1..=d_max` (Eq. 5). Exposed so the
/// generator can predict edge counts before generating.
pub fn expected_avg_degree(alpha: f64, d_max: usize) -> f64 {
    assert!(d_max >= 1, "support must be non-empty");
    let (h0, h1, _, _) = harmonic_sums(d_max, alpha);
    h1 / h0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distribution_roundtrip() {
        // Pick α, compute the exact mean degree on a support, then recover α.
        for &alpha_true in &[1.7, 1.95, 2.1, 2.3, 2.8] {
            let d_max = 10_000;
            let mean = expected_avg_degree(alpha_true, d_max);
            let n = 1_000_000u64;
            let m = (mean * n as f64).round() as u64;
            let fit = fit_alpha_with_support(n, m, d_max).unwrap();
            assert!(
                (fit.alpha - alpha_true).abs() < 2e-3,
                "alpha_true={alpha_true} fitted={}",
                fit.alpha
            );
        }
    }

    #[test]
    fn residual_small_at_solution() {
        let fit = fit_alpha(403_394, 3_387_388).unwrap(); // amazon, Table II
        assert!(fit.residual.abs() < 1e-6);
        assert!(fit.alpha > 1.0 && fit.alpha < 3.0, "alpha = {}", fit.alpha);
    }

    #[test]
    fn table2_graphs_fit_in_natural_range() {
        // The paper notes natural graphs have α in roughly [1.9, 2.4];
        // our solver should land near that band for Table II shapes
        // (wiki is sparse, avg degree 2.1, so its α is the largest).
        let cases: [(u64, u64); 4] = [
            (403_394, 3_387_388),    // amazon
            (3_774_768, 16_518_948), // citation
            (4_847_571, 68_993_773), // social network
            (2_394_385, 5_021_410),  // wiki
        ];
        for (v, e) in cases {
            let fit = fit_alpha(v, e).unwrap();
            assert!(
                fit.alpha > 1.5 && fit.alpha < 3.2,
                "V={v} E={e} alpha={}",
                fit.alpha
            );
        }
    }

    #[test]
    fn denser_graph_means_smaller_alpha() {
        let sparse = fit_alpha(1_000_000, 2_000_000).unwrap();
        let dense = fit_alpha(1_000_000, 30_000_000).unwrap();
        assert!(
            dense.alpha < sparse.alpha,
            "dense {} !< sparse {}",
            dense.alpha,
            sparse.alpha
        );
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(fit_alpha(0, 10).unwrap_err(), AlphaError::DegenerateGraph);
        assert_eq!(fit_alpha(10, 0).unwrap_err(), AlphaError::DegenerateGraph);
    }

    #[test]
    fn unreachable_density_rejected() {
        // Average degree below 1 can never be matched: E[d] >= 1 since the
        // minimum degree in the support is 1.
        assert_eq!(
            fit_alpha(1_000_000, 100).unwrap_err(),
            AlphaError::TargetOutOfRange
        );
        // Average degree above (D+1)/2 can never be matched either.
        assert_eq!(
            fit_alpha_with_support(4, 1000, 3).unwrap_err(),
            AlphaError::TargetOutOfRange
        );
    }

    #[test]
    fn expected_avg_degree_monotone_decreasing_in_alpha() {
        let d_max = 1000;
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let alpha = 0.5 + i as f64 * 0.25;
            let m = expected_avg_degree(alpha, d_max);
            assert!(m < prev, "not monotone at alpha={alpha}");
            prev = m;
        }
    }

    #[test]
    fn solver_is_fast_enough_to_be_negligible() {
        // The paper reports "<1 ms"; allow generous slack for debug builds
        // but make sure we are not accidentally quadratic.
        let t0 = std::time::Instant::now();
        let _ = fit_alpha(4_847_571, 68_993_773).unwrap();
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn newton_converges_in_few_iterations() {
        let fit = fit_alpha(403_394, 3_387_388).unwrap();
        assert!(fit.iterations < 60, "iterations = {}", fit.iterations);
    }
}
