//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice (each vertex connected to its `k` nearest clockwise
//! neighbors) with each edge rewired to a random target with probability
//! `beta`. At `beta = 0` the graph is perfectly regular (no skew at all —
//! the adversarial case for degree-based capability estimation); at
//! `beta = 1` it approaches uniform random. Used in ablations as the
//! *anti-power-law* input: proxy profiling must not break when the
//! workload graph has no hubs.

use hetgraph_core::rng::Xoshiro256;
use hetgraph_core::{Edge, EdgeList, Graph};

/// Configuration for the Watts–Strogatz generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SmallWorldConfig {
    /// Vertex count.
    pub num_vertices: u32,
    /// Clockwise nearest neighbors per vertex (out-degree before rewiring).
    pub neighbors: u32,
    /// Rewiring probability in `[0, 1]`.
    pub beta: f64,
}

impl SmallWorldConfig {
    /// Create a configuration.
    ///
    /// # Panics
    /// Panics unless `num_vertices > 2 * neighbors >= 2` and
    /// `beta ∈ [0, 1]`.
    pub fn new(num_vertices: u32, neighbors: u32, beta: f64) -> Self {
        assert!(neighbors >= 1, "need at least one neighbor");
        assert!(
            num_vertices > 2 * neighbors,
            "ring too small for the neighborhood"
        );
        assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
        SmallWorldConfig {
            num_vertices,
            neighbors,
            beta,
        }
    }

    /// Generate with the given seed.
    pub fn generate(&self, seed: u64) -> Graph {
        let n = self.num_vertices;
        let mut rng = Xoshiro256::new(seed);
        let mut list = EdgeList::with_capacity(n, (n * self.neighbors) as usize);
        for u in 0..n {
            for j in 1..=self.neighbors {
                let lattice_target = (u + j) % n;
                let target = if rng.bernoulli(self.beta) {
                    // Rewire anywhere except to a self loop.
                    let mut t = rng.next_bounded(n as u64 - 1) as u32;
                    if t >= u {
                        t += 1;
                    }
                    t
                } else {
                    lattice_target
                };
                list.push(Edge::new(u, target));
            }
        }
        Graph::from_edge_list(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrewired_ring_is_regular() {
        let g = SmallWorldConfig::new(1_000, 3, 0.0).generate(1);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 3);
            assert_eq!(g.in_degree(v), 3);
        }
        assert_eq!(g.num_edges(), 3_000);
    }

    #[test]
    fn rewiring_preserves_edge_count_and_out_degrees() {
        let g = SmallWorldConfig::new(1_000, 4, 0.3).generate(2);
        assert_eq!(g.num_edges(), 4_000);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4, "out-degree is never rewired away");
        }
        assert!(g.edges().iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn skew_grows_with_beta_but_stays_tiny() {
        let regular = SmallWorldConfig::new(5_000, 4, 0.0).generate(3);
        let rewired = SmallWorldConfig::new(5_000, 4, 1.0).generate(3);
        let cv0 = regular.degree_stats().coefficient_of_variation();
        let cv1 = rewired.degree_stats().coefficient_of_variation();
        assert!(cv0 < 1e-9, "regular ring has zero degree variance");
        assert!(cv1 > cv0);
        assert!(
            cv1 < 0.5,
            "small-world graphs never develop hubs: cv = {cv1}"
        );
    }

    #[test]
    fn deterministic() {
        let cfg = SmallWorldConfig::new(500, 2, 0.5);
        assert_eq!(cfg.generate(9).edges(), cfg.generate(9).edges());
    }

    #[test]
    #[should_panic(expected = "ring too small")]
    fn tiny_ring_rejected() {
        SmallWorldConfig::new(4, 2, 0.1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_beta_rejected() {
        SmallWorldConfig::new(100, 2, 1.5);
    }
}
