//! R-MAT (Recursive MATrix) graph generator (Chakrabarti & Faloutsos).
//!
//! R-MAT recursively subdivides the adjacency matrix into four quadrants
//! and drops each edge into a quadrant with probabilities `(a, b, c, d)`.
//! With skewed probabilities the result approximates a power law, but with
//! the lumpy tails, self-similar communities and degree correlations that
//! natural graphs exhibit — which is exactly why this crate uses R-MAT for
//! the *natural-graph stand-ins* while the clean Algorithm-1 generator
//! produces the *proxies*. The systematic difference between the two
//! families reproduces the paper's proxy-vs-real estimation gap.

use hetgraph_core::rng::Xoshiro256;
use hetgraph_core::{Edge, EdgeList, Graph};

/// Configuration for the R-MAT generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RmatConfig {
    /// Number of vertices. R-MAT operates on a `2^k` grid internally;
    /// vertices are folded down to `[0, num_vertices)` afterwards, which
    /// adds a small amount of extra irregularity (harmless and realistic).
    pub num_vertices: u32,
    /// Number of edges to generate.
    pub num_edges: usize,
    /// Quadrant probabilities `(a, b, c, d)`; must be positive and sum to 1.
    /// Typical natural-graph fits: `(0.57, 0.19, 0.19, 0.05)`.
    pub probabilities: (f64, f64, f64, f64),
    /// Per-recursion-level multiplicative noise on the probabilities, in
    /// `[0, 0.5)`. Noise decorrelates the quadrant choice across levels and
    /// smooths the degree staircase R-MAT otherwise produces.
    pub noise: f64,
    /// Drop self loops.
    pub omit_self_loops: bool,
}

impl RmatConfig {
    /// A natural-graph-like default: `(a,b,c,d) = (0.57, 0.19, 0.19, 0.05)`,
    /// 10 % noise, self loops dropped.
    pub fn natural(num_vertices: u32, num_edges: usize) -> Self {
        RmatConfig {
            num_vertices,
            num_edges,
            probabilities: (0.57, 0.19, 0.19, 0.05),
            noise: 0.10,
            omit_self_loops: true,
        }
    }

    /// Override quadrant probabilities.
    ///
    /// # Panics
    /// Panics if probabilities are not positive or do not sum to ~1.
    pub fn with_probabilities(mut self, a: f64, b: f64, c: f64, d: f64) -> Self {
        assert!(
            a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0,
            "probabilities must be positive"
        );
        assert!(
            ((a + b + c + d) - 1.0).abs() < 1e-9,
            "probabilities must sum to 1"
        );
        self.probabilities = (a, b, c, d);
        self
    }

    /// Generate the graph with the given seed.
    ///
    /// # Panics
    /// Panics if `num_vertices == 0`.
    pub fn generate(&self, seed: u64) -> Graph {
        let mut list = EdgeList::with_capacity(self.num_vertices, self.num_edges);
        self.for_each_edge_impl(seed, &mut |e| list.push(e));
        Graph::from_edge_list(list)
    }

    /// Emit every edge of `generate(seed)` in order through `f` — the
    /// streaming core both `generate` and the shard writer share.
    pub(crate) fn for_each_edge_impl(&self, seed: u64, f: &mut dyn FnMut(Edge)) {
        assert!(self.num_vertices > 0, "R-MAT needs at least one vertex");
        let n = self.num_vertices;
        let levels = 32 - (n.max(2) - 1).leading_zeros(); // ceil(log2 n)
        let side = 1u64 << levels;
        let mut rng = Xoshiro256::new(seed);
        let (a, b, c, _d) = self.probabilities;

        let mut produced = 0usize;
        // Bound the retry loop: degenerate configs (e.g. n == 1 with self
        // loops omitted) must not spin forever.
        let max_attempts = self.num_edges.saturating_mul(4).max(64);
        let mut attempts = 0usize;
        while produced < self.num_edges && attempts < max_attempts {
            attempts += 1;
            let mut row = 0u64;
            let mut col = 0u64;
            let mut half = side >> 1;
            while half > 0 {
                // Multiplicative noise per level, renormalized implicitly by
                // comparing against the running thresholds.
                let na = a * (1.0 + self.noise * (rng.next_f64() - 0.5) * 2.0);
                let nb = b * (1.0 + self.noise * (rng.next_f64() - 0.5) * 2.0);
                let nc = c * (1.0 + self.noise * (rng.next_f64() - 0.5) * 2.0);
                let u = rng.next_f64() * (na + nb + nc + (1.0 - a - b - c));
                if u < na {
                    // top-left: nothing to add
                } else if u < na + nb {
                    col += half;
                } else if u < na + nb + nc {
                    row += half;
                } else {
                    row += half;
                    col += half;
                }
                half >>= 1;
            }
            // Fold the 2^levels grid down to [0, n).
            let src = (row % n as u64) as u32;
            let dst = (col % n as u64) as u32;
            if self.omit_self_loops && src == dst {
                continue;
            }
            f(Edge::new(src, dst));
            produced += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::degree::DegreeHistogram;

    #[test]
    fn generates_requested_edges() {
        let g = RmatConfig::natural(10_000, 50_000).generate(1);
        assert_eq!(g.num_edges(), 50_000);
        assert_eq!(g.num_vertices(), 10_000);
        assert!(g.validate());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RmatConfig::natural(5_000, 20_000);
        assert_eq!(cfg.generate(3).edges(), cfg.generate(3).edges());
        assert_ne!(cfg.generate(3).edges(), cfg.generate(4).edges());
    }

    #[test]
    fn skewed_probabilities_produce_skewed_degrees() {
        let skewed = RmatConfig::natural(20_000, 100_000).generate(7);
        let s = skewed.degree_stats();
        // A uniform G(n,m) with the same density has CV ≈ 1/sqrt(mean)≈0.3;
        // R-MAT should be far more skewed.
        assert!(
            s.coefficient_of_variation() > 1.0,
            "cv = {}",
            s.coefficient_of_variation()
        );
        assert!(s.max > 50, "max degree = {}", s.max);
    }

    #[test]
    fn tail_is_roughly_power_law() {
        let g = RmatConfig::natural(50_000, 400_000).generate(11);
        let h = DegreeHistogram::total_degrees(&g);
        let fitted = h.fit_alpha_loglog(4);
        assert!(fitted.is_some());
        let alpha = fitted.unwrap();
        assert!(alpha > 0.8 && alpha < 4.0, "alpha = {alpha}");
    }

    #[test]
    fn no_self_loops_when_omitted() {
        let g = RmatConfig::natural(1_000, 10_000).generate(5);
        assert!(g.edges().iter().all(|e| !e.is_self_loop()));
    }

    #[test]
    fn degenerate_single_vertex_terminates() {
        // All candidate edges are self loops; the attempt bound must stop us.
        let g = RmatConfig::natural(1, 100).generate(0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        RmatConfig::natural(10, 10).with_probabilities(0.5, 0.5, 0.5, 0.5);
    }

    #[test]
    fn homogeneous_probabilities_approach_uniform() {
        let mut cfg =
            RmatConfig::natural(10_000, 80_000).with_probabilities(0.25, 0.25, 0.25, 0.25);
        cfg.noise = 0.0;
        let g = cfg.generate(2);
        let cv = g.degree_stats().coefficient_of_variation();
        assert!(cv < 0.6, "uniform R-MAT should have low skew, cv = {cv}");
    }
}
