//! # hetgraph-gen
//!
//! Synthetic graph generation for proxy-guided profiling.
//!
//! This crate implements Section III of the paper:
//!
//! - [`alpha`] — the numerical method (Eq. 4–7) that fits the power-law
//!   exponent α of a graph from only its vertex and edge counts, via a
//!   Newton iteration with a bisection fallback.
//! - [`powerlaw`] — Algorithm 1: the synthetic power-law proxy-graph
//!   generator. Given `N` and `α`, draws each vertex's out-degree from the
//!   discrete power-law distribution and connects edges by random hashing.
//! - [`rmat`] — an R-MAT (recursive matrix) generator. Used to build
//!   *stand-ins for the natural SNAP graphs* of Table II: R-MAT graphs
//!   follow a power law only approximately, with the tail irregularities
//!   and locality structure that make natural graphs differ from clean
//!   synthetic proxies. That difference is the mechanism behind the paper's
//!   ~8 % CCR estimation error, so it must exist in the reproduction.
//! - [`uniform`] — Erdős–Rényi G(n, m), the degenerate no-skew baseline.
//! - [`structured`] — deterministic test graphs (ring, star, grid, clique).
//! - [`catalog`] — Table II: the four natural-graph stand-ins with the
//!   paper's exact |V|/|E| (scalable for laptop-class runs).
//! - [`proxy`] — the three deployed synthetic proxy graphs
//!   (α = 1.95 / 2.1 / 2.3) and the [`proxy::ProxySet`] used for profiling.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

//!
//! Two further families serve the ablations: [`preferential`]
//! (Barabási–Albert — heavy tails *by growth*) and [`smallworld`]
//! (Watts–Strogatz — the hub-free adversarial case).
//!
//! [`stream`] exposes the power-law, R-MAT, and G(n, m) families as
//! [`StreamingGenerator`]s that emit edges through a callback and write
//! fixed-size shard directories with bounded buffering — the ingestion
//! path for graphs too large to materialize.

pub mod alpha;
pub mod catalog;
pub mod powerlaw;
pub mod preferential;
pub mod proxy;
pub mod rmat;
pub mod smallworld;
pub mod stream;
pub mod structured;
pub mod uniform;

pub use alpha::{fit_alpha, AlphaFit};
pub use catalog::{GraphSpec, NaturalGraph};
pub use powerlaw::PowerLawConfig;
pub use preferential::BarabasiAlbertConfig;
pub use proxy::{ProxyGraph, ProxySet};
pub use rmat::RmatConfig;
pub use smallworld::SmallWorldConfig;
pub use stream::StreamingGenerator;
pub use uniform::GnmConfig;
