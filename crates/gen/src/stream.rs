//! Streaming edge emission: generators as bounded-memory edge sources.
//!
//! Every generator whose edge sequence can be produced left-to-right
//! without retaining the edges already emitted implements
//! [`StreamingGenerator`]: a callback-driven `for_each_edge` that visits
//! the *exact* edge sequence `generate` would materialize, plus provided
//! methods that pipe that sequence into a [`ShardWriter`] so peak memory
//! during generation is one shard's buffer instead of the whole edge set.
//! The in-memory `generate` entry points delegate to `for_each_edge`, so
//! the two paths cannot drift: shard replay order *is* generation order by
//! construction, which is what lets the streaming partitioners consume a
//! shard directory interchangeably with an in-memory graph.
//!
//! Preferential-attachment and small-world generation inherently keep
//! O(V)–O(E) state (the attachment multiset, the rewired ring), so those
//! families stay materialize-only and do not implement the trait.

use std::path::Path;

use hetgraph_core::shard::{ShardSet, ShardWriter, DEFAULT_SHARD_EDGES};
use hetgraph_core::{CoreError, Edge, EdgeList, Graph};

use crate::powerlaw::PowerLawConfig;
use crate::rmat::RmatConfig;
use crate::uniform::GnmConfig;

/// A generator that can emit its edge sequence through a callback with
/// bounded memory.
///
/// Implementations guarantee that `for_each_edge(seed, f)` invokes `f`
/// with exactly the edges of `generate(seed)`, in the same order.
pub trait StreamingGenerator {
    /// The vertex-count bound of the emitted graph (every edge endpoint
    /// is `< stream_num_vertices()`).
    fn stream_num_vertices(&self) -> u32;

    /// Visit every edge in generation order.
    fn for_each_edge(&self, seed: u64, f: &mut dyn FnMut(Edge));

    /// Materialize the full graph (identical to the family's `generate`).
    /// Callers that only need the edge *stream* should prefer
    /// [`StreamingGenerator::for_each_edge`] or the shard writers.
    fn generate_graph(&self, seed: u64) -> Graph {
        let mut list = EdgeList::with_capacity(self.stream_num_vertices(), 0);
        self.for_each_edge(seed, &mut |e| list.push(e));
        Graph::from_edge_list(list)
    }

    /// Write the edge stream to `dir` as fixed-size shards with the
    /// default per-shard capacity, returning the validated shard set.
    fn generate_shards(&self, seed: u64, dir: &Path) -> Result<ShardSet, CoreError> {
        self.generate_shards_with_capacity(seed, dir, DEFAULT_SHARD_EDGES)
    }

    /// Write the edge stream to `dir` with an explicit per-shard edge
    /// capacity. Peak memory is one shard's buffer — the full edge set is
    /// never resident.
    fn generate_shards_with_capacity(
        &self,
        seed: u64,
        dir: &Path,
        shard_edges: usize,
    ) -> Result<ShardSet, CoreError> {
        let mut writer = ShardWriter::with_capacity(dir, self.stream_num_vertices(), shard_edges)?;
        // The callback cannot return errors, so the first I/O failure is
        // parked and re-raised once the walk finishes (the writer stops
        // consuming after the failure).
        let mut io_err: Option<CoreError> = None;
        self.for_each_edge(seed, &mut |e| {
            if io_err.is_none() {
                if let Err(err) = writer.push(e) {
                    io_err = Some(err);
                }
            }
        });
        if let Some(err) = io_err {
            return Err(err);
        }
        writer.finish()?;
        ShardSet::open(dir)
    }
}

impl StreamingGenerator for PowerLawConfig {
    fn stream_num_vertices(&self) -> u32 {
        self.num_vertices
    }

    fn for_each_edge(&self, seed: u64, f: &mut dyn FnMut(Edge)) {
        self.for_each_edge_impl(seed, f);
    }
}

impl StreamingGenerator for RmatConfig {
    fn stream_num_vertices(&self) -> u32 {
        self.num_vertices
    }

    fn for_each_edge(&self, seed: u64, f: &mut dyn FnMut(Edge)) {
        self.for_each_edge_impl(seed, f);
    }
}

impl StreamingGenerator for GnmConfig {
    fn stream_num_vertices(&self) -> u32 {
        self.num_vertices
    }

    fn for_each_edge(&self, seed: u64, f: &mut dyn FnMut(Edge)) {
        self.for_each_edge_impl(seed, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hetgraph_gen_stream_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn assert_stream_matches_generate<G: StreamingGenerator>(
        gen: &G,
        seed: u64,
        expected: &[Edge],
        tag: &str,
    ) {
        // Callback emission reproduces the materialized edge list...
        let mut streamed = Vec::new();
        gen.for_each_edge(seed, &mut |e| streamed.push(e));
        assert_eq!(streamed, expected, "{tag}: for_each_edge != generate");
        // ...and so does replay through a multi-shard directory.
        let dir = temp_dir(tag);
        let set = gen
            .generate_shards_with_capacity(seed, &dir, 1_000)
            .unwrap();
        assert_eq!(set.num_vertices(), gen.stream_num_vertices());
        assert_eq!(set.num_edges() as usize, expected.len());
        let replayed: Vec<Edge> = set.stream().collect();
        assert_eq!(replayed, expected, "{tag}: shard replay != generate");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn powerlaw_shards_replay_generation_order() {
        let cfg = PowerLawConfig::new(3_000, 2.1);
        let g = cfg.generate(7);
        assert_stream_matches_generate(&cfg, 7, g.edges(), "pl");
    }

    #[test]
    fn rmat_shards_replay_generation_order() {
        let cfg = RmatConfig::natural(2_000, 9_000);
        let g = cfg.generate(11);
        assert_stream_matches_generate(&cfg, 11, g.edges(), "rmat");
    }

    #[test]
    fn gnm_shards_replay_generation_order() {
        let cfg = GnmConfig::new(500, 4_000);
        let g = crate::uniform::gnm(500, 4_000, 3);
        assert_stream_matches_generate(&cfg, 3, g.edges(), "gnm");
    }

    #[test]
    fn identical_seeds_produce_identical_shard_bytes() {
        // Determinism must hold at the byte level, not just the edge
        // level: the scale experiments reuse shard directories across
        // runs keyed only by (config, seed).
        let cfg = PowerLawConfig::new(2_000, 2.1);
        let (da, db) = (temp_dir("det_a"), temp_dir("det_b"));
        let a = cfg.generate_shards_with_capacity(42, &da, 512).unwrap();
        let b = cfg.generate_shards_with_capacity(42, &db, 512).unwrap();
        assert_eq!(a.num_shards(), b.num_shards());
        assert!(a.num_shards() > 1, "want a multi-shard fixture");
        for i in 0..a.num_shards() {
            let name = format!("shard-{i:05}.hgs");
            let bytes_a = std::fs::read(da.join(&name)).unwrap();
            let bytes_b = std::fs::read(db.join(&name)).unwrap();
            assert_eq!(bytes_a, bytes_b, "shard {i} bytes differ across runs");
        }
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn different_seeds_produce_different_shards() {
        let cfg = PowerLawConfig::new(2_000, 2.1);
        let (da, db) = (temp_dir("seed_a"), temp_dir("seed_b"));
        cfg.generate_shards_with_capacity(1, &da, 512).unwrap();
        cfg.generate_shards_with_capacity(2, &db, 512).unwrap();
        let bytes_a = std::fs::read(da.join("shard-00000.hgs")).unwrap();
        let bytes_b = std::fs::read(db.join("shard-00000.hgs")).unwrap();
        assert_ne!(bytes_a, bytes_b);
        std::fs::remove_dir_all(&da).ok();
        std::fs::remove_dir_all(&db).ok();
    }

    #[test]
    fn empty_gnm_streams_to_one_empty_shard() {
        let dir = temp_dir("empty");
        let set = GnmConfig::new(5, 0).generate_shards(9, &dir).unwrap();
        assert_eq!(set.num_edges(), 0);
        assert_eq!(set.num_shards(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
