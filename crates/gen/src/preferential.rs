//! Barabási–Albert preferential attachment.
//!
//! Grows a graph by attaching each new vertex to `m` existing vertices
//! chosen proportionally to their current degree. Produces a power law
//! with exponent ≈ 3 *by growth* rather than by construction — a third
//! generator family (besides Algorithm-1 power-law and R-MAT) used in
//! ablations to check that proxy profiling is robust to *how* a graph
//! became heavy-tailed, not just to its exponent.

use hetgraph_core::rng::Xoshiro256;
use hetgraph_core::{Edge, EdgeList, Graph};

/// Configuration for the Barabási–Albert generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BarabasiAlbertConfig {
    /// Final vertex count.
    pub num_vertices: u32,
    /// Edges attached per new vertex.
    pub edges_per_vertex: u32,
}

impl BarabasiAlbertConfig {
    /// Create a configuration.
    ///
    /// # Panics
    /// Panics unless `num_vertices > edges_per_vertex >= 1`.
    pub fn new(num_vertices: u32, edges_per_vertex: u32) -> Self {
        assert!(edges_per_vertex >= 1, "need at least one edge per vertex");
        assert!(
            num_vertices > edges_per_vertex,
            "need more vertices than edges per vertex"
        );
        BarabasiAlbertConfig {
            num_vertices,
            edges_per_vertex,
        }
    }

    /// Generate with the given seed.
    ///
    /// Uses the standard repeated-endpoint trick: targets are drawn
    /// uniformly from the running endpoint list, which is exactly
    /// degree-proportional sampling.
    pub fn generate(&self, seed: u64) -> Graph {
        let n = self.num_vertices;
        let m = self.edges_per_vertex;
        let mut rng = Xoshiro256::new(seed);
        let mut list = EdgeList::with_capacity(n, (n as usize) * m as usize);
        // Endpoint multiset: each edge contributes both endpoints, so
        // sampling uniformly from it is degree-proportional.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (n as usize) * m as usize);

        // Seed clique over the first m+1 vertices so every early vertex
        // has nonzero degree.
        for u in 0..=m {
            for v in 0..u {
                list.push(Edge::new(u, v));
                endpoints.push(u);
                endpoints.push(v);
            }
        }
        for u in (m + 1)..n {
            let mut chosen: Vec<u32> = Vec::with_capacity(m as usize);
            let mut guard = 0;
            while (chosen.len() as u32) < m {
                let t = endpoints[rng.next_bounded(endpoints.len() as u64) as usize];
                if t != u && !chosen.contains(&t) {
                    chosen.push(t);
                }
                guard += 1;
                if guard > 64 * m {
                    break; // pathological tiny configs; never in practice
                }
            }
            for &t in &chosen {
                list.push(Edge::new(u, t));
                endpoints.push(u);
                endpoints.push(t);
            }
        }
        Graph::from_edge_list(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_to_requested_size() {
        let g = BarabasiAlbertConfig::new(5_000, 3).generate(1);
        assert_eq!(g.num_vertices(), 5_000);
        // clique edges + 3 per subsequent vertex
        let expected = 6 + (5_000 - 4) * 3;
        assert_eq!(g.num_edges(), expected as usize);
        assert!(g.validate());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BarabasiAlbertConfig::new(1_000, 2);
        assert_eq!(cfg.generate(7).edges(), cfg.generate(7).edges());
        assert_ne!(cfg.generate(7).edges(), cfg.generate(8).edges());
    }

    #[test]
    fn produces_heavy_tail() {
        let g = BarabasiAlbertConfig::new(20_000, 2).generate(3);
        let s = g.degree_stats();
        assert!(
            s.coefficient_of_variation() > 1.0,
            "cv = {}",
            s.coefficient_of_variation()
        );
        // Early vertices accumulate degree far above the mean.
        assert!(
            s.max as f64 > 20.0 * s.mean,
            "max {} mean {}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn no_self_loops_or_duplicate_targets_per_vertex() {
        let g = BarabasiAlbertConfig::new(2_000, 4).generate(5);
        for e in g.edges() {
            assert!(!e.is_self_loop());
        }
        for v in g.vertices() {
            let mut out = g.out_neighbors(v).to_vec();
            let before = out.len();
            out.sort_unstable();
            out.dedup();
            assert_eq!(out.len(), before, "vertex {v} has duplicate out-targets");
        }
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn degenerate_config_rejected() {
        BarabasiAlbertConfig::new(3, 3);
    }
}
