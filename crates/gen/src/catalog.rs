//! Table II: stand-ins for the paper's natural SNAP graphs.
//!
//! The paper evaluates on four real-world graphs downloaded from the SNAP
//! collection. Those datasets are not redistributable here, so — per the
//! substitution policy in `DESIGN.md` — each is replaced by a *generated
//! stand-in* with the paper's exact vertex and edge counts and a generator
//! recipe tuned to the character of the original (skew, density, hubbiness).
//!
//! Crucially the stand-ins are produced by the **R-MAT family**, not by the
//! clean Algorithm-1 power-law generator that produces the profiling
//! proxies: natural graphs follow a power law only approximately, and it is
//! precisely that approximation gap that limits proxy-profiling accuracy to
//! ~92 % in the paper. Using a distinct generator family preserves the gap
//! mechanism instead of making proxies unrealistically perfect.
//!
//! Every spec supports downscaling (dividing |V| and |E| by a factor while
//! preserving average degree) so experiments run at laptop scale; the
//! experiment harnesses record the scale they ran at.

use hetgraph_core::Graph;

use crate::alpha::fit_alpha;
use crate::rmat::RmatConfig;

/// The four natural graphs of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NaturalGraph {
    /// `amazon` — co-purchase network: 403,394 vertices, 3,387,388 edges.
    Amazon,
    /// `citation` — patent citations: 3,774,768 vertices, 16,518,948 edges.
    Citation,
    /// `social network` — LiveJournal-class: 4,847,571 vertices, 68,993,773 edges.
    SocialNetwork,
    /// `wiki` — talk network: 2,394,385 vertices, 5,021,410 edges.
    Wiki,
}

impl NaturalGraph {
    /// All four graphs in Table II order.
    pub const ALL: [NaturalGraph; 4] = [
        NaturalGraph::Amazon,
        NaturalGraph::Citation,
        NaturalGraph::SocialNetwork,
        NaturalGraph::Wiki,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            NaturalGraph::Amazon => "amazon",
            NaturalGraph::Citation => "citation",
            NaturalGraph::SocialNetwork => "social_network",
            NaturalGraph::Wiki => "wiki",
        }
    }

    /// Full-scale spec with the paper's Table II counts.
    pub fn spec(self) -> GraphSpec {
        // (vertices, edges, rmat probabilities, noise, seed)
        // Probabilities are tuned per graph character:
        //  - amazon: moderate skew, strong locality (co-purchases cluster)
        //  - citation: moderate skew, sparse
        //  - social:  heavy skew, dense (celebrity hubs)
        //  - wiki:    extreme hubbiness at low density (admin talk pages)
        let (v, e, p, noise, seed) = match self {
            NaturalGraph::Amazon => (
                403_394u64,
                3_387_388u64,
                (0.50, 0.22, 0.22, 0.06),
                0.12,
                0xA3A2_0001,
            ),
            NaturalGraph::Citation => (
                3_774_768,
                16_518_948,
                (0.55, 0.20, 0.20, 0.05),
                0.08,
                0xA3A2_0002,
            ),
            NaturalGraph::SocialNetwork => (
                4_847_571,
                68_993_773,
                (0.57, 0.19, 0.19, 0.05),
                0.10,
                0xA3A2_0003,
            ),
            NaturalGraph::Wiki => (
                2_394_385,
                5_021_410,
                (0.62, 0.17, 0.17, 0.04),
                0.15,
                0xA3A2_0004,
            ),
        };
        GraphSpec {
            name: self.name().to_string(),
            vertices: v,
            edges: e,
            probabilities: p,
            noise,
            seed,
        }
    }

    /// Generate the stand-in at `1/scale` of the paper's size (`scale = 1`
    /// is full size). Average degree is preserved.
    ///
    /// # Panics
    /// Panics if `scale == 0`.
    pub fn generate(self, scale: u32) -> Graph {
        self.spec().generate_scaled(scale)
    }
}

/// A generated stand-in's specification: paper-accurate counts plus the
/// R-MAT recipe that realizes the stand-in.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphSpec {
    /// Display name (Table II row).
    pub name: String,
    /// Full-scale vertex count.
    pub vertices: u64,
    /// Full-scale edge count.
    pub edges: u64,
    /// R-MAT quadrant probabilities.
    pub probabilities: (f64, f64, f64, f64),
    /// R-MAT per-level noise.
    pub noise: f64,
    /// Fixed generation seed (stand-ins are part of the reproducible
    /// experiment definition).
    pub seed: u64,
}

impl GraphSpec {
    /// Average degree `|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Fitted power-law exponent α from (|V|, |E|) via the paper's Eq. 7
    /// solver — the "Alpha" column of Table II.
    pub fn fitted_alpha(&self) -> f64 {
        fit_alpha(self.vertices, self.edges)
            .expect("Table II shapes are fittable")
            .alpha
    }

    /// Vertex count at `1/scale`.
    pub fn scaled_vertices(&self, scale: u32) -> u32 {
        assert!(scale > 0, "scale must be positive");
        ((self.vertices / scale as u64).max(2)) as u32
    }

    /// Edge count at `1/scale`.
    pub fn scaled_edges(&self, scale: u32) -> usize {
        assert!(scale > 0, "scale must be positive");
        ((self.edges / scale as u64).max(1)) as usize
    }

    /// The R-MAT recipe realizing this stand-in at `1/scale` — the shared
    /// source of truth for both in-memory and shard-streamed generation
    /// (pair it with [`GraphSpec::seed`]).
    pub fn scaled_config(&self, scale: u32) -> RmatConfig {
        RmatConfig {
            num_vertices: self.scaled_vertices(scale),
            num_edges: self.scaled_edges(scale),
            probabilities: self.probabilities,
            noise: self.noise,
            omit_self_loops: true,
        }
    }

    /// Generate at `1/scale` of full size.
    pub fn generate_scaled(&self, scale: u32) -> Graph {
        self.scaled_config(scale).generate(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        let a = NaturalGraph::Amazon.spec();
        assert_eq!((a.vertices, a.edges), (403_394, 3_387_388));
        let c = NaturalGraph::Citation.spec();
        assert_eq!((c.vertices, c.edges), (3_774_768, 16_518_948));
        let s = NaturalGraph::SocialNetwork.spec();
        assert_eq!((s.vertices, s.edges), (4_847_571, 68_993_773));
        let w = NaturalGraph::Wiki.spec();
        assert_eq!((w.vertices, w.edges), (2_394_385, 5_021_410));
    }

    #[test]
    fn scaled_generation_preserves_density() {
        let spec = NaturalGraph::Amazon.spec();
        let g = spec.generate_scaled(64);
        let target = spec.avg_degree();
        let got = g.avg_degree();
        assert!(
            (got - target).abs() / target < 0.05,
            "avg degree {got} vs target {target}"
        );
    }

    #[test]
    fn stand_ins_are_deterministic() {
        let g1 = NaturalGraph::Wiki.generate(128);
        let g2 = NaturalGraph::Wiki.generate(128);
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn stand_ins_differ_from_each_other() {
        let a = NaturalGraph::Amazon.generate(128);
        let w = NaturalGraph::Wiki.generate(256); // similar vertex counts
        assert_ne!(a.edges().first(), w.edges().first());
    }

    #[test]
    fn fitted_alphas_in_natural_band() {
        for g in NaturalGraph::ALL {
            let alpha = g.spec().fitted_alpha();
            assert!((1.5..3.2).contains(&alpha), "{}: alpha = {alpha}", g.name());
        }
    }

    #[test]
    fn wiki_sparser_than_social() {
        assert!(
            NaturalGraph::Wiki.spec().avg_degree()
                < NaturalGraph::SocialNetwork.spec().avg_degree()
        );
        // Sparser -> larger fitted alpha.
        assert!(
            NaturalGraph::Wiki.spec().fitted_alpha()
                > NaturalGraph::SocialNetwork.spec().fitted_alpha()
        );
    }

    #[test]
    fn generated_graphs_are_skewed() {
        let g = NaturalGraph::SocialNetwork.generate(256);
        assert!(g.degree_stats().coefficient_of_variation() > 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        NaturalGraph::Amazon.spec().scaled_vertices(0);
    }
}
