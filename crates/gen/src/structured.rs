//! Deterministic structured graphs for tests and examples.

use hetgraph_core::{Edge, EdgeList, Graph};

/// Directed ring `0 -> 1 -> … -> n-1 -> 0`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn ring(n: u32) -> Graph {
    assert!(n > 0, "ring requires at least one vertex");
    let edges = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

/// Star with hub 0 pointing at every other vertex.
///
/// # Panics
/// Panics if `n == 0`.
pub fn star(n: u32) -> Graph {
    assert!(n > 0, "star requires at least one vertex");
    let edges = (1..n).map(|v| Edge::new(0, v)).collect();
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

/// Directed path `0 -> 1 -> … -> n-1`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn path(n: u32) -> Graph {
    assert!(n > 0, "path requires at least one vertex");
    let edges = (0..n.saturating_sub(1))
        .map(|v| Edge::new(v, v + 1))
        .collect();
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

/// 2-D grid of `rows x cols` vertices with edges right and down.
///
/// # Panics
/// Panics if either dimension is zero or `rows * cols` overflows `u32`.
pub fn grid(rows: u32, cols: u32) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let n = rows.checked_mul(cols).expect("grid size overflows u32");
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push(Edge::new(v, v + 1));
            }
            if r + 1 < rows {
                edges.push(Edge::new(v, v + cols));
            }
        }
    }
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

/// Complete directed graph on `n` vertices (all ordered pairs, no loops).
///
/// # Panics
/// Panics if `n == 0`.
pub fn complete(n: u32) -> Graph {
    assert!(n > 0, "complete graph requires at least one vertex");
    let mut edges = Vec::with_capacity((n as usize) * (n as usize - 1));
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push(Edge::new(u, v));
            }
        }
    }
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

/// Two cliques of size `k` joined by a single bridge edge — the classic
/// connected-components / partitioning stress shape.
pub fn barbell(k: u32) -> Graph {
    assert!(k > 0, "barbell requires positive clique size");
    let n = 2 * k;
    let mut edges = Vec::new();
    for base in [0, k] {
        for u in 0..k {
            for v in 0..k {
                if u != v {
                    edges.push(Edge::new(base + u, base + v));
                }
            }
        }
    }
    edges.push(Edge::new(k - 1, k)); // the bridge
    Graph::from_edge_list(EdgeList::from_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_degrees() {
        let g = ring(5);
        assert_eq!(g.num_edges(), 5);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(5), 1);
    }

    #[test]
    fn path_endpoints() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // right edges: 3 * 3 = 9, down edges: 2 * 4 = 8
        assert_eq!(g.num_edges(), 17);
    }

    #[test]
    fn complete_edge_count() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn barbell_has_bridge() {
        let g = barbell(3);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2 * 6 + 1);
        assert!(g.out_neighbors(2).contains(&3));
    }
}
