//! The BSP superstep simulator: one kernel, any thread count.
//!
//! There is exactly **one** implementation of the gather→apply→scatter
//! superstep loop in this crate: [`SimEngine::run_on_with_threads`]. The
//! serial engine is its 1-thread degenerate case ([`scheduled`] runs jobs
//! inline on the calling thread when it has one worker), and
//! [`SimEngine::run`], [`SimEngine::run_on`], [`SimEngine::run_parallel`],
//! and [`SimEngine::run_parallel_on`] are thin wrappers over it. Cost
//! accounting — per-machine work attribution, [`NetworkModel`] barrier
//! time, energy, and [`crate::report::StepRecord`] tracing — therefore
//! lives in exactly one place per superstep.
//!
//! **Determinism is exact and thread-count-independent.** Active vertices
//! are split into fixed-size chunks (independent of the worker count),
//! workers self-schedule chunks off a shared atomic cursor (so power-law
//! work skew cannot idle threads), and [`scheduled`] hands results back in
//! chunk order, where they are merged by one serial fold. Per-vertex GAS
//! methods are pure functions of the previous superstep, so vertex data is
//! bitwise identical at any thread count; the simulated work counts are
//! sums of integer-valued `f64` contributions, so even the floating-point
//! cost accounting associates exactly. `tests/engine_snapshot.rs` pins the
//! full `SimReport` JSON against the pre-unification serial engine at 1,
//! 2, and 4 threads.
//!
//! The hot path avoids per-superstep allocation churn: the active list,
//! changed list, and activation bitsets are reused across supersteps, the
//! chunk slices are derived from index arithmetic instead of a collected
//! `Vec<&[u32]>`, and the per-chunk scratch buffers (work counts, sync
//! counts, change lists) cycle through a [`Pool`] so a superstep reuses
//! the previous superstep's allocations.
//!
//! Note the distinction between the two kinds of time here: the thread
//! budget changes how long the *host* takes to compute the simulation; the
//! *simulated* cluster times it produces are independent of it.

use hetgraph_cluster::{
    AppProfile, Cluster, EnergyModel, EnergyReport, GraphShape, MachineSpec, NetworkModel,
    WorkCounts,
};
use hetgraph_core::obs::{Recorder, TraceEvent, NOOP};
use hetgraph_core::par::{scheduled, Pool};
use hetgraph_core::{BitSet, Graph, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

use crate::distributed::DistributedGraph;
use crate::program::{ActiveInit, Direction, GasProgram};
use crate::report::SimReport;

/// Vertices per self-scheduled chunk. Small enough that hub-heavy chunks
/// cannot stall the tail, big enough to amortize the atomic fetch. Fixed
/// (never derived from the thread count) so chunk boundaries — and hence
/// every floating-point merge — are identical at any thread budget.
const CHUNK: usize = 1_024;

/// The execution engine: runs a [`GasProgram`] over a partitioned graph on
/// a simulated heterogeneous cluster.
pub struct SimEngine<'a> {
    cluster: &'a Cluster,
    network: NetworkModel,
    recorder: &'a dyn Recorder,
}

/// Result of a run: the real computed vertex data plus the simulated
/// performance report.
pub struct SimOutcome<D> {
    /// Final per-vertex data (real algorithm output).
    pub data: Vec<D>,
    /// Simulated timing/energy report.
    pub report: SimReport,
}

/// Per-chunk result of the gather/apply phase. The buffers are pooled:
/// after the merge drains them they go back to the [`Pool`] for the next
/// superstep's chunks.
struct GatherChunk<D> {
    changes: Vec<(VertexId, D, bool)>,
    work: Vec<WorkCounts>,
    sync_counts: Vec<u64>,
}

impl<D> GatherChunk<D> {
    fn new(p: usize) -> Self {
        GatherChunk {
            changes: Vec::new(),
            work: vec![WorkCounts::zero(); p],
            sync_counts: vec![0u64; p],
        }
    }

    /// Reset for reuse; `changes` is expected to be already drained.
    fn recycle(&mut self) {
        debug_assert!(self.changes.is_empty(), "changes must be drained first");
        for w in &mut self.work {
            *w = WorkCounts::zero();
        }
        self.sync_counts.fill(0);
    }
}

/// Per-chunk result of the scatter phase, pooled like [`GatherChunk`].
struct ScatterChunk {
    work: Vec<WorkCounts>,
    activations: Vec<VertexId>,
}

impl ScatterChunk {
    fn new(p: usize) -> Self {
        ScatterChunk {
            work: vec![WorkCounts::zero(); p],
            activations: Vec::new(),
        }
    }

    fn recycle(&mut self) {
        for w in &mut self.work {
            *w = WorkCounts::zero();
        }
        self.activations.clear();
    }
}

impl<'a> SimEngine<'a> {
    /// Engine with the default network model.
    pub fn new(cluster: &'a Cluster) -> Self {
        SimEngine {
            cluster,
            network: NetworkModel::default(),
            recorder: &NOOP,
        }
    }

    /// Engine with a custom network model.
    pub fn with_network(cluster: &'a Cluster, network: NetworkModel) -> Self {
        SimEngine {
            cluster,
            network,
            recorder: &NOOP,
        }
    }

    /// Attach a [`Recorder`]. With an enabled recorder the kernel records
    /// a [`crate::report::StepRecord`] per superstep and emits structured
    /// trace events: per-machine gather/apply/scatter spans, per-machine
    /// `barrier_wait` slack (`max busy − busy_i`), the cluster-wide
    /// communication barrier, and per-superstep counters (active
    /// vertices, imbalance, straggler machine) — all in simulated time,
    /// plus host wall-clock spans for the fan-out phases. With the
    /// default [`NOOP`] recorder all of that costs one branch per
    /// superstep (traces grow linearly with supersteps, so recording is
    /// off by default).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The cluster this engine simulates.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The communication model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The recorder events are emitted to ([`NOOP`] unless
    /// [`SimEngine::with_recorder`] was called).
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder
    }

    /// Execute `program` on `graph` partitioned by `assignment`, serially.
    ///
    /// # Panics
    /// Panics if the assignment's machine count differs from the cluster's.
    pub fn run<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        self.run_with_threads(graph, assignment, program, 1)
    }

    /// [`SimEngine::run`] over a prebuilt [`DistributedGraph`].
    ///
    /// Building the distributed view is O(edges); sweeps that execute many
    /// apps over one partition build it once and call this per app.
    ///
    /// # Panics
    /// Panics if the assignment's machine count differs from the cluster's.
    pub fn run_on<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        self.run_on_with_threads(dist, program, 1)
    }

    /// [`SimEngine::run`] with `host_threads` OS threads (identical
    /// results; see the module docs for the determinism contract).
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_with_threads<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        let dist = DistributedGraph::new_with_threads(graph, assignment, host_threads);
        self.run_on_with_threads(&dist, program, host_threads)
    }

    /// Alias of [`SimEngine::run_with_threads`], kept for call sites that
    /// read better with the explicit "parallel" name.
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_parallel<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        self.run_with_threads(graph, assignment, program, host_threads)
    }

    /// Alias of [`SimEngine::run_on_with_threads`] (see
    /// [`SimEngine::run_parallel`]).
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_parallel_on<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        self.run_on_with_threads(dist, program, host_threads)
    }

    /// **The superstep kernel** — the one implementation of the BSP
    /// gather→apply→scatter loop, over a prebuilt [`DistributedGraph`],
    /// fanned out across `host_threads` self-scheduling workers
    /// (`host_threads == 1` runs inline with no thread spawns).
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_on_with_threads<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        assert!(host_threads > 0, "need at least one host thread");
        let graph = dist.graph();
        let assignment = dist.assignment();
        assert_eq!(
            assignment.num_machines(),
            self.cluster.len(),
            "assignment and cluster must have the same machine count"
        );
        let p = self.cluster.len();
        let n = graph.num_vertices() as usize;
        let profile = program.profile();
        profile.assert_valid();
        let shape = GraphShape::of(graph);
        let machines = self.cluster.machines();
        let energy_model = EnergyModel::new(machines.to_vec());

        let mut data: Vec<P::VertexData> = (0..n as u32).map(|v| program.init(graph, v)).collect();
        let mut active = match program.initial_active(graph) {
            ActiveInit::All => BitSet::full(n),
            ActiveInit::Seeds(seeds) => {
                let mut s = BitSet::new(n);
                for v in seeds {
                    s.insert(v as usize);
                }
                s
            }
        };

        let mut energy = EnergyReport::new(p);
        let mut per_machine_busy = vec![0.0f64; p];
        let mut total_work = vec![WorkCounts::zero(); p];
        let mut makespan = 0.0f64;
        let mut compute_total = 0.0f64;
        let mut comm_total = 0.0f64;
        let mut supersteps = 0usize;
        let mut converged = false;
        let mut steps: Vec<crate::report::StepRecord> = Vec::new();

        // Buffers reused across supersteps (see module docs).
        let mut active_list: Vec<u32> = Vec::new();
        let mut changed: Vec<u32> = Vec::new();
        let mut next_active = BitSet::new(n);
        let mut step_work = vec![WorkCounts::zero(); p];
        let mut sync_counts = vec![0u64; p];
        let mut busy = vec![0.0f64; p];
        let gather_pool: Pool<GatherChunk<P::VertexData>> = Pool::new();
        let scatter_pool: Pool<ScatterChunk> = Pool::new();

        // Observability: with the default NoopRecorder this one branch is
        // the entire per-superstep cost of instrumentation. Sim-domain
        // events are emitted only from the serial timing section below,
        // so their order — and the exported trace bytes — are independent
        // of `host_threads`.
        let recorder = self.recorder;
        let tracing = recorder.enabled();
        // Snapshot of `step_work` taken between gather-merge and scatter,
        // used to split each machine's busy time into per-phase spans.
        let mut gather_work = vec![WorkCounts::zero(); p];

        for step in 0..program.max_supersteps() {
            if active.is_empty() {
                converged = true;
                break;
            }
            active_list.clear();
            active_list.extend(active.iter().map(|v| v as u32));
            for w in &mut step_work {
                *w = WorkCounts::zero();
            }
            sync_counts.fill(0);

            // --- Gather + Apply (reads previous-step data), fanned out ---
            let wall_gather_t0 = if tracing { recorder.now_us() } else { 0.0 };
            let n_chunks = active_list.len().div_ceil(CHUNK);
            let gathered: Vec<GatherChunk<P::VertexData>> =
                scheduled(n_chunks, host_threads, |idx| {
                    let lo = idx * CHUNK;
                    let hi = (lo + CHUNK).min(active_list.len());
                    let mut out = gather_pool.take(|| GatherChunk::new(p));
                    gather_chunk(
                        &mut out,
                        &active_list[lo..hi],
                        graph,
                        dist,
                        assignment,
                        program,
                        &data,
                        step,
                    );
                    out
                });

            // --- Merge in chunk order, commit applies (Jacobi barrier) ---
            changed.clear();
            for mut c in gathered {
                for i in 0..p {
                    step_work[i].add(c.work[i]);
                    sync_counts[i] += c.sync_counts[i];
                }
                for (v, nd, did_change) in c.changes.drain(..) {
                    data[v as usize] = nd;
                    if did_change {
                        changed.push(v);
                    }
                }
                c.recycle();
                gather_pool.put(c);
            }
            if tracing {
                gather_work.copy_from_slice(&step_work);
                let t = recorder.now_us();
                recorder.record(TraceEvent::wall_span(
                    "gather_merge",
                    "host",
                    0,
                    wall_gather_t0,
                    t - wall_gather_t0,
                ));
            }

            // --- Scatter (sees post-apply data), fanned out over changed ---
            let wall_scatter_t0 = if tracing { recorder.now_us() } else { 0.0 };
            next_active.clear();
            if program.scatter_direction() != Direction::None && !changed.is_empty() {
                let n_sc_chunks = changed.len().div_ceil(CHUNK);
                let scattered: Vec<ScatterChunk> = scheduled(n_sc_chunks, host_threads, |idx| {
                    let lo = idx * CHUNK;
                    let hi = (lo + CHUNK).min(changed.len());
                    let mut out = scatter_pool.take(|| ScatterChunk::new(p));
                    scatter_chunk(&mut out, &changed[lo..hi], graph, dist, program, &data);
                    out
                });
                for mut c in scattered {
                    for (i, w) in step_work.iter_mut().enumerate().take(p) {
                        w.add(c.work[i]);
                    }
                    for &u in &c.activations {
                        next_active.insert(u as usize);
                    }
                    c.recycle();
                    scatter_pool.put(c);
                }
            }
            if tracing {
                let t = recorder.now_us();
                recorder.record(TraceEvent::wall_span(
                    "scatter_fanout",
                    "host",
                    0,
                    wall_scatter_t0,
                    t - wall_scatter_t0,
                ));
            }

            // --- Timing, energy, bookkeeping: once, here, only here ---
            busy.clear();
            busy.extend((0..p).map(|i| profile.time_seconds(&machines[i], &step_work[i], &shape)));
            let step_compute = busy.iter().copied().fold(0.0f64, f64::max);
            let step_comm = self.network.step_comm_s(machines, &sync_counts);
            let step_wall = step_compute + step_comm;
            for i in 0..p {
                energy_model.account_step(&mut energy, i, busy[i], step_wall);
                per_machine_busy[i] += busy[i];
                total_work[i].add(step_work[i]);
            }
            if tracing {
                emit_step_trace(
                    recorder,
                    &EmitStep {
                        machines,
                        profile: &profile,
                        shape: &shape,
                        step_work: &step_work,
                        gather_work: &gather_work,
                        busy: &busy,
                        step_start_s: makespan,
                        step_compute,
                        step_comm,
                        active: active_list.len(),
                    },
                );
                steps.push(crate::report::StepRecord {
                    step,
                    active: active_list.len(),
                    busy_s: busy.clone(),
                    comm_s: step_comm,
                    wall_s: step_wall,
                });
            }
            makespan += step_wall;
            compute_total += step_compute;
            comm_total += step_comm;
            supersteps += 1;
            std::mem::swap(&mut active, &mut next_active);
        }
        if active.is_empty() {
            converged = true;
        }

        SimOutcome {
            data,
            report: SimReport {
                app: program.name().to_string(),
                supersteps,
                converged,
                makespan_s: makespan,
                compute_s: compute_total,
                comm_s: comm_total,
                per_machine_busy_s: per_machine_busy,
                per_machine_work: total_work,
                energy,
                steps,
            },
        }
    }
}

/// Inputs to [`emit_step_trace`]: one superstep's timing state, borrowed
/// from the kernel's serial timing section.
struct EmitStep<'s> {
    machines: &'s [MachineSpec],
    profile: &'s AppProfile,
    shape: &'s GraphShape,
    /// Total per-machine work for the superstep (gather + scatter).
    step_work: &'s [WorkCounts],
    /// Per-machine work snapshotted after the gather merge, before
    /// scatter — the gather/apply share of `step_work`.
    gather_work: &'s [WorkCounts],
    busy: &'s [f64],
    step_start_s: f64,
    step_compute: f64,
    step_comm: f64,
    active: usize,
}

/// Emit one superstep's simulated-time trace: per-machine
/// gather/apply/scatter spans, per-machine `barrier_wait` slack, the
/// cluster-wide communication barrier, and the step counters.
///
/// Called only from the kernel's serial timing section, so event order is
/// deterministic and independent of the host thread count. Machine `i`
/// records on track `i`; cluster-wide events use track `P`.
///
/// The per-phase spans split `busy[i]` by re-costing each phase's work
/// through the same performance model and normalizing so the three spans
/// sum exactly to `busy[i]` (the model is not additive across phases —
/// skew relief sees the whole step — so the split is proportional
/// attribution, not three independent model evaluations).
fn emit_step_trace(recorder: &dyn Recorder, s: &EmitStep<'_>) {
    let p = s.busy.len();
    for i in 0..p {
        let gw = s.gather_work[i];
        let scatter_edges = s.step_work[i].edge_units - gw.edge_units;
        let phase_costs = [
            (
                "gather",
                WorkCounts {
                    edge_units: gw.edge_units,
                    vertex_units: 0.0,
                },
            ),
            (
                "apply",
                WorkCounts {
                    edge_units: 0.0,
                    vertex_units: gw.vertex_units,
                },
            ),
            (
                "scatter",
                WorkCounts {
                    edge_units: scatter_edges,
                    vertex_units: 0.0,
                },
            ),
        ]
        .map(|(name, w)| (name, s.profile.time_seconds(&s.machines[i], &w, s.shape)));
        let total: f64 = phase_costs.iter().map(|(_, t)| t).sum();
        if total > 0.0 && s.busy[i] > 0.0 {
            let scale = s.busy[i] / total;
            let mut cursor = s.step_start_s;
            for (name, t) in phase_costs {
                let dur = t * scale;
                if dur > 0.0 {
                    recorder.record(TraceEvent::sim_span(
                        name,
                        "superstep",
                        i as u32,
                        cursor,
                        dur,
                    ));
                }
                cursor += dur;
            }
        }
        // Barrier-wait attribution: how long machine i idles at the
        // superstep barrier waiting for the straggler.
        let slack = s.step_compute - s.busy[i];
        if slack > 0.0 {
            recorder.record(TraceEvent::sim_span(
                "barrier_wait",
                "superstep",
                i as u32,
                s.step_start_s + s.busy[i],
                slack,
            ));
        }
    }
    if s.step_comm > 0.0 {
        recorder.record(TraceEvent::sim_span(
            "comm_barrier",
            "superstep",
            p as u32,
            s.step_start_s + s.step_compute,
            s.step_comm,
        ));
    }
    recorder.record(TraceEvent::sim_counter(
        "active_vertices",
        p as u32,
        s.step_start_s,
        s.active as f64,
    ));
    let mean_busy = s.busy.iter().sum::<f64>() / p as f64;
    let imbalance = if mean_busy > 0.0 {
        s.step_compute / mean_busy
    } else {
        1.0
    };
    recorder.record(TraceEvent::sim_gauge(
        "imbalance",
        p as u32,
        s.step_start_s,
        imbalance,
    ));
    // The straggler is the machine that gates the barrier: the (lowest
    // on ties) index whose busy time equals the step maximum.
    let straggler = s
        .busy
        .iter()
        .position(|&b| b == s.step_compute)
        .unwrap_or(0);
    recorder.record(TraceEvent::sim_gauge(
        "straggler_machine",
        p as u32,
        s.step_start_s,
        straggler as f64,
    ));
}

#[allow(clippy::too_many_arguments)]
fn gather_chunk<P: GasProgram>(
    out: &mut GatherChunk<P::VertexData>,
    chunk: &[u32],
    graph: &Graph,
    dist: &DistributedGraph<'_>,
    assignment: &PartitionAssignment,
    program: &P,
    data: &[P::VertexData],
    step: usize,
) {
    let GatherChunk {
        changes,
        work,
        sync_counts,
    } = out;
    changes.reserve(chunk.len());
    for &v in chunk {
        let mut acc: Option<P::Accum> = None;
        for_each_neighbor(dist, v, program.gather_direction(), |u, m| {
            let (contrib, w) = program.gather(graph, data, v, u);
            work[m.index()].edge_units += w;
            if let Some(c) = contrib {
                acc = Some(match acc.take() {
                    Some(prev) => program.sum(prev, c),
                    None => c,
                });
            }
        });
        let master = assignment.master(v);
        work[master.index()].vertex_units += 1.0;
        let (nd, did_change) = program.apply(graph, v, &data[v as usize], acc, step);
        changes.push((v, nd, did_change));

        // Mirror synchronization: an active vertex exchanges one message
        // per mirror in each direction; charge the master once per mirror
        // and each mirror once.
        let mask = assignment.replica_mask(v);
        let replicas = mask.count_ones();
        if replicas > 1 {
            sync_counts[master.index()] += (replicas - 1) as u64;
            let mut rest = mask;
            while rest != 0 {
                let m = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if m != master.index() {
                    sync_counts[m] += 1;
                }
            }
        }
    }
}

fn scatter_chunk<P: GasProgram>(
    out: &mut ScatterChunk,
    chunk: &[u32],
    graph: &Graph,
    dist: &DistributedGraph<'_>,
    program: &P,
    data: &[P::VertexData],
) {
    let ScatterChunk { work, activations } = out;
    for &v in chunk {
        for_each_neighbor(dist, v, program.scatter_direction(), |u, m| {
            work[m.index()].edge_units += 1.0;
            if program.scatter_activates(graph, data, v, u, true) {
                activations.push(u);
            }
        });
    }
}

/// Visit each neighbor of `v` in the given direction with its edge owner.
fn for_each_neighbor(
    dist: &DistributedGraph<'_>,
    v: VertexId,
    dir: Direction,
    mut f: impl FnMut(VertexId, MachineId),
) {
    match dir {
        Direction::In => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::Out => {
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::Both => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m);
            }
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::obs::TraceRecorder;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    /// Minimal label-propagation program: every vertex takes the minimum
    /// label among itself and its in+out neighbors (connected components).
    struct MinLabel;

    fn test_profile() -> AppProfile {
        AppProfile {
            name: "min_label".into(),
            edge_flops: 50.0,
            edge_bytes: 40.0,
            vertex_flops: 10.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.05,
            parallel_exponent: 1.0,
            skew_sensitivity: 0.3,
            relief_floor: 0.7,
            relief_ref_degree: 10.0,
        }
    }

    impl GasProgram for MinLabel {
        type VertexData = u32;
        type Accum = u32;

        fn name(&self) -> &'static str {
            "min_label"
        }
        fn profile(&self) -> AppProfile {
            test_profile()
        }
        fn init(&self, _g: &Graph, v: VertexId) -> u32 {
            v
        }
        fn gather_direction(&self) -> Direction {
            Direction::Both
        }
        fn gather(
            &self,
            _g: &Graph,
            data: &[u32],
            _v: VertexId,
            u: VertexId,
        ) -> (Option<u32>, f64) {
            (Some(data[u as usize]), 1.0)
        }
        fn sum(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(
            &self,
            _g: &Graph,
            _v: VertexId,
            old: &u32,
            acc: Option<u32>,
            _step: usize,
        ) -> (u32, bool) {
            let candidate = acc.map_or(*old, |a| a.min(*old));
            (candidate, candidate < *old)
        }
        fn scatter_direction(&self) -> Direction {
            Direction::Both
        }
    }

    fn two_components() -> Graph {
        // {0,1,2} ring and {3,4} pair.
        Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(3, 4),
            ],
        ))
    }

    fn big_graph() -> Graph {
        let n = 5_000u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 13 + 7) % n));
            edges.push(Edge::new(v, (v * 31 + 3) % n));
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    fn partitioned(g: &Graph, cluster: &Cluster) -> PartitionAssignment {
        RandomHash::new().partition(g, &MachineWeights::uniform(cluster.len()))
    }

    #[test]
    fn computes_correct_labels() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert_eq!(out.data, vec![0, 0, 0, 3, 3]);
        assert!(out.report.converged);
    }

    #[test]
    fn result_independent_of_partitioning() {
        let g = two_components();
        let c2 = Cluster::case2();
        let c3 = Cluster::case3();
        let r1 = SimEngine::new(&c2).run(&g, &partitioned(&g, &c2), &MinLabel);
        let a_skewed = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let r2 = SimEngine::new(&c3).run(&g, &a_skewed, &MinLabel);
        assert_eq!(r1.data, r2.data, "results must not depend on placement");
    }

    #[test]
    fn timing_is_positive_and_consistent() {
        let g = two_components();
        let cluster = Cluster::case2();
        let out = SimEngine::new(&cluster).run(&g, &partitioned(&g, &cluster), &MinLabel);
        let r = &out.report;
        assert!(r.makespan_s > 0.0);
        assert!((r.makespan_s - (r.compute_s + r.comm_s)).abs() < 1e-12);
        assert!(r.supersteps >= 2);
        assert_eq!(r.per_machine_busy_s.len(), 2);
        assert!(r.energy.total_j() > 0.0);
    }

    #[test]
    fn deterministic() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let r1 = SimEngine::new(&cluster).run(&g, &a, &MinLabel).report;
        let r2 = SimEngine::new(&cluster).run(&g, &a, &MinLabel).report;
        assert_eq!(r1, r2);
    }

    #[test]
    fn work_lands_on_edge_owners() {
        let g = two_components();
        let cluster = Cluster::case2();
        // All edges on machine 1: machine 0 must see zero edge work.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![1, 1, 1, 1]);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert_eq!(out.report.per_machine_work[0].edge_units, 0.0);
        assert!(out.report.per_machine_work[1].edge_units > 0.0);
    }

    #[test]
    fn better_placement_reduces_makespan() {
        // A chain graph with all edges on the slow machine vs all on the
        // fast machine: the fast placement must finish sooner.
        let n = 2_000u32;
        let edges: Vec<Edge> = (0..n - 1).map(|v| Edge::new(v, v + 1)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2(); // m0 slow, m1 fast
        let m = g.num_edges();
        let slow = PartitionAssignment::from_edge_machines(&g, 2, vec![0; m]);
        let fast = PartitionAssignment::from_edge_machines(&g, 2, vec![1; m]);
        let engine = SimEngine::new(&cluster);
        let t_slow = engine.run(&g, &slow, &MinLabel).report.makespan_s;
        let t_fast = engine.run(&g, &fast, &MinLabel).report.makespan_s;
        assert!(t_fast < t_slow, "fast {t_fast} !< slow {t_slow}");
    }

    #[test]
    fn tracing_records_every_superstep() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let rec = TraceRecorder::new();
        let traced = SimEngine::new(&cluster)
            .with_recorder(&rec)
            .run(&g, &a, &MinLabel);
        let plain = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert!(plain.report.steps.is_empty(), "tracing is off by default");
        assert_eq!(traced.report.steps.len(), traced.report.supersteps);
        // The trace must tally with the aggregate report.
        let wall: f64 = traced.report.steps.iter().map(|s| s.wall_s).sum();
        assert!((wall - traced.report.makespan_s).abs() < 1e-12);
        assert_eq!(
            traced.report.steps[0].active, 5,
            "all vertices active at step 0"
        );
        for s in &traced.report.steps {
            assert!(s.imbalance() >= 1.0);
        }
        // Tracing must not change results.
        assert_eq!(traced.data, plain.data);
    }

    #[test]
    fn trace_events_cover_machines_phases_and_counters() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let rec = TraceRecorder::new();
        let out = SimEngine::new(&cluster)
            .with_recorder(&rec)
            .run(&g, &a, &MinLabel);
        let events = rec.take_events();
        assert!(!events.is_empty());
        let sim: Vec<_> = events
            .iter()
            .filter(|e| e.domain == hetgraph_core::obs::TimeDomain::Sim)
            .collect();
        // Per-superstep counters land on the cluster-wide track.
        let p = cluster.len() as u32;
        for name in ["active_vertices", "imbalance", "straggler_machine"] {
            let count = sim.iter().filter(|e| e.name == name).count();
            assert_eq!(count, out.report.supersteps, "{name} once per superstep");
            assert!(sim.iter().all(|e| e.name != name || e.track == p));
        }
        // Every machine gets phase spans on its own lane.
        for i in 0..p {
            assert!(
                sim.iter().any(|e| e.track == i && e.name == "gather"),
                "machine {i} has gather spans"
            );
        }
        // Wall-clock phase spans from the host coordinator exist too.
        assert!(events.iter().any(|e| e.name == "gather_merge"));
        assert!(events.iter().any(|e| e.name == "scatter_fanout"));
    }

    #[test]
    fn trace_phase_spans_sum_to_busy_time() {
        let g = big_graph();
        let cluster = Cluster::case3();
        let a = partitioned(&g, &cluster);
        let rec = TraceRecorder::new();
        let out = SimEngine::new(&cluster)
            .with_recorder(&rec)
            .run(&g, &a, &MinLabel);
        let events = rec.take_events();
        // Per machine: Σ (gather+apply+scatter spans) == total busy, and
        // Σ barrier_wait == compute_s − busy_i (the derived attribution).
        for i in 0..cluster.len() {
            let phase_total: f64 = events
                .iter()
                .filter(|e| {
                    e.track == i as u32 && matches!(e.name.as_str(), "gather" | "apply" | "scatter")
                })
                .map(|e| e.dur_us / 1e6)
                .sum();
            let busy = out.report.per_machine_busy_s[i];
            assert!(
                (phase_total - busy).abs() <= 1e-9 * busy.max(1.0),
                "machine {i}: phase spans {phase_total} != busy {busy}"
            );
            let wait_total: f64 = events
                .iter()
                .filter(|e| e.track == i as u32 && e.name == "barrier_wait")
                .map(|e| e.dur_us / 1e6)
                .sum();
            let slack = out.report.compute_s - busy;
            assert!(
                (wait_total - slack).abs() <= 1e-9 * slack.max(1.0),
                "machine {i}: barrier_wait {wait_total} != slack {slack}"
            );
        }
    }

    #[test]
    fn sim_trace_is_byte_identical_across_thread_counts() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let trace_at = |threads: usize| {
            let rec = TraceRecorder::new();
            SimEngine::new(&cluster)
                .with_recorder(&rec)
                .run_parallel(&g, &a, &MinLabel, threads);
            hetgraph_core::obs::chrome_trace_sim(&rec.take_events())
        };
        let reference = trace_at(1);
        assert!(reference.contains("barrier_wait"));
        for threads in [2, 4] {
            assert_eq!(trace_at(threads), reference, "{threads} threads");
        }
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = Graph::from_edge_list(EdgeList::new(0));
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert!(out.report.converged);
        assert_eq!(out.report.supersteps, 0);
        assert_eq!(out.report.makespan_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "same machine count")]
    fn cluster_mismatch_panics() {
        let g = two_components();
        let cluster = Cluster::case2(); // 2 machines
        let a = PartitionAssignment::from_edge_machines(&g, 3, vec![0, 1, 2, 0]);
        SimEngine::new(&cluster).run(&g, &a, &MinLabel);
    }

    #[test]
    fn parallel_matches_serial_data_and_report_exactly() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let seq = engine.run(&g, &a, &MinLabel);
        for threads in [1, 2, 4] {
            let par = engine.run_parallel(&g, &a, &MinLabel, threads);
            assert_eq!(par.data, seq.data, "{threads} threads");
            // One kernel, integer-valued work contributions: the report is
            // bitwise identical at any thread count, not merely close.
            assert_eq!(par.report, seq.report, "{threads} threads");
        }
    }

    #[test]
    fn parallel_work_attribution_matches() {
        let g = big_graph();
        let cluster = Cluster::case3();
        let a = RandomHash::new().partition(&g, &MachineWeights::from_ccr(&[1.0, 4.0]));
        let engine = SimEngine::new(&cluster);
        let seq = engine.run(&g, &a, &MinLabel).report;
        let par = engine.run_parallel(&g, &a, &MinLabel, 3).report;
        for i in 0..2 {
            assert_eq!(
                seq.per_machine_work[i].edge_units, par.per_machine_work[i].edge_units,
                "machine {i} edge work"
            );
            assert_eq!(
                seq.per_machine_work[i].vertex_units, par.per_machine_work[i].vertex_units,
                "machine {i} vertex work"
            );
        }
        assert_eq!(seq.energy.busy_s.len(), par.energy.busy_s.len());
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let r1 = engine.run_parallel(&g, &a, &MinLabel, 4);
        let r2 = engine.run_parallel(&g, &a, &MinLabel, 4);
        assert_eq!(r1.data, r2.data);
        assert_eq!(r1.report, r2.report);
    }

    #[test]
    fn shared_view_matches_fresh_view() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let dist = DistributedGraph::new(&g, &a);
        let direct = engine.run_parallel(&g, &a, &MinLabel, 2);
        let shared = engine.run_parallel_on(&dist, &MinLabel, 2);
        assert_eq!(direct.data, shared.data);
        assert_eq!(direct.report, shared.report);
        // The serial wrapper over the same shared view agrees too.
        let serial = engine.run_on(&dist, &MinLabel);
        assert_eq!(serial.data, shared.data);
    }

    #[test]
    fn empty_graph_parallel() {
        let g = Graph::from_edge_list(EdgeList::new(0));
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        let out = SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 2);
        assert!(out.report.converged);
        assert_eq!(out.report.supersteps, 0);
    }

    #[test]
    #[should_panic(expected = "at least one host thread")]
    fn zero_threads_rejected() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 0);
    }

    /// The twin-engine drift hazard must not silently return: the BSP
    /// superstep loop (identified by its `max_supersteps` driver) exists
    /// in exactly one module of this crate.
    #[test]
    fn superstep_loop_exists_in_exactly_one_module() {
        let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let mut hits = Vec::new();
        for entry in std::fs::read_dir(&src).expect("read engine src/") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read source file");
            // Split so this test's own source doesn't count as a hit.
            let marker = concat!("for step in 0..program", ".max_supersteps()");
            let count = text.matches(marker).count();
            if count > 0 {
                hits.push((
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    count,
                ));
            }
        }
        assert_eq!(
            hits,
            vec![("sim.rs".to_string(), 1)],
            "the superstep loop must exist exactly once, in sim.rs; found {hits:?}"
        );
    }
}
