//! The BSP superstep simulator.

use hetgraph_cluster::{Cluster, EnergyModel, EnergyReport, GraphShape, NetworkModel, WorkCounts};
use hetgraph_core::{BitSet, Graph, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

use crate::distributed::DistributedGraph;
use crate::program::{ActiveInit, Direction, GasProgram};
use crate::report::SimReport;

/// The execution engine: runs a [`GasProgram`] over a partitioned graph on
/// a simulated heterogeneous cluster.
pub struct SimEngine<'a> {
    cluster: &'a Cluster,
    network: NetworkModel,
    trace: bool,
}

/// Result of a run: the real computed vertex data plus the simulated
/// performance report.
pub struct SimOutcome<D> {
    /// Final per-vertex data (real algorithm output).
    pub data: Vec<D>,
    /// Simulated timing/energy report.
    pub report: SimReport,
}

impl<'a> SimEngine<'a> {
    /// Engine with the default network model.
    pub fn new(cluster: &'a Cluster) -> Self {
        SimEngine {
            cluster,
            network: NetworkModel::default(),
            trace: false,
        }
    }

    /// Engine with a custom network model.
    pub fn with_network(cluster: &'a Cluster, network: NetworkModel) -> Self {
        SimEngine {
            cluster,
            network,
            trace: false,
        }
    }

    /// Record a [`crate::report::StepRecord`] for every superstep (off by
    /// default: traces grow linearly with supersteps).
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The cluster this engine simulates.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The communication model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Whether per-superstep tracing is enabled.
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// Execute `program` on `graph` partitioned by `assignment`.
    ///
    /// # Panics
    /// Panics if the assignment's machine count differs from the cluster's.
    pub fn run<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        let dist = DistributedGraph::new(graph, assignment);
        self.run_on(&dist, program)
    }

    /// [`SimEngine::run`] over a prebuilt [`DistributedGraph`].
    ///
    /// Building the distributed view is O(edges); sweeps that execute many
    /// apps over one partition build it once and call this per app.
    ///
    /// # Panics
    /// Panics if the assignment's machine count differs from the cluster's.
    pub fn run_on<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        let graph = dist.graph();
        let assignment = dist.assignment();
        assert_eq!(
            assignment.num_machines(),
            self.cluster.len(),
            "assignment and cluster must have the same machine count"
        );
        let p = self.cluster.len();
        let n = graph.num_vertices() as usize;
        let profile = program.profile();
        profile.assert_valid();
        let shape = GraphShape::of(graph);
        let machines = self.cluster.machines();
        let energy_model = EnergyModel::new(machines.to_vec());

        let mut data: Vec<P::VertexData> = (0..n as u32).map(|v| program.init(graph, v)).collect();
        let mut active = match program.initial_active(graph) {
            ActiveInit::All => BitSet::full(n),
            ActiveInit::Seeds(seeds) => {
                let mut s = BitSet::new(n);
                for v in seeds {
                    s.insert(v as usize);
                }
                s
            }
        };

        let mut energy = EnergyReport::new(p);
        let mut per_machine_busy = vec![0.0f64; p];
        let mut total_work = vec![WorkCounts::zero(); p];
        let mut makespan = 0.0f64;
        let mut compute_total = 0.0f64;
        let mut comm_total = 0.0f64;
        let mut supersteps = 0usize;
        let mut converged = false;

        // Reused per-step buffers.
        let mut changes: Vec<(VertexId, P::VertexData, bool)> = Vec::new();
        let mut steps: Vec<crate::report::StepRecord> = Vec::new();

        for step in 0..program.max_supersteps() {
            if active.is_empty() {
                converged = true;
                break;
            }
            let step_active = active.len();
            let mut step_work = vec![WorkCounts::zero(); p];
            let mut sync_counts = vec![0u64; p];
            changes.clear();

            // --- Gather + Apply (reads previous-step data only) ---
            for v in active.iter() {
                let v = v as VertexId;
                let mut acc: Option<P::Accum> = None;
                for_each_neighbor(dist, v, program.gather_direction(), |u, m| {
                    let (contrib, w) = program.gather(graph, &data, v, u);
                    step_work[m.index()].edge_units += w;
                    if let Some(c) = contrib {
                        acc = Some(match acc.take() {
                            Some(prev) => program.sum(prev, c),
                            None => c,
                        });
                    }
                });
                let master = assignment.master(v);
                step_work[master.index()].vertex_units += 1.0;
                let (nd, changed) = program.apply(graph, v, &data[v as usize], acc, step);
                changes.push((v, nd, changed));

                // Mirror synchronization: an active vertex exchanges one
                // message per mirror in each direction; charge the master
                // once per mirror and each mirror once.
                let mask = assignment.replica_mask(v);
                let replicas = mask.count_ones();
                if replicas > 1 {
                    sync_counts[master.index()] += (replicas - 1) as u64;
                    let mut rest = mask;
                    while rest != 0 {
                        let m = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        if m != master.index() {
                            sync_counts[m] += 1;
                        }
                    }
                }
            }

            // --- Commit applies (Jacobi barrier) ---
            let mut next_active = BitSet::new(n);
            for (v, nd, _) in &changes {
                data[*v as usize] = nd.clone();
            }

            // --- Scatter (sees post-apply data) ---
            for (v, _, changed) in &changes {
                let (v, changed) = (*v, *changed);
                if program.scatter_direction() == Direction::None {
                    continue;
                }
                if !changed {
                    continue;
                }
                for_each_neighbor(dist, v, program.scatter_direction(), |u, m| {
                    step_work[m.index()].edge_units += 1.0;
                    if program.scatter_activates(graph, &data, v, u, changed) {
                        next_active.insert(u as usize);
                    }
                });
            }

            // --- Timing, energy, bookkeeping ---
            let busy: Vec<f64> = (0..p)
                .map(|i| profile.time_seconds(&machines[i], &step_work[i], &shape))
                .collect();
            let step_compute = busy.iter().copied().fold(0.0f64, f64::max);
            let step_comm = self.network.step_comm_s(machines, &sync_counts);
            let step_wall = step_compute + step_comm;
            for i in 0..p {
                energy_model.account_step(&mut energy, i, busy[i], step_wall);
                per_machine_busy[i] += busy[i];
                total_work[i].add(step_work[i]);
            }
            if self.trace {
                steps.push(crate::report::StepRecord {
                    step,
                    active: step_active,
                    busy_s: busy.clone(),
                    comm_s: step_comm,
                    wall_s: step_wall,
                });
            }
            makespan += step_wall;
            compute_total += step_compute;
            comm_total += step_comm;
            supersteps += 1;
            active = next_active;
        }
        if active.is_empty() {
            converged = true;
        }

        SimOutcome {
            data,
            report: SimReport {
                app: program.name().to_string(),
                supersteps,
                converged,
                makespan_s: makespan,
                compute_s: compute_total,
                comm_s: comm_total,
                per_machine_busy_s: per_machine_busy,
                per_machine_work: total_work,
                energy,
                steps,
            },
        }
    }
}

/// Visit each neighbor of `v` in the given direction with its edge owner.
fn for_each_neighbor(
    dist: &DistributedGraph<'_>,
    v: VertexId,
    dir: Direction,
    mut f: impl FnMut(VertexId, MachineId),
) {
    match dir {
        Direction::In => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::Out => {
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::Both => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m);
            }
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::AppProfile;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    /// Minimal label-propagation program: every vertex takes the minimum
    /// label among itself and its in+out neighbors (connected components).
    struct MinLabel;

    fn test_profile() -> AppProfile {
        AppProfile {
            name: "min_label".into(),
            edge_flops: 50.0,
            edge_bytes: 40.0,
            vertex_flops: 10.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.05,
            parallel_exponent: 1.0,
            skew_sensitivity: 0.3,
            relief_floor: 0.7,
            relief_ref_degree: 10.0,
        }
    }

    impl GasProgram for MinLabel {
        type VertexData = u32;
        type Accum = u32;

        fn name(&self) -> &'static str {
            "min_label"
        }
        fn profile(&self) -> AppProfile {
            test_profile()
        }
        fn init(&self, _g: &Graph, v: VertexId) -> u32 {
            v
        }
        fn gather_direction(&self) -> Direction {
            Direction::Both
        }
        fn gather(
            &self,
            _g: &Graph,
            data: &[u32],
            _v: VertexId,
            u: VertexId,
        ) -> (Option<u32>, f64) {
            (Some(data[u as usize]), 1.0)
        }
        fn sum(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(
            &self,
            _g: &Graph,
            _v: VertexId,
            old: &u32,
            acc: Option<u32>,
            _step: usize,
        ) -> (u32, bool) {
            let candidate = acc.map_or(*old, |a| a.min(*old));
            (candidate, candidate < *old)
        }
        fn scatter_direction(&self) -> Direction {
            Direction::Both
        }
    }

    fn two_components() -> Graph {
        // {0,1,2} ring and {3,4} pair.
        Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(3, 4),
            ],
        ))
    }

    fn partitioned(g: &Graph, cluster: &Cluster) -> PartitionAssignment {
        RandomHash::new().partition(g, &MachineWeights::uniform(cluster.len()))
    }

    #[test]
    fn computes_correct_labels() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert_eq!(out.data, vec![0, 0, 0, 3, 3]);
        assert!(out.report.converged);
    }

    #[test]
    fn result_independent_of_partitioning() {
        let g = two_components();
        let c2 = Cluster::case2();
        let c3 = Cluster::case3();
        let r1 = SimEngine::new(&c2).run(&g, &partitioned(&g, &c2), &MinLabel);
        let a_skewed = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let r2 = SimEngine::new(&c3).run(&g, &a_skewed, &MinLabel);
        assert_eq!(r1.data, r2.data, "results must not depend on placement");
    }

    #[test]
    fn timing_is_positive_and_consistent() {
        let g = two_components();
        let cluster = Cluster::case2();
        let out = SimEngine::new(&cluster).run(&g, &partitioned(&g, &cluster), &MinLabel);
        let r = &out.report;
        assert!(r.makespan_s > 0.0);
        assert!((r.makespan_s - (r.compute_s + r.comm_s)).abs() < 1e-12);
        assert!(r.supersteps >= 2);
        assert_eq!(r.per_machine_busy_s.len(), 2);
        assert!(r.energy.total_j() > 0.0);
    }

    #[test]
    fn deterministic() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let r1 = SimEngine::new(&cluster).run(&g, &a, &MinLabel).report;
        let r2 = SimEngine::new(&cluster).run(&g, &a, &MinLabel).report;
        assert_eq!(r1, r2);
    }

    #[test]
    fn work_lands_on_edge_owners() {
        let g = two_components();
        let cluster = Cluster::case2();
        // All edges on machine 1: machine 0 must see zero edge work.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![1, 1, 1, 1]);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert_eq!(out.report.per_machine_work[0].edge_units, 0.0);
        assert!(out.report.per_machine_work[1].edge_units > 0.0);
    }

    #[test]
    fn better_placement_reduces_makespan() {
        // A chain graph with all edges on the slow machine vs all on the
        // fast machine: the fast placement must finish sooner.
        let n = 2_000u32;
        let edges: Vec<Edge> = (0..n - 1).map(|v| Edge::new(v, v + 1)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2(); // m0 slow, m1 fast
        let m = g.num_edges();
        let slow = PartitionAssignment::from_edge_machines(&g, 2, vec![0; m]);
        let fast = PartitionAssignment::from_edge_machines(&g, 2, vec![1; m]);
        let engine = SimEngine::new(&cluster);
        let t_slow = engine.run(&g, &slow, &MinLabel).report.makespan_s;
        let t_fast = engine.run(&g, &fast, &MinLabel).report.makespan_s;
        assert!(t_fast < t_slow, "fast {t_fast} !< slow {t_slow}");
    }

    #[test]
    fn tracing_records_every_superstep() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let traced = SimEngine::new(&cluster)
            .with_trace(true)
            .run(&g, &a, &MinLabel);
        let plain = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert!(plain.report.steps.is_empty(), "tracing is off by default");
        assert_eq!(traced.report.steps.len(), traced.report.supersteps);
        // The trace must tally with the aggregate report.
        let wall: f64 = traced.report.steps.iter().map(|s| s.wall_s).sum();
        assert!((wall - traced.report.makespan_s).abs() < 1e-12);
        assert_eq!(
            traced.report.steps[0].active, 5,
            "all vertices active at step 0"
        );
        for s in &traced.report.steps {
            assert!(s.imbalance() >= 1.0);
        }
        // Tracing must not change results.
        assert_eq!(traced.data, plain.data);
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = Graph::from_edge_list(EdgeList::new(0));
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert!(out.report.converged);
        assert_eq!(out.report.supersteps, 0);
        assert_eq!(out.report.makespan_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "same machine count")]
    fn cluster_mismatch_panics() {
        let g = two_components();
        let cluster = Cluster::case2(); // 2 machines
        let a = PartitionAssignment::from_edge_machines(&g, 3, vec![0, 1, 2, 0]);
        SimEngine::new(&cluster).run(&g, &a, &MinLabel);
    }
}
