//! The BSP superstep simulator: one kernel, any thread count.
//!
//! There is exactly **one** implementation of the gather→apply→scatter
//! superstep loop in this crate: [`SimEngine::run_on_with_threads`]. The
//! serial engine is its 1-thread degenerate case ([`scheduled`] runs jobs
//! inline on the calling thread when it has one worker), and
//! [`SimEngine::run`], [`SimEngine::run_on`], [`SimEngine::run_parallel`],
//! and [`SimEngine::run_parallel_on`] are thin wrappers over it. Cost
//! accounting — per-machine work attribution, [`NetworkModel`] barrier
//! time, energy, and [`crate::report::StepRecord`] tracing — therefore
//! lives in exactly one place per superstep.
//!
//! **Determinism is exact and thread-count-independent.** Active vertices
//! are split into fixed-size chunks (independent of the worker count),
//! workers self-schedule chunks off a shared atomic cursor (so power-law
//! work skew cannot idle threads), and [`scheduled`] hands results back in
//! chunk order, where they are merged by one serial fold. Per-vertex GAS
//! methods are pure functions of the previous superstep, so vertex data is
//! bitwise identical at any thread count; the simulated work counts are
//! sums of integer-valued `f64` contributions, so even the floating-point
//! cost accounting associates exactly. `tests/engine_snapshot.rs` pins the
//! full `SimReport` JSON against the pre-unification serial engine at 1,
//! 2, and 4 threads.
//!
//! **The hot path is engineered for raw throughput** (see DESIGN.md §3b,
//! "kernel fast path"):
//!
//! - the active set lives in a [`FrontierSet`] — activations insert into
//!   a bitmap with dirty-word tracking, and the next step's sorted
//!   frontier is extracted sparsely or densely by occupancy, clearing
//!   only the words that were actually touched (no per-step O(n) clear);
//! - the CSR gather and scatter scans run over raw adjacency slices
//!   ([`DistributedGraph::out_adj`]/[`in_adj`](DistributedGraph::in_adj))
//!   as tight zip loops — measured faster here than manual unrolling or
//!   software prefetch, both of which lost to the hardware prefetcher on
//!   these sequential lanes (see DESIGN.md §3b for the numbers);
//! - source-only gather programs ([`GasProgram::gather_by_source`], e.g.
//!   PageRank's `rank/out_degree`) evaluate their contribution **once per
//!   source vertex per superstep** into a dense table when the frontier
//!   is dense enough, and the scans replay table entries per edge instead
//!   of recomputing — same values, same fold order, bit-identical output;
//! - unit-per-edge work attribution (scatter always, gather in table
//!   mode) charges precomputed per-row machine counts
//!   ([`DistributedGraph::machine_counts`]) — `p` adds per vertex instead
//!   of a machine-lane load and indexed add per edge; the tallies are
//!   integer-valued either way, so the `f64` sums are bit-identical;
//! - per-chunk work tallies are structure-of-arrays — a bare `f64` lane
//!   for gather edge work plus `u64` lanes for the unit-sized counts —
//!   instead of `Vec<WorkCounts>`, and integer counts convert to the
//!   identical `f64` sums the old accumulation produced;
//! - at one host thread the kernel bypasses the scheduler entirely: a
//!   single in-order chunk walk with persistent scratch buffers, and
//!   scatter inserts activations straight into the frontier bitmap (no
//!   staging list — set-insert order cannot affect a set), so a
//!   steady-state superstep performs **zero heap allocations**
//!   (`tests/engine_alloc.rs` counts them); at two or more threads both
//!   the gather and scatter chunk buffers cycle through a [`Pool`].
//!
//! None of this changes a single output bit: per-chunk partials are
//! folded in fixed-`CHUNK` order on both paths, so even the
//! floating-point work sums associate identically.
//!
//! Note the distinction between the two kinds of time here: the thread
//! budget changes how long the *host* takes to compute the simulation; the
//! *simulated* cluster times it produces are independent of it.

use hetgraph_cluster::{
    AppProfile, Cluster, EnergyModel, EnergyReport, GraphShape, MachineSpec, NetworkModel,
    PerturbationSchedule, WorkCounts, MIGRATION_BYTES_PER_EDGE,
};
use hetgraph_core::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use hetgraph_core::obs::{Recorder, TimeDomain, TraceEvent, NOOP};
use hetgraph_core::par::{scheduled, Pool};
use hetgraph_core::{FrontierSet, Graph, GraphMeta, VertexId};
use hetgraph_partition::PartitionAssignment;

use crate::compact_dist::CompactDistGraph;
use crate::distributed::DistributedGraph;
use crate::program::{ActiveInit, Direction, GasProgram};
use crate::rebalance::{MigrationEvent, RebalancePolicy, StepSignals};
use crate::report::SimReport;

/// Vertices per self-scheduled chunk. Small enough that hub-heavy chunks
/// cannot stall the tail, big enough to amortize the atomic fetch. Fixed
/// (never derived from the thread count) so chunk boundaries — and hence
/// every floating-point merge — are identical at any thread budget.
const CHUNK: usize = 1_024;

/// Minimum frontier density (as a fraction `n / SOURCE_TABLE_DIVISOR`) at
/// which a source-only gather switches to the per-source contribution
/// table. Below it, filling all `n` entries costs more than the per-edge
/// recomputation it saves.
const SOURCE_TABLE_DIVISOR: usize = 8;

/// The execution engine: runs a [`GasProgram`] over a partitioned graph on
/// a simulated heterogeneous cluster.
pub struct SimEngine<'a> {
    cluster: &'a Cluster,
    network: NetworkModel,
    recorder: &'a dyn Recorder,
    metrics: &'a MetricsRegistry,
    perturbations: Option<&'a PerturbationSchedule>,
}

/// How the kernel holds the partitioned graph: shared for plain runs
/// (exactly the old borrow), exclusive when a rebalance policy may mutate
/// placement between supersteps, or the compressed view for bounded-RSS
/// runs. One enum instead of three kernels keeps the superstep loop in
/// exactly one place (a guard test counts it).
enum DistAccess<'k, 'g> {
    /// Read-only view — placement is frozen for the whole run.
    Shared(&'k DistributedGraph<'g>),
    /// Mutable view — the between-superstep hook may migrate edges.
    Exclusive(&'k mut DistributedGraph<'g>),
    /// Compressed view — placement frozen, adjacency decoded on iterate.
    Compact(&'k CompactDistGraph),
}

impl<'k, 'g> DistAccess<'k, 'g> {
    /// The plain view, for the rebalance hook — never called on compact
    /// runs (they take no policy).
    fn view(&self) -> &DistributedGraph<'g> {
        match self {
            DistAccess::Shared(d) => d,
            DistAccess::Exclusive(d) => d,
            DistAccess::Compact(_) => unreachable!("compact runs have no plain view"),
        }
    }

    fn exclusive(&mut self) -> Option<&mut DistributedGraph<'g>> {
        match self {
            DistAccess::Shared(_) | DistAccess::Compact(_) => None,
            DistAccess::Exclusive(d) => Some(d),
        }
    }

    /// The counts-and-degrees view programs consume. Not tied to the
    /// `&self` borrow (the underlying structures outlive the kernel), so
    /// it can be taken once before the superstep loop.
    fn meta(&self) -> GraphMeta<'k> {
        match self {
            DistAccess::Shared(d) => d.graph().meta(),
            DistAccess::Exclusive(d) => d.graph().meta(),
            DistAccess::Compact(c) => c.meta(),
        }
    }

    fn num_machines(&self) -> usize {
        match self {
            DistAccess::Shared(d) => d.assignment().num_machines(),
            DistAccess::Exclusive(d) => d.assignment().num_machines(),
            DistAccess::Compact(c) => c.num_machines(),
        }
    }

    /// This superstep's read-only scan view. Re-taken per superstep
    /// because the rebalance hook may mutate an exclusive view between
    /// them.
    fn step_view(&self) -> StepView<'_> {
        match self {
            DistAccess::Shared(d) => StepView::Plain(d),
            DistAccess::Exclusive(d) => StepView::Plain(d),
            DistAccess::Compact(c) => StepView::Compact(c),
        }
    }
}

/// The scan surface of one superstep: adjacency rows with machine lanes,
/// per-row machine counts, and the replication structure — over either
/// representation. `Copy`, so the fan-out closures capture it by value.
///
/// Adjacency accessors take a decode scratch buffer: the compact view
/// decodes its varint row into it, the plain view ignores it and hands
/// back its own slices. Rows decode in sorted neighbor order on the
/// compact path (vs insertion order on the plain path); every fold the
/// kernel runs over a row is order-insensitive, so reports stay
/// byte-identical (asserted by `compact_paths_match_plain` below).
#[derive(Clone, Copy)]
enum StepView<'v> {
    /// Plain CSR adjacency with aligned machine lanes.
    Plain(&'v DistributedGraph<'v>),
    /// Delta-varint adjacency, decoded on iterate.
    Compact(&'v CompactDistGraph),
}

impl<'v> StepView<'v> {
    #[inline]
    fn out_adj<'s>(self, v: VertexId, scratch: &'s mut Vec<VertexId>) -> (&'s [VertexId], &'s [u16])
    where
        'v: 's,
    {
        match self {
            StepView::Plain(d) => d.out_adj(v),
            StepView::Compact(c) => c.out_adj_into(v, scratch),
        }
    }

    #[inline]
    fn in_adj<'s>(self, v: VertexId, scratch: &'s mut Vec<VertexId>) -> (&'s [VertexId], &'s [u16])
    where
        'v: 's,
    {
        match self {
            StepView::Plain(d) => d.in_adj(v),
            StepView::Compact(c) => c.in_adj_into(v, scratch),
        }
    }

    fn machine_counts(self) -> Option<(&'v [u32], &'v [u32])> {
        match self {
            StepView::Plain(d) => d.machine_counts(),
            StepView::Compact(c) => c.machine_counts(),
        }
    }

    #[inline]
    fn master(self, v: VertexId) -> usize {
        match self {
            StepView::Plain(d) => d.assignment().master(v).index(),
            StepView::Compact(c) => c.master(v).index(),
        }
    }

    #[inline]
    fn replica_mask(self, v: VertexId) -> u64 {
        match self {
            StepView::Plain(d) => d.assignment().replica_mask(v),
            StepView::Compact(c) => c.replica_mask(v),
        }
    }
}

/// Result of a run: the real computed vertex data plus the simulated
/// performance report.
pub struct SimOutcome<D> {
    /// Final per-vertex data (real algorithm output).
    pub data: Vec<D>,
    /// Simulated timing/energy report.
    pub report: SimReport,
}

/// Per-chunk result of the gather/apply phase, structure-of-arrays: one
/// `f64` lane for the (possibly fractional) gather edge work and `u64`
/// lanes for the unit-sized counts, indexed by machine. The buffers are
/// pooled: after the merge drains them they go back to the [`Pool`] for
/// the next superstep's chunks.
struct GatherChunk<D> {
    changes: Vec<(VertexId, D, bool)>,
    edge_work: Vec<f64>,
    vertex_count: Vec<u64>,
    sync_counts: Vec<u64>,
    /// Compact-row decode scratch; unused (and never grown) on the plain
    /// representation. Pooled with the chunk so steady-state supersteps
    /// reuse its capacity.
    adj_scratch: Vec<VertexId>,
}

impl<D> GatherChunk<D> {
    fn new(p: usize) -> Self {
        GatherChunk {
            changes: Vec::new(),
            edge_work: vec![0.0f64; p],
            vertex_count: vec![0u64; p],
            sync_counts: vec![0u64; p],
            adj_scratch: Vec::new(),
        }
    }

    /// Reset for reuse; `changes` is expected to be already drained.
    fn recycle(&mut self) {
        debug_assert!(self.changes.is_empty(), "changes must be drained first");
        self.edge_work.fill(0.0);
        self.vertex_count.fill(0);
        self.sync_counts.fill(0);
    }
}

/// Per-chunk result of the scatter phase, pooled like [`GatherChunk`].
/// Scatter edge work is always one unit per edge, so the tally is a bare
/// `u64` lane.
struct ScatterChunk {
    edge_count: Vec<u64>,
    activations: Vec<VertexId>,
    /// Compact-row decode scratch (see [`GatherChunk::adj_scratch`]).
    adj_scratch: Vec<VertexId>,
}

impl ScatterChunk {
    fn new(p: usize) -> Self {
        ScatterChunk {
            edge_count: vec![0u64; p],
            activations: Vec::new(),
            adj_scratch: Vec::new(),
        }
    }

    fn recycle(&mut self) {
        self.edge_count.fill(0);
        self.activations.clear();
    }
}

impl<'a> SimEngine<'a> {
    /// Engine with the default network model.
    pub fn new(cluster: &'a Cluster) -> Self {
        SimEngine {
            cluster,
            network: NetworkModel::default(),
            recorder: &NOOP,
            metrics: &hetgraph_core::metrics::NOOP,
            perturbations: None,
        }
    }

    /// Engine with a custom network model.
    pub fn with_network(cluster: &'a Cluster, network: NetworkModel) -> Self {
        SimEngine {
            cluster,
            network,
            recorder: &NOOP,
            metrics: &hetgraph_core::metrics::NOOP,
            perturbations: None,
        }
    }

    /// Attach a [`PerturbationSchedule`]: at each superstep the schedule
    /// may override machine specs (e.g. a mid-run clock slowdown), and
    /// the kernel prices that step's compute and communication against
    /// the overridden specs. With no active perturbation the base specs
    /// are used untouched — an empty schedule is byte-identical to no
    /// schedule. Energy stays priced at the nominal specs (a throttled
    /// machine runs longer at its nominal power envelope).
    pub fn with_perturbations(mut self, schedule: &'a PerturbationSchedule) -> Self {
        self.perturbations = Some(schedule);
        self
    }

    /// Attach a [`Recorder`]. With an enabled recorder the kernel records
    /// a [`crate::report::StepRecord`] per superstep and emits structured
    /// trace events: per-machine gather/apply/scatter spans, per-machine
    /// `barrier_wait` slack (`max busy − busy_i`), the cluster-wide
    /// communication barrier, and per-superstep counters (active
    /// vertices, imbalance, straggler machine) — all in simulated time,
    /// plus host wall-clock spans for the fan-out phases. With the
    /// default [`NOOP`] recorder all of that costs one branch per
    /// superstep (traces grow linearly with supersteps, so recording is
    /// off by default).
    pub fn with_recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attach a [`MetricsRegistry`]. With an enabled registry the kernel
    /// aggregates per-superstep telemetry — a makespan histogram,
    /// per-machine busy and `barrier_wait` histograms, active-vertex and
    /// superstep counters, imbalance/straggler gauges, and rebalance
    /// trigger/batch/migration counters — all in the sim domain, recorded
    /// only from the serial timing section, so
    /// [`MetricsRegistry::snapshot_sim`] is byte-identical at any host
    /// thread count. With the default
    /// [`metrics::NOOP`](hetgraph_core::metrics::NOOP) registry the whole
    /// feature costs one branch per superstep.
    pub fn with_metrics(mut self, metrics: &'a MetricsRegistry) -> Self {
        self.metrics = metrics;
        self
    }

    /// The cluster this engine simulates.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// The communication model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The recorder events are emitted to ([`NOOP`] unless
    /// [`SimEngine::with_recorder`] was called).
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder
    }

    /// The metrics registry aggregates land in (the disabled
    /// [`metrics::NOOP`](hetgraph_core::metrics::NOOP) unless
    /// [`SimEngine::with_metrics`] was called).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.metrics
    }

    /// Execute `program` on `graph` partitioned by `assignment`, serially.
    ///
    /// # Panics
    /// Panics if the assignment's machine count differs from the cluster's.
    pub fn run<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        self.run_with_threads(graph, assignment, program, 1)
    }

    /// [`SimEngine::run`] over a prebuilt [`DistributedGraph`].
    ///
    /// Building the distributed view is O(edges); sweeps that execute many
    /// apps over one partition build it once and call this per app.
    ///
    /// # Panics
    /// Panics if the assignment's machine count differs from the cluster's.
    pub fn run_on<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        self.run_on_with_threads(dist, program, 1)
    }

    /// [`SimEngine::run`] with `host_threads` OS threads (identical
    /// results; see the module docs for the determinism contract).
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_with_threads<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        let dist = DistributedGraph::new_with_threads(graph, assignment, host_threads)
            .expect("assignment must cover the graph");
        self.run_on_with_threads(&dist, program, host_threads)
    }

    /// Alias of [`SimEngine::run_with_threads`], kept for call sites that
    /// read better with the explicit "parallel" name.
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_parallel<P: GasProgram>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        self.run_with_threads(graph, assignment, program, host_threads)
    }

    /// Alias of [`SimEngine::run_on_with_threads`] (see
    /// [`SimEngine::run_parallel`]).
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_parallel_on<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        self.run_on_with_threads(dist, program, host_threads)
    }

    /// **The superstep kernel's public face** — runs the BSP
    /// gather→apply→scatter loop over a prebuilt [`DistributedGraph`],
    /// fanned out across `host_threads` self-scheduling workers
    /// (`host_threads == 1` runs inline with no thread spawns). Placement
    /// is frozen: the view is borrowed shared, so output is byte-identical
    /// to every previous release of this kernel.
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_on_with_threads<P: GasProgram>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        self.kernel(DistAccess::Shared(dist), program, host_threads, None)
    }

    /// [`SimEngine::run_on_with_threads`] with mid-run rebalancing: after
    /// each superstep the kernel hands the step's signals to `policy`
    /// (serial section), applies any planned edge migrations through
    /// [`DistributedGraph::migrate_edges`], and charges the simulated
    /// migration cost (payload bytes over the bottleneck pair NIC, plus
    /// one barrier) to the makespan and communication totals. The view is
    /// taken `&mut`: its copy-on-write assignment is what makes placement
    /// mutable without touching the caller's `PartitionAssignment`.
    ///
    /// Determinism: a deterministic policy sees only simulated,
    /// thread-count-invariant signals, so rebalanced reports are
    /// byte-identical at any `host_threads`.
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_rebalanced_on_with_threads<P: GasProgram>(
        &self,
        dist: &mut DistributedGraph<'_>,
        program: &P,
        host_threads: usize,
        policy: &mut dyn RebalancePolicy,
    ) -> SimOutcome<P::VertexData> {
        self.kernel(
            DistAccess::Exclusive(dist),
            program,
            host_threads,
            Some(policy),
        )
    }

    /// [`SimEngine::run_on`] over a [`CompactDistGraph`] — the
    /// delta-varint compressed view. Same kernel, same simulated report
    /// bytes; only the in-memory representation (and the host-side
    /// decode-on-iterate cost) differs. Placement is frozen — compact
    /// runs take no rebalance policy.
    ///
    /// # Panics
    /// Panics on a cluster/assignment machine-count mismatch.
    pub fn run_compact_on<P: GasProgram>(
        &self,
        dist: &CompactDistGraph,
        program: &P,
    ) -> SimOutcome<P::VertexData> {
        self.run_compact_on_with_threads(dist, program, 1)
    }

    /// [`SimEngine::run_compact_on`] with `host_threads` OS threads
    /// (identical results; see the module docs for the determinism
    /// contract).
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_compact_on_with_threads<P: GasProgram>(
        &self,
        dist: &CompactDistGraph,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData> {
        self.kernel(DistAccess::Compact(dist), program, host_threads, None)
    }

    /// **The superstep kernel** — the one implementation of the BSP loop
    /// (both public entry points above are thin wrappers; a guard test
    /// asserts the loop exists exactly once in this crate).
    fn kernel<P: GasProgram>(
        &self,
        mut access: DistAccess<'_, '_>,
        program: &P,
        host_threads: usize,
        mut policy: Option<&mut dyn RebalancePolicy>,
    ) -> SimOutcome<P::VertexData> {
        assert!(host_threads > 0, "need at least one host thread");
        let meta = access.meta();
        assert_eq!(
            access.num_machines(),
            self.cluster.len(),
            "assignment and cluster must have the same machine count"
        );
        let p = self.cluster.len();
        let n = meta.num_vertices() as usize;
        let profile = program.profile();
        profile.assert_valid();
        let shape = GraphShape::of_meta(&meta);
        let machines = self.cluster.machines();
        let energy_model = EnergyModel::new(machines.to_vec());

        let mut data: Vec<P::VertexData> = (0..n as u32).map(|v| program.init(&meta, v)).collect();
        // The frontier lives as a sorted, deduplicated `Vec<u32>`; scatter
        // collects next-step activations in a `FrontierSet` whose hybrid
        // extraction rebuilds this list between supersteps.
        let mut frontier: Vec<u32> = match program.initial_active(&meta) {
            ActiveInit::All => (0..n as u32).collect(),
            ActiveInit::Seeds(mut seeds) => {
                for &v in &seeds {
                    assert!((v as usize) < n, "seed vertex {v} out of range");
                }
                seeds.sort_unstable();
                seeds.dedup();
                seeds
            }
        };

        let mut energy = EnergyReport::new(p);
        let mut per_machine_busy = vec![0.0f64; p];
        let mut total_work = vec![WorkCounts::zero(); p];
        let mut makespan = 0.0f64;
        let mut compute_total = 0.0f64;
        let mut comm_total = 0.0f64;
        let mut supersteps = 0usize;
        let mut converged = false;
        let mut steps: Vec<crate::report::StepRecord> = Vec::new();

        // Buffers reused across supersteps (see module docs).
        let mut changed: Vec<u32> = Vec::new();
        let mut next_frontier = FrontierSet::new(n);
        let mut step_work = vec![WorkCounts::zero(); p];
        let mut sync_counts = vec![0u64; p];
        let mut busy = vec![0.0f64; p];
        let gather_pool: Pool<GatherChunk<P::VertexData>> = Pool::new();
        let scatter_pool: Pool<ScatterChunk> = Pool::new();
        // Serial fast-path scratch: one set of per-chunk tallies plus a
        // step-level staging area for the applies (committed only after
        // the full gather scan — the Jacobi barrier). Allocated once;
        // steady-state supersteps reuse the grown capacity.
        let serial = host_threads == 1;
        let mut s_changes: Vec<(VertexId, P::VertexData, bool)> = Vec::new();
        let mut s_edge_work = vec![0.0f64; p];
        let mut s_vertex_count = vec![0u64; p];
        let mut s_sync = vec![0u64; p];
        let mut s_scatter_count = vec![0u64; p];
        // Adjacency decode scratch for the compact representation: rows
        // decode into it and are consumed in place. Grows to the max
        // degree once, then steady-state supersteps stay allocation-free.
        // The plain representation never touches it.
        let mut s_adj: Vec<VertexId> = Vec::new();
        // Source-contribution table for programs whose gather depends only
        // on the gathered vertex (see `GasProgram::gather_by_source`):
        // evaluated once per source per superstep on dense frontiers,
        // replayed per edge. Same values, same accumulation order — only
        // the redundant per-edge recomputation is gone.
        let by_source = program.gather_by_source() && program.gather_direction() != Direction::None;
        let mut source_table: Vec<P::Accum> = Vec::with_capacity(if by_source { n } else { 0 });
        // Observability: with the default NoopRecorder this one branch is
        // the entire per-superstep cost of instrumentation. Sim-domain
        // events are emitted only from the serial timing section below,
        // so their order — and the exported trace bytes — are independent
        // of `host_threads`.
        let recorder = self.recorder;
        let tracing = recorder.enabled();
        // Aggregated telemetry: `None` with the default disabled registry,
        // so the per-superstep cost mirrors the recorder's single branch.
        let kernel_metrics = KernelMetrics::new(self.metrics, p);
        // Snapshot of `step_work` taken between gather-merge and scatter,
        // used to split each machine's busy time into per-phase spans.
        let mut gather_work = vec![WorkCounts::zero(); p];

        for step in 0..program.max_supersteps() {
            if frontier.is_empty() {
                converged = true;
                break;
            }
            let active_count = frontier.len();
            for w in &mut step_work {
                *w = WorkCounts::zero();
            }
            sync_counts.fill(0);

            // Shared borrow of the (possibly migrated) view for this
            // superstep's scans. Re-taken every iteration because the
            // rebalance hook at the bottom may mutate the view; the
            // machine-count tables are cached, so `machine_counts` is a
            // lookup after the first step. `None` on clusters too large
            // for the tables; the scans then fall back to the per-edge
            // machine lane.
            let view = access.step_view();
            let counts = view.machine_counts();

            // --- Gather + Apply (reads previous-step data), fanned out ---
            let wall_gather_t0 = if tracing { recorder.now_us() } else { 0.0 };
            changed.clear();
            let n_chunks = frontier.len().div_ceil(CHUNK);
            // Filling the table costs O(n); it pays off only when the
            // frontier is dense enough that many edges replay each entry.
            // Both paths produce identical bits, so this is purely a
            // speed heuristic.
            let use_table = by_source && active_count >= n / SOURCE_TABLE_DIVISOR;
            if use_table {
                source_table.clear();
                source_table.extend((0..n as u32).map(|u| {
                    let c = program.source_gather(&meta, &data, u);
                    debug_assert!(
                        {
                            let (pc, pw) = program.gather(&meta, &data, u, u);
                            pw == 1.0 && pc.is_some()
                        },
                        "gather_by_source contract violated for vertex {u}"
                    );
                    c
                }));
            }
            let table: Option<&[P::Accum]> = if use_table { Some(&source_table) } else { None };
            if serial {
                // One-thread fast path: in-order chunk walk, no scheduler,
                // no pool round-trips, no per-step allocation. Per-chunk
                // tallies fold in chunk order so every f64 sum associates
                // exactly as on the parallel path.
                debug_assert!(s_changes.is_empty());
                for idx in 0..n_chunks {
                    let lo = idx * CHUNK;
                    let hi = (lo + CHUNK).min(frontier.len());
                    s_edge_work.fill(0.0);
                    s_vertex_count.fill(0);
                    s_sync.fill(0);
                    if let Some(t) = table {
                        // In table mode gather reads only the snapshot
                        // table — never `data` — so applies commit in
                        // place during the scan: `data[v]` is written at
                        // `v`'s own turn and no later gather observes it,
                        // so the Jacobi barrier holds with no staging
                        // pass. Same inputs to every `apply`, same
                        // `changed` order: bit-identical to staging.
                        gather_apply_table_inplace(
                            &mut data,
                            &mut changed,
                            &mut s_edge_work,
                            &mut s_vertex_count,
                            &mut s_sync,
                            &mut s_adj,
                            &frontier[lo..hi],
                            &meta,
                            view,
                            program,
                            t,
                            step,
                        );
                    } else {
                        gather_chunk(
                            &mut s_changes,
                            &mut s_edge_work,
                            &mut s_vertex_count,
                            &mut s_sync,
                            &mut s_adj,
                            &frontier[lo..hi],
                            &meta,
                            view,
                            program,
                            &data,
                            table,
                            step,
                        );
                    }
                    for i in 0..p {
                        step_work[i].edge_units += s_edge_work[i];
                        step_work[i].vertex_units += s_vertex_count[i] as f64;
                        sync_counts[i] += s_sync[i];
                    }
                }
                // Jacobi barrier: commit the staged applies only after the
                // whole frontier has gathered against previous-step data.
                for (v, nd, did_change) in s_changes.drain(..) {
                    data[v as usize] = nd;
                    if did_change {
                        changed.push(v);
                    }
                }
            } else {
                let gathered: Vec<GatherChunk<P::VertexData>> =
                    scheduled(n_chunks, host_threads, |idx| {
                        let lo = idx * CHUNK;
                        let hi = (lo + CHUNK).min(frontier.len());
                        let mut out = gather_pool.take(|| GatherChunk::new(p));
                        gather_chunk(
                            &mut out.changes,
                            &mut out.edge_work,
                            &mut out.vertex_count,
                            &mut out.sync_counts,
                            &mut out.adj_scratch,
                            &frontier[lo..hi],
                            &meta,
                            view,
                            program,
                            &data,
                            table,
                            step,
                        );
                        out
                    });

                // Merge in chunk order, commit applies (Jacobi barrier).
                for mut c in gathered {
                    for i in 0..p {
                        step_work[i].edge_units += c.edge_work[i];
                        step_work[i].vertex_units += c.vertex_count[i] as f64;
                        sync_counts[i] += c.sync_counts[i];
                    }
                    for (v, nd, did_change) in c.changes.drain(..) {
                        data[v as usize] = nd;
                        if did_change {
                            changed.push(v);
                        }
                    }
                    c.recycle();
                    gather_pool.put(c);
                }
            }
            if tracing {
                gather_work.copy_from_slice(&step_work);
                let t = recorder.now_us();
                recorder.record(TraceEvent::wall_span(
                    "gather_merge",
                    "host",
                    0,
                    wall_gather_t0,
                    t - wall_gather_t0,
                ));
            }

            // --- Scatter (sees post-apply data), fanned out over changed ---
            let wall_scatter_t0 = if tracing { recorder.now_us() } else { 0.0 };
            debug_assert!(next_frontier.is_empty(), "frontier drained last step");
            if program.scatter_direction() != Direction::None && !changed.is_empty() {
                let n_sc_chunks = changed.len().div_ceil(CHUNK);
                if serial {
                    // Activations go straight into the frontier bitmap —
                    // no staging list. Scatter tallies are integer-valued,
                    // so folding them once per scan (instead of once per
                    // chunk) yields the identical exact `f64` sums.
                    s_scatter_count.fill(0);
                    scatter_direct(
                        &mut s_scatter_count,
                        &mut next_frontier,
                        &mut s_adj,
                        &changed,
                        &meta,
                        view,
                        program,
                        &data,
                        counts,
                    );
                    for (w, &c) in step_work.iter_mut().zip(s_scatter_count.iter()) {
                        w.edge_units += c as f64;
                    }
                } else {
                    let scattered: Vec<ScatterChunk> =
                        scheduled(n_sc_chunks, host_threads, |idx| {
                            let lo = idx * CHUNK;
                            let hi = (lo + CHUNK).min(changed.len());
                            let mut out = scatter_pool.take(|| ScatterChunk::new(p));
                            scatter_chunk(
                                &mut out.edge_count,
                                &mut out.activations,
                                &mut out.adj_scratch,
                                &changed[lo..hi],
                                &meta,
                                view,
                                program,
                                &data,
                                counts,
                            );
                            out
                        });
                    for mut c in scattered {
                        for (w, &n) in step_work.iter_mut().zip(c.edge_count.iter()) {
                            w.edge_units += n as f64;
                        }
                        for &u in &c.activations {
                            next_frontier.insert(u);
                        }
                        c.recycle();
                        scatter_pool.put(c);
                    }
                }
            }
            if tracing {
                let t = recorder.now_us();
                recorder.record(TraceEvent::wall_span(
                    "scatter_fanout",
                    "host",
                    0,
                    wall_scatter_t0,
                    t - wall_scatter_t0,
                ));
            }

            // --- Timing, energy, bookkeeping: once, here, only here ---
            // A perturbation schedule may override machine specs for this
            // superstep (mid-run slowdown/recovery). With none active the
            // base slice is used as-is — structurally the old path.
            let perturbed = self.perturbations.and_then(|s| s.specs_at(step, machines));
            let step_machines: &[MachineSpec] = perturbed.as_deref().unwrap_or(machines);
            busy.clear();
            busy.extend(
                (0..p).map(|i| profile.time_seconds(&step_machines[i], &step_work[i], &shape)),
            );
            let step_compute = busy.iter().copied().fold(0.0f64, f64::max);
            let step_comm = self.network.step_comm_s(step_machines, &sync_counts);
            let step_wall = step_compute + step_comm;
            for i in 0..p {
                energy_model.account_step(&mut energy, i, busy[i], step_wall);
                per_machine_busy[i] += busy[i];
                total_work[i].add(step_work[i]);
            }
            if tracing {
                emit_step_trace(
                    recorder,
                    &EmitStep {
                        machines: step_machines,
                        profile: &profile,
                        shape: &shape,
                        step_work: &step_work,
                        gather_work: &gather_work,
                        busy: &busy,
                        step_start_s: makespan,
                        step_compute,
                        step_comm,
                        active: active_count,
                    },
                );
                steps.push(crate::report::StepRecord {
                    step,
                    active: active_count,
                    busy_s: busy.clone(),
                    comm_s: step_comm,
                    wall_s: step_wall,
                });
            }
            if let Some(km) = &kernel_metrics {
                km.observe_step(active_count, &busy, step_compute, step_comm);
            }
            makespan += step_wall;
            compute_total += step_compute;
            comm_total += step_comm;
            supersteps += 1;
            // Hybrid extraction: rebuilds the sorted frontier and zeroes
            // only the bitmap words scatter actually touched.
            next_frontier.extract_into(&mut frontier);

            // --- Rebalance hook: between supersteps, serial section ---
            // The policy sees only simulated quantities, so its plans —
            // and the rebalanced report — are thread-count invariant. No
            // migration on the last superstep (nothing left to speed up).
            if let Some(pol) = policy.as_deref_mut() {
                if !frontier.is_empty() {
                    let plan = {
                        let dist = access.view();
                        let signals = StepSignals {
                            step,
                            active: active_count,
                            busy_s: &busy,
                            step_work: &step_work,
                            step_compute_s: step_compute,
                            step_comm_s: step_comm,
                        };
                        pol.plan(&signals, dist, machines, &self.network)
                    };
                    if let Some(km) = &kernel_metrics {
                        // Trigger decisions: every consultation counts,
                        // batches only when the policy actually fired.
                        km.rebalance_plans.inc();
                        if !plan.is_empty() {
                            km.rebalance_batches.inc();
                        }
                    }
                    if !plan.is_empty() {
                        let delta = access
                            .exclusive()
                            .expect("rebalancing runs with exclusive access")
                            .migrate_edges(&plan);
                        if !delta.is_empty() {
                            let pairs = delta.moves_per_pair();
                            let bytes = delta.edges_moved() as f64 * MIGRATION_BYTES_PER_EDGE;
                            // Pair transfers overlap; the batch is gated
                            // by its slowest pair, plus one barrier.
                            let transfer = pairs
                                .iter()
                                .map(|&(f, t, n_moved)| {
                                    self.network.migration_transfer_s(
                                        &machines[f.index()],
                                        &machines[t.index()],
                                        n_moved as f64 * MIGRATION_BYTES_PER_EDGE,
                                    )
                                })
                                .fold(0.0f64, f64::max);
                            let cost = transfer + self.network.barrier_latency_s;
                            if let Some(km) = &kernel_metrics {
                                km.migrated_edges.add(delta.edges_moved() as u64);
                                km.migration_bytes.add(bytes as u64);
                                km.batch_edges.observe(delta.edges_moved() as f64);
                                km.migration_cost.observe(cost);
                            }
                            if tracing {
                                for &(f, t, _) in &pairs {
                                    for lane in [f.0, t.0] {
                                        recorder.record(TraceEvent::sim_span(
                                            "migration",
                                            "rebalance",
                                            lane as u32,
                                            makespan,
                                            cost,
                                        ));
                                    }
                                }
                                recorder.record(TraceEvent::sim_counter(
                                    "migrated_edges",
                                    p as u32,
                                    makespan,
                                    delta.edges_moved() as f64,
                                ));
                                recorder.record(TraceEvent::sim_counter(
                                    "migration_bytes",
                                    p as u32,
                                    makespan,
                                    bytes,
                                ));
                                // Fold the migration into this step's
                                // record so Σ step wall == makespan and
                                // makespan == compute + comm both hold.
                                if let Some(last) = steps.last_mut() {
                                    last.comm_s += cost;
                                    last.wall_s += cost;
                                }
                            }
                            makespan += cost;
                            comm_total += cost;
                            pol.notify(MigrationEvent {
                                step,
                                edges_moved: delta.edges_moved(),
                                bytes,
                                cost_s: cost,
                                moves_per_pair: pairs,
                            });
                        }
                    }
                }
            }
        }
        if frontier.is_empty() {
            converged = true;
        }

        SimOutcome {
            data,
            report: SimReport {
                app: program.name().to_string(),
                supersteps,
                converged,
                makespan_s: makespan,
                compute_s: compute_total,
                comm_s: comm_total,
                per_machine_busy_s: per_machine_busy,
                per_machine_work: total_work,
                energy,
                steps,
            },
        }
    }
}

/// Handles for the kernel's aggregated telemetry, registered once per run
/// when the engine's [`MetricsRegistry`] is enabled. Everything here is
/// sim-domain: observed only from the kernel's serial sections, from
/// deterministic simulated quantities, so sim snapshots are byte-identical
/// at any host thread count.
struct KernelMetrics {
    supersteps: Counter,
    active_vertices: Counter,
    makespan: Histogram,
    comm: Histogram,
    /// Per-machine busy-time histograms, indexed by machine.
    busy: Vec<Histogram>,
    /// Per-machine barrier-wait (slack) histograms, indexed by machine.
    barrier_wait: Vec<Histogram>,
    imbalance: Gauge,
    straggler: Gauge,
    rebalance_plans: Counter,
    rebalance_batches: Counter,
    migrated_edges: Counter,
    migration_bytes: Counter,
    batch_edges: Histogram,
    migration_cost: Histogram,
}

impl KernelMetrics {
    /// Register the kernel's metrics; `None` when the registry is
    /// disabled, so the hot loop pays exactly one `Option` check per
    /// superstep.
    fn new(metrics: &MetricsRegistry, p: usize) -> Option<Self> {
        if !metrics.enabled() {
            return None;
        }
        let sim = TimeDomain::Sim;
        Some(KernelMetrics {
            supersteps: metrics.counter("engine/supersteps_total", sim),
            active_vertices: metrics.counter("engine/active_vertices_total", sim),
            makespan: metrics.histogram("engine/superstep_makespan_s", sim),
            comm: metrics.histogram("engine/superstep_comm_s", sim),
            busy: (0..p)
                .map(|i| metrics.histogram(&format!("engine/machine/{i}/busy_s"), sim))
                .collect(),
            barrier_wait: (0..p)
                .map(|i| metrics.histogram(&format!("engine/machine/{i}/barrier_wait_s"), sim))
                .collect(),
            imbalance: metrics.gauge("engine/imbalance/last", sim),
            straggler: metrics.gauge("engine/straggler_machine/last", sim),
            rebalance_plans: metrics.counter("engine/rebalance/plans_total", sim),
            rebalance_batches: metrics.counter("engine/rebalance/batches_total", sim),
            migrated_edges: metrics.counter("engine/rebalance/migrated_edges_total", sim),
            migration_bytes: metrics.counter("engine/rebalance/migration_bytes_total", sim),
            batch_edges: metrics.histogram("engine/rebalance/batch_edges", sim),
            migration_cost: metrics.histogram("engine/rebalance/migration_cost_s", sim),
        })
    }

    /// Fold one superstep's timing into the aggregates. Gauges use the
    /// same formulas as [`emit_step_trace`] (and
    /// [`crate::report::StepRecord::straggler`]), so trace, report, and
    /// metrics views of a run agree exactly.
    fn observe_step(&self, active: usize, busy: &[f64], step_compute: f64, step_comm: f64) {
        self.supersteps.inc();
        self.active_vertices.add(active as u64);
        self.makespan.observe(step_compute + step_comm);
        self.comm.observe(step_comm);
        for (i, &b) in busy.iter().enumerate() {
            self.busy[i].observe(b);
            self.barrier_wait[i].observe(step_compute - b);
        }
        let mean_busy = busy.iter().sum::<f64>() / busy.len() as f64;
        self.imbalance.set(if mean_busy > 0.0 {
            step_compute / mean_busy
        } else {
            1.0
        });
        let straggler = busy.iter().position(|&b| b == step_compute).unwrap_or(0);
        self.straggler.set(straggler as f64);
    }
}

/// Inputs to [`emit_step_trace`]: one superstep's timing state, borrowed
/// from the kernel's serial timing section.
struct EmitStep<'s> {
    machines: &'s [MachineSpec],
    profile: &'s AppProfile,
    shape: &'s GraphShape,
    /// Total per-machine work for the superstep (gather + scatter).
    step_work: &'s [WorkCounts],
    /// Per-machine work snapshotted after the gather merge, before
    /// scatter — the gather/apply share of `step_work`.
    gather_work: &'s [WorkCounts],
    busy: &'s [f64],
    step_start_s: f64,
    step_compute: f64,
    step_comm: f64,
    active: usize,
}

/// Emit one superstep's simulated-time trace: per-machine
/// gather/apply/scatter spans, per-machine `barrier_wait` slack, the
/// cluster-wide communication barrier, and the step counters.
///
/// Called only from the kernel's serial timing section, so event order is
/// deterministic and independent of the host thread count. Machine `i`
/// records on track `i`; cluster-wide events use track `P`.
///
/// The per-phase spans split `busy[i]` by re-costing each phase's work
/// through the same performance model and normalizing so the three spans
/// sum exactly to `busy[i]` (the model is not additive across phases —
/// skew relief sees the whole step — so the split is proportional
/// attribution, not three independent model evaluations).
fn emit_step_trace(recorder: &dyn Recorder, s: &EmitStep<'_>) {
    let p = s.busy.len();
    for i in 0..p {
        let gw = s.gather_work[i];
        let scatter_edges = s.step_work[i].edge_units - gw.edge_units;
        let phase_costs = [
            (
                "gather",
                WorkCounts {
                    edge_units: gw.edge_units,
                    vertex_units: 0.0,
                },
            ),
            (
                "apply",
                WorkCounts {
                    edge_units: 0.0,
                    vertex_units: gw.vertex_units,
                },
            ),
            (
                "scatter",
                WorkCounts {
                    edge_units: scatter_edges,
                    vertex_units: 0.0,
                },
            ),
        ]
        .map(|(name, w)| (name, s.profile.time_seconds(&s.machines[i], &w, s.shape)));
        let total: f64 = phase_costs.iter().map(|(_, t)| t).sum();
        if total > 0.0 && s.busy[i] > 0.0 {
            let scale = s.busy[i] / total;
            let mut cursor = s.step_start_s;
            for (name, t) in phase_costs {
                let dur = t * scale;
                if dur > 0.0 {
                    recorder.record(TraceEvent::sim_span(
                        name,
                        "superstep",
                        i as u32,
                        cursor,
                        dur,
                    ));
                }
                cursor += dur;
            }
        }
        // Barrier-wait attribution: how long machine i idles at the
        // superstep barrier waiting for the straggler.
        let slack = s.step_compute - s.busy[i];
        if slack > 0.0 {
            recorder.record(TraceEvent::sim_span(
                "barrier_wait",
                "superstep",
                i as u32,
                s.step_start_s + s.busy[i],
                slack,
            ));
        }
    }
    if s.step_comm > 0.0 {
        recorder.record(TraceEvent::sim_span(
            "comm_barrier",
            "superstep",
            p as u32,
            s.step_start_s + s.step_compute,
            s.step_comm,
        ));
    }
    recorder.record(TraceEvent::sim_counter(
        "active_vertices",
        p as u32,
        s.step_start_s,
        s.active as f64,
    ));
    let mean_busy = s.busy.iter().sum::<f64>() / p as f64;
    let imbalance = if mean_busy > 0.0 {
        s.step_compute / mean_busy
    } else {
        1.0
    };
    recorder.record(TraceEvent::sim_gauge(
        "imbalance",
        p as u32,
        s.step_start_s,
        imbalance,
    ));
    // The straggler is the machine that gates the barrier: the (lowest
    // on ties) index whose busy time equals the step maximum.
    let straggler = s
        .busy
        .iter()
        .position(|&b| b == s.step_compute)
        .unwrap_or(0);
    recorder.record(TraceEvent::sim_gauge(
        "straggler_machine",
        p as u32,
        s.step_start_s,
        straggler as f64,
    ));
}

/// Charge one unit of scatter edge work per adjacency slot to its owning
/// machine: `p` adds from the precomputed row counts when the tables
/// exist, else one machine-lane load and add per edge. The tallies are
/// integers either way, so the sums are identical.
#[inline(always)]
fn charge_unit_row_u64(edge_count: &mut [u64], machines: &[u16], row_counts: Option<&[u32]>) {
    match row_counts {
        Some(rc) => {
            for (w, &c) in edge_count.iter_mut().zip(rc) {
                *w += c as u64;
            }
        }
        None => {
            for &m in machines {
                edge_count[m as usize] += 1;
            }
        }
    }
}

/// Slice vertex `v`'s row out of a whole-graph machine-count table.
#[inline(always)]
fn count_row(table: Option<&[u32]>, v: VertexId, p: usize) -> Option<&[u32]> {
    table.map(|rc| &rc[v as usize * p..v as usize * p + p])
}

/// Scan one adjacency row in table mode: replay the per-source table
/// entry for each edge and charge one work unit to the edge's machine,
/// fused in a single zip loop (measured faster than separate charge and
/// fold passes over short power-law rows). The accumulator folds strictly
/// in edge order — the same association as the general per-edge path, as
/// the determinism contract requires.
#[inline(always)]
fn fold_table_row_fused<P: GasProgram>(
    program: &P,
    t: &[P::Accum],
    targets: &[VertexId],
    machines: &[u16],
    edge_work: &mut [f64],
    acc: &mut Option<P::Accum>,
) {
    debug_assert_eq!(targets.len(), machines.len());
    for (&u, &m) in targets.iter().zip(machines.iter()) {
        edge_work[m as usize] += 1.0;
        let c = t[u as usize].clone();
        *acc = Some(match acc.take() {
            Some(prev) => program.sum(prev, c),
            None => c,
        });
    }
}

/// Per-active-vertex accounting shared by the staged and in-place gather
/// scans: charge the master one vertex unit, then charge mirror
/// synchronization — an active vertex exchanges one message per mirror
/// in each direction, so the master is charged once per mirror and each
/// mirror once.
#[inline(always)]
fn charge_vertex(
    view: StepView<'_>,
    v: VertexId,
    vertex_count: &mut [u64],
    sync_counts: &mut [u64],
) {
    let master = view.master(v);
    vertex_count[master] += 1;
    let mask = view.replica_mask(v);
    let replicas = mask.count_ones();
    if replicas > 1 {
        sync_counts[master] += (replicas - 1) as u64;
        let mut rest = mask;
        while rest != 0 {
            let m = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if m != master {
                sync_counts[m] += 1;
            }
        }
    }
}

/// Gather + apply for one chunk of frontier vertices, accumulating into
/// the caller's structure-of-arrays tallies. Shared verbatim by the
/// serial fast path and the pooled parallel path, so both produce
/// bit-identical per-chunk partials.
#[allow(clippy::too_many_arguments)]
fn gather_chunk<P: GasProgram>(
    changes: &mut Vec<(VertexId, P::VertexData, bool)>,
    edge_work: &mut [f64],
    vertex_count: &mut [u64],
    sync_counts: &mut [u64],
    adj: &mut Vec<VertexId>,
    chunk: &[u32],
    meta: &GraphMeta<'_>,
    view: StepView<'_>,
    program: &P,
    data: &[P::VertexData],
    table: Option<&[P::Accum]>,
    step: usize,
) {
    let dir = program.gather_direction();
    changes.reserve(chunk.len());
    for &v in chunk {
        let mut acc: Option<P::Accum> = None;
        match table {
            // Table mode: every edge contributes `Some(t[u])` at exactly
            // one work unit (the source-only contract), so the scan is a
            // pure table replay.
            Some(t) => {
                if matches!(dir, Direction::In | Direction::Both) {
                    let (targets, machines) = view.in_adj(v, adj);
                    fold_table_row_fused(program, t, targets, machines, edge_work, &mut acc);
                }
                if matches!(dir, Direction::Out | Direction::Both) {
                    let (targets, machines) = view.out_adj(v, adj);
                    fold_table_row_fused(program, t, targets, machines, edge_work, &mut acc);
                }
            }
            None => match dir {
                Direction::In => {
                    let (t, m) = view.in_adj(v, adj);
                    gather_adj(program, meta, data, v, t, m, edge_work, &mut acc);
                }
                Direction::Out => {
                    let (t, m) = view.out_adj(v, adj);
                    gather_adj(program, meta, data, v, t, m, edge_work, &mut acc);
                }
                Direction::Both => {
                    let (t, m) = view.in_adj(v, adj);
                    gather_adj(program, meta, data, v, t, m, edge_work, &mut acc);
                    let (t, m) = view.out_adj(v, adj);
                    gather_adj(program, meta, data, v, t, m, edge_work, &mut acc);
                }
                Direction::None => {}
            },
        }
        let (nd, did_change) = program.apply(meta, v, &data[v as usize], acc, step);
        changes.push((v, nd, did_change));
        charge_vertex(view, v, vertex_count, sync_counts);
    }
}

/// [`gather_chunk`] for the serial path in table mode, committing each
/// apply **in place** instead of staging it. Sound because table-mode
/// gather reads only the per-source snapshot table — never `data` — and
/// `data[v]` is written at `v`'s own turn, so no gather in this superstep
/// observes a committed value (the Jacobi barrier holds with no staging
/// pass). Every `apply` sees the same inputs and `changed` fills in the
/// same frontier order, so the output is bit-identical to staging.
#[allow(clippy::too_many_arguments)]
fn gather_apply_table_inplace<P: GasProgram>(
    data: &mut [P::VertexData],
    changed: &mut Vec<u32>,
    edge_work: &mut [f64],
    vertex_count: &mut [u64],
    sync_counts: &mut [u64],
    adj: &mut Vec<VertexId>,
    chunk: &[u32],
    meta: &GraphMeta<'_>,
    view: StepView<'_>,
    program: &P,
    t: &[P::Accum],
    step: usize,
) {
    let dir = program.gather_direction();
    for &v in chunk {
        let mut acc: Option<P::Accum> = None;
        if matches!(dir, Direction::In | Direction::Both) {
            let (targets, machines) = view.in_adj(v, adj);
            fold_table_row_fused(program, t, targets, machines, edge_work, &mut acc);
        }
        if matches!(dir, Direction::Out | Direction::Both) {
            let (targets, machines) = view.out_adj(v, adj);
            fold_table_row_fused(program, t, targets, machines, edge_work, &mut acc);
        }
        let (nd, did_change) = program.apply(meta, v, &data[v as usize], acc, step);
        data[v as usize] = nd;
        if did_change {
            changed.push(v);
        }
        charge_vertex(view, v, vertex_count, sync_counts);
    }
}

/// Scan one adjacency row for the general (non-table) gather: the
/// accumulator folds strictly in edge order — the same association as a
/// plain loop, as the determinism contract requires.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gather_adj<P: GasProgram>(
    program: &P,
    meta: &GraphMeta<'_>,
    data: &[P::VertexData],
    v: VertexId,
    targets: &[VertexId],
    machines: &[u16],
    edge_work: &mut [f64],
    acc: &mut Option<P::Accum>,
) {
    debug_assert_eq!(targets.len(), machines.len());
    for (&u, &m) in targets.iter().zip(machines.iter()) {
        gather_edge(program, meta, data, v, u, m, edge_work, acc);
    }
}

/// One gather edge: charge its owner and fold the contribution.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gather_edge<P: GasProgram>(
    program: &P,
    meta: &GraphMeta<'_>,
    data: &[P::VertexData],
    v: VertexId,
    u: VertexId,
    m: u16,
    edge_work: &mut [f64],
    acc: &mut Option<P::Accum>,
) {
    let (contrib, w) = program.gather(meta, data, v, u);
    edge_work[m as usize] += w;
    if let Some(c) = contrib {
        *acc = Some(match acc.take() {
            Some(prev) => program.sum(prev, c),
            None => c,
        });
    }
}

/// Serial scatter over the whole changed list: one edge unit per
/// adjacency slot on its owning machine, activations inserted straight
/// into the next frontier (insert order cannot affect a set).
#[allow(clippy::too_many_arguments)]
fn scatter_direct<P: GasProgram>(
    edge_count: &mut [u64],
    frontier: &mut FrontierSet,
    adj: &mut Vec<VertexId>,
    changed: &[u32],
    meta: &GraphMeta<'_>,
    view: StepView<'_>,
    program: &P,
    data: &[P::VertexData],
    counts: Option<(&[u32], &[u32])>,
) {
    let dir = program.scatter_direction();
    let p = edge_count.len();
    let (out_counts, in_counts) = (counts.map(|c| c.0), counts.map(|c| c.1));
    for &v in changed {
        if matches!(dir, Direction::In | Direction::Both) {
            let (t, m) = view.in_adj(v, adj);
            charge_unit_row_u64(edge_count, m, count_row(in_counts, v, p));
            for &u in t {
                if program.scatter_activates(meta, data, v, u, true) {
                    frontier.insert(u);
                }
            }
        }
        if matches!(dir, Direction::Out | Direction::Both) {
            let (t, m) = view.out_adj(v, adj);
            charge_unit_row_u64(edge_count, m, count_row(out_counts, v, p));
            for &u in t {
                if program.scatter_activates(meta, data, v, u, true) {
                    frontier.insert(u);
                }
            }
        }
    }
}

/// Scatter for one chunk of changed vertices: one edge unit per adjacency
/// slot on its owning machine, activations appended in scan order.
#[allow(clippy::too_many_arguments)]
fn scatter_chunk<P: GasProgram>(
    edge_count: &mut [u64],
    activations: &mut Vec<VertexId>,
    adj: &mut Vec<VertexId>,
    chunk: &[u32],
    meta: &GraphMeta<'_>,
    view: StepView<'_>,
    program: &P,
    data: &[P::VertexData],
    counts: Option<(&[u32], &[u32])>,
) {
    let dir = program.scatter_direction();
    let p = edge_count.len();
    let (out_counts, in_counts) = (counts.map(|c| c.0), counts.map(|c| c.1));
    for &v in chunk {
        if matches!(dir, Direction::In | Direction::Both) {
            let (t, m) = view.in_adj(v, adj);
            charge_unit_row_u64(edge_count, m, count_row(in_counts, v, p));
            for &u in t {
                if program.scatter_activates(meta, data, v, u, true) {
                    activations.push(u);
                }
            }
        }
        if matches!(dir, Direction::Out | Direction::Both) {
            let (t, m) = view.out_adj(v, adj);
            charge_unit_row_u64(edge_count, m, count_row(out_counts, v, p));
            for &u in t {
                if program.scatter_activates(meta, data, v, u, true) {
                    activations.push(u);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::obs::TraceRecorder;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    /// Minimal label-propagation program: every vertex takes the minimum
    /// label among itself and its in+out neighbors (connected components).
    struct MinLabel;

    fn test_profile() -> AppProfile {
        AppProfile {
            name: "min_label".into(),
            edge_flops: 50.0,
            edge_bytes: 40.0,
            vertex_flops: 10.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.05,
            parallel_exponent: 1.0,
            skew_sensitivity: 0.3,
            relief_floor: 0.7,
            relief_ref_degree: 10.0,
        }
    }

    impl GasProgram for MinLabel {
        type VertexData = u32;
        type Accum = u32;

        fn name(&self) -> &'static str {
            "min_label"
        }
        fn profile(&self) -> AppProfile {
            test_profile()
        }
        fn init(&self, _g: &GraphMeta<'_>, v: VertexId) -> u32 {
            v
        }
        fn gather_direction(&self) -> Direction {
            Direction::Both
        }
        fn gather(
            &self,
            _g: &GraphMeta<'_>,
            data: &[u32],
            _v: VertexId,
            u: VertexId,
        ) -> (Option<u32>, f64) {
            (Some(data[u as usize]), 1.0)
        }
        fn sum(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(
            &self,
            _g: &GraphMeta<'_>,
            _v: VertexId,
            old: &u32,
            acc: Option<u32>,
            _step: usize,
        ) -> (u32, bool) {
            let candidate = acc.map_or(*old, |a| a.min(*old));
            (candidate, candidate < *old)
        }
        fn scatter_direction(&self) -> Direction {
            Direction::Both
        }
    }

    fn two_components() -> Graph {
        // {0,1,2} ring and {3,4} pair.
        Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 0),
                Edge::new(3, 4),
            ],
        ))
    }

    fn big_graph() -> Graph {
        let n = 5_000u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 13 + 7) % n));
            edges.push(Edge::new(v, (v * 31 + 3) % n));
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    fn partitioned(g: &Graph, cluster: &Cluster) -> PartitionAssignment {
        RandomHash::new().partition(g, &MachineWeights::uniform(cluster.len()))
    }

    #[test]
    fn computes_correct_labels() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert_eq!(out.data, vec![0, 0, 0, 3, 3]);
        assert!(out.report.converged);
    }

    #[test]
    fn result_independent_of_partitioning() {
        let g = two_components();
        let c2 = Cluster::case2();
        let c3 = Cluster::case3();
        let r1 = SimEngine::new(&c2).run(&g, &partitioned(&g, &c2), &MinLabel);
        let a_skewed = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let r2 = SimEngine::new(&c3).run(&g, &a_skewed, &MinLabel);
        assert_eq!(r1.data, r2.data, "results must not depend on placement");
    }

    #[test]
    fn timing_is_positive_and_consistent() {
        let g = two_components();
        let cluster = Cluster::case2();
        let out = SimEngine::new(&cluster).run(&g, &partitioned(&g, &cluster), &MinLabel);
        let r = &out.report;
        assert!(r.makespan_s > 0.0);
        assert!((r.makespan_s - (r.compute_s + r.comm_s)).abs() < 1e-12);
        assert!(r.supersteps >= 2);
        assert_eq!(r.per_machine_busy_s.len(), 2);
        assert!(r.energy.total_j() > 0.0);
    }

    #[test]
    fn deterministic() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let r1 = SimEngine::new(&cluster).run(&g, &a, &MinLabel).report;
        let r2 = SimEngine::new(&cluster).run(&g, &a, &MinLabel).report;
        assert_eq!(r1, r2);
    }

    #[test]
    fn compact_paths_match_plain() {
        // The compressed view must reproduce the plain run bit-for-bit:
        // same vertex data, same SimReport (work sums, timings, energy) —
        // at every host thread count. This is the contract that makes
        // `--compact` a pure representation switch.
        for g in [two_components(), big_graph()] {
            let cluster = Cluster::case3();
            let a = partitioned(&g, &cluster);
            let dist = DistributedGraph::new(&g, &a).unwrap();
            let compact = crate::CompactDistGraph::from_dist(&dist);
            let engine = SimEngine::new(&cluster);
            let plain = engine.run_on(&dist, &MinLabel);
            for threads in [1, 2, 4] {
                let c = engine.run_compact_on_with_threads(&compact, &MinLabel, threads);
                assert_eq!(c.data, plain.data, "data at {threads} threads");
                assert_eq!(c.report, plain.report, "report at {threads} threads");
            }
        }
    }

    #[test]
    fn compact_stream_build_runs_identically() {
        // End-to-end shard-style path: build the compact view from a
        // replayed edge stream (never materializing a DistributedGraph)
        // and get the same outcome.
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let edges: Vec<Edge> = g.edges().to_vec();
        let compact = crate::CompactDistGraph::from_edge_stream(g.num_vertices(), &a, || {
            edges.iter().copied()
        })
        .unwrap();
        let engine = SimEngine::new(&cluster);
        let plain = engine.run(&g, &a, &MinLabel);
        let c = engine.run_compact_on(&compact, &MinLabel);
        assert_eq!(c.data, plain.data);
        assert_eq!(c.report, plain.report);
    }

    #[test]
    fn work_lands_on_edge_owners() {
        let g = two_components();
        let cluster = Cluster::case2();
        // All edges on machine 1: machine 0 must see zero edge work.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![1, 1, 1, 1]);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert_eq!(out.report.per_machine_work[0].edge_units, 0.0);
        assert!(out.report.per_machine_work[1].edge_units > 0.0);
    }

    #[test]
    fn better_placement_reduces_makespan() {
        // A chain graph with all edges on the slow machine vs all on the
        // fast machine: the fast placement must finish sooner.
        let n = 2_000u32;
        let edges: Vec<Edge> = (0..n - 1).map(|v| Edge::new(v, v + 1)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let cluster = Cluster::case2(); // m0 slow, m1 fast
        let m = g.num_edges();
        let slow = PartitionAssignment::from_edge_machines(&g, 2, vec![0; m]);
        let fast = PartitionAssignment::from_edge_machines(&g, 2, vec![1; m]);
        let engine = SimEngine::new(&cluster);
        let t_slow = engine.run(&g, &slow, &MinLabel).report.makespan_s;
        let t_fast = engine.run(&g, &fast, &MinLabel).report.makespan_s;
        assert!(t_fast < t_slow, "fast {t_fast} !< slow {t_slow}");
    }

    #[test]
    fn tracing_records_every_superstep() {
        let g = two_components();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let rec = TraceRecorder::new();
        let traced = SimEngine::new(&cluster)
            .with_recorder(&rec)
            .run(&g, &a, &MinLabel);
        let plain = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert!(plain.report.steps.is_empty(), "tracing is off by default");
        assert_eq!(traced.report.steps.len(), traced.report.supersteps);
        // The trace must tally with the aggregate report.
        let wall: f64 = traced.report.steps.iter().map(|s| s.wall_s).sum();
        assert!((wall - traced.report.makespan_s).abs() < 1e-12);
        assert_eq!(
            traced.report.steps[0].active, 5,
            "all vertices active at step 0"
        );
        for s in &traced.report.steps {
            assert!(s.imbalance() >= 1.0);
        }
        // Tracing must not change results.
        assert_eq!(traced.data, plain.data);
    }

    #[test]
    fn trace_events_cover_machines_phases_and_counters() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let rec = TraceRecorder::new();
        let out = SimEngine::new(&cluster)
            .with_recorder(&rec)
            .run(&g, &a, &MinLabel);
        let events = rec.take_events();
        assert!(!events.is_empty());
        let sim: Vec<_> = events
            .iter()
            .filter(|e| e.domain == hetgraph_core::obs::TimeDomain::Sim)
            .collect();
        // Per-superstep counters land on the cluster-wide track.
        let p = cluster.len() as u32;
        for name in ["active_vertices", "imbalance", "straggler_machine"] {
            let count = sim.iter().filter(|e| e.name == name).count();
            assert_eq!(count, out.report.supersteps, "{name} once per superstep");
            assert!(sim.iter().all(|e| e.name != name || e.track == p));
        }
        // Every machine gets phase spans on its own lane.
        for i in 0..p {
            assert!(
                sim.iter().any(|e| e.track == i && e.name == "gather"),
                "machine {i} has gather spans"
            );
        }
        // Wall-clock phase spans from the host coordinator exist too.
        assert!(events.iter().any(|e| e.name == "gather_merge"));
        assert!(events.iter().any(|e| e.name == "scatter_fanout"));
    }

    #[test]
    fn trace_phase_spans_sum_to_busy_time() {
        let g = big_graph();
        let cluster = Cluster::case3();
        let a = partitioned(&g, &cluster);
        let rec = TraceRecorder::new();
        let out = SimEngine::new(&cluster)
            .with_recorder(&rec)
            .run(&g, &a, &MinLabel);
        let events = rec.take_events();
        // Per machine: Σ (gather+apply+scatter spans) == total busy, and
        // Σ barrier_wait == compute_s − busy_i (the derived attribution).
        for i in 0..cluster.len() {
            let phase_total: f64 = events
                .iter()
                .filter(|e| {
                    e.track == i as u32 && matches!(e.name.as_str(), "gather" | "apply" | "scatter")
                })
                .map(|e| e.dur_us / 1e6)
                .sum();
            let busy = out.report.per_machine_busy_s[i];
            assert!(
                (phase_total - busy).abs() <= 1e-9 * busy.max(1.0),
                "machine {i}: phase spans {phase_total} != busy {busy}"
            );
            let wait_total: f64 = events
                .iter()
                .filter(|e| e.track == i as u32 && e.name == "barrier_wait")
                .map(|e| e.dur_us / 1e6)
                .sum();
            let slack = out.report.compute_s - busy;
            assert!(
                (wait_total - slack).abs() <= 1e-9 * slack.max(1.0),
                "machine {i}: barrier_wait {wait_total} != slack {slack}"
            );
        }
    }

    #[test]
    fn sim_trace_is_byte_identical_across_thread_counts() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let trace_at = |threads: usize| {
            let rec = TraceRecorder::new();
            SimEngine::new(&cluster)
                .with_recorder(&rec)
                .run_parallel(&g, &a, &MinLabel, threads);
            hetgraph_core::obs::chrome_trace_sim(&rec.take_events())
        };
        let reference = trace_at(1);
        assert!(reference.contains("barrier_wait"));
        for threads in [2, 4] {
            assert_eq!(trace_at(threads), reference, "{threads} threads");
        }
    }

    #[test]
    fn empty_graph_converges_immediately() {
        let g = Graph::from_edge_list(EdgeList::new(0));
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        let out = SimEngine::new(&cluster).run(&g, &a, &MinLabel);
        assert!(out.report.converged);
        assert_eq!(out.report.supersteps, 0);
        assert_eq!(out.report.makespan_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "same machine count")]
    fn cluster_mismatch_panics() {
        let g = two_components();
        let cluster = Cluster::case2(); // 2 machines
        let a = PartitionAssignment::from_edge_machines(&g, 3, vec![0, 1, 2, 0]);
        SimEngine::new(&cluster).run(&g, &a, &MinLabel);
    }

    #[test]
    fn parallel_matches_serial_data_and_report_exactly() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let seq = engine.run(&g, &a, &MinLabel);
        for threads in [1, 2, 4] {
            let par = engine.run_parallel(&g, &a, &MinLabel, threads);
            assert_eq!(par.data, seq.data, "{threads} threads");
            // One kernel, integer-valued work contributions: the report is
            // bitwise identical at any thread count, not merely close.
            assert_eq!(par.report, seq.report, "{threads} threads");
        }
    }

    #[test]
    fn parallel_work_attribution_matches() {
        let g = big_graph();
        let cluster = Cluster::case3();
        let a = RandomHash::new().partition(&g, &MachineWeights::from_ccr(&[1.0, 4.0]));
        let engine = SimEngine::new(&cluster);
        let seq = engine.run(&g, &a, &MinLabel).report;
        let par = engine.run_parallel(&g, &a, &MinLabel, 3).report;
        for i in 0..2 {
            assert_eq!(
                seq.per_machine_work[i].edge_units, par.per_machine_work[i].edge_units,
                "machine {i} edge work"
            );
            assert_eq!(
                seq.per_machine_work[i].vertex_units, par.per_machine_work[i].vertex_units,
                "machine {i} vertex work"
            );
        }
        assert_eq!(seq.energy.busy_s.len(), par.energy.busy_s.len());
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let r1 = engine.run_parallel(&g, &a, &MinLabel, 4);
        let r2 = engine.run_parallel(&g, &a, &MinLabel, 4);
        assert_eq!(r1.data, r2.data);
        assert_eq!(r1.report, r2.report);
    }

    #[test]
    fn shared_view_matches_fresh_view() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let direct = engine.run_parallel(&g, &a, &MinLabel, 2);
        let shared = engine.run_parallel_on(&dist, &MinLabel, 2);
        assert_eq!(direct.data, shared.data);
        assert_eq!(direct.report, shared.report);
        // The serial wrapper over the same shared view agrees too.
        let serial = engine.run_on(&dist, &MinLabel);
        assert_eq!(serial.data, shared.data);
    }

    #[test]
    fn empty_graph_parallel() {
        let g = Graph::from_edge_list(EdgeList::new(0));
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        let out = SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 2);
        assert!(out.report.converged);
        assert_eq!(out.report.supersteps, 0);
    }

    #[test]
    #[should_panic(expected = "at least one host thread")]
    fn zero_threads_rejected() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 0);
    }

    /// The twin-engine drift hazard must not silently return: the BSP
    /// superstep loop (identified by its `max_supersteps` driver) exists
    /// in exactly one module of this crate.
    #[test]
    fn superstep_loop_exists_in_exactly_one_module() {
        let src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let mut hits = Vec::new();
        for entry in std::fs::read_dir(&src).expect("read engine src/") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read source file");
            // Split so this test's own source doesn't count as a hit.
            let marker = concat!("for step in 0..program", ".max_supersteps()");
            let count = text.matches(marker).count();
            if count > 0 {
                hits.push((
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    count,
                ));
            }
        }
        assert_eq!(
            hits,
            vec![("sim.rs".to_string(), 1)],
            "the superstep loop must exist exactly once, in sim.rs; found {hits:?}"
        );
    }

    /// Policy that never plans anything — the rebalanced kernel must be
    /// byte-identical to the static one.
    struct NeverRebalance;

    impl RebalancePolicy for NeverRebalance {
        fn name(&self) -> &str {
            "never"
        }
        fn plan(
            &mut self,
            _signals: &StepSignals<'_>,
            _dist: &DistributedGraph<'_>,
            _machines: &[MachineSpec],
            _network: &NetworkModel,
        ) -> Vec<(usize, u16)> {
            Vec::new()
        }
    }

    /// Policy that, exactly once, moves the first `count` edges to
    /// machine 1 — deterministic by construction, for kernel-path tests.
    struct MoveSome {
        count: usize,
        fired: bool,
        events: Vec<MigrationEvent>,
    }

    impl MoveSome {
        fn new(count: usize) -> Self {
            MoveSome {
                count,
                fired: false,
                events: Vec::new(),
            }
        }
    }

    impl RebalancePolicy for MoveSome {
        fn name(&self) -> &str {
            "move_some"
        }
        fn plan(
            &mut self,
            _signals: &StepSignals<'_>,
            dist: &DistributedGraph<'_>,
            _machines: &[MachineSpec],
            _network: &NetworkModel,
        ) -> Vec<(usize, u16)> {
            if self.fired {
                return Vec::new();
            }
            self.fired = true;
            let count = self.count.min(dist.graph().num_edges());
            (0..count).map(|e| (e, 1u16)).collect()
        }
        fn notify(&mut self, event: MigrationEvent) {
            self.events.push(event);
        }
    }

    #[test]
    fn inert_policy_matches_static_run() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let engine = SimEngine::new(&cluster);
        let static_out = engine.run_parallel(&g, &a, &MinLabel, 2);
        let mut dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let mut policy = NeverRebalance;
        let rebal = engine.run_rebalanced_on_with_threads(&mut dist, &MinLabel, 2, &mut policy);
        assert_eq!(static_out.data, rebal.data);
        assert_eq!(static_out.report, rebal.report);
        // No plan means no copy-on-write: the caller's assignment is shared.
        assert_eq!(dist.assignment(), &a);
    }

    #[test]
    fn forced_migration_is_charged_and_preserves_results() {
        let g = big_graph();
        let cluster = Cluster::case2();
        // Everything starts on machine 0, so every planned move is real.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0; g.num_edges()]);
        let engine = SimEngine::new(&cluster);
        let static_out = engine.run_parallel(&g, &a, &MinLabel, 2);
        let mut dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let mut policy = MoveSome::new(1_000);
        let rebal = engine.run_rebalanced_on_with_threads(&mut dist, &MinLabel, 2, &mut policy);
        // Placement never changes answers, only time.
        assert_eq!(static_out.data, rebal.data);
        assert_eq!(static_out.report.supersteps, rebal.report.supersteps);
        let [event] = policy.events.as_slice() else {
            panic!(
                "exactly one migration expected, got {}",
                policy.events.len()
            );
        };
        assert_eq!(event.edges_moved, 1_000);
        assert_eq!(event.step, 0);
        assert!((event.bytes - 1_000.0 * MIGRATION_BYTES_PER_EDGE).abs() < 1e-9);
        assert!(event.cost_s > 0.0);
        assert_eq!(event.moves_per_pair.len(), 1);
        let (from, to, n) = event.moves_per_pair[0];
        assert_eq!((from.0, to.0, n), (0, 1, 1_000));
        // The migration cost lands in comm and therefore in the makespan,
        // and the accounting identity survives the surcharge.
        assert!(rebal.report.comm_s > static_out.report.comm_s);
        let identity = rebal.report.makespan_s - (rebal.report.compute_s + rebal.report.comm_s);
        assert!(identity.abs() < 1e-12, "makespan == compute + comm");
        // The caller's assignment is untouched; the view's copy moved on.
        assert_eq!(a.edge_machines()[0], 0);
        assert_eq!(dist.assignment().edge_machines()[0], 1);
    }

    #[test]
    fn rebalanced_run_is_thread_count_invariant() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0; g.num_edges()]);
        let engine = SimEngine::new(&cluster);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
            let mut policy = MoveSome::new(2_500);
            let out =
                engine.run_rebalanced_on_with_threads(&mut dist, &MinLabel, threads, &mut policy);
            reports.push((out.data, out.report));
        }
        assert_eq!(reports[0], reports[1], "1 vs 2 threads");
        assert_eq!(reports[0], reports[2], "1 vs 4 threads");
    }

    #[test]
    fn rebalanced_trace_tallies_and_marks_migrations() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0; g.num_edges()]);
        let rec = TraceRecorder::new();
        let engine = SimEngine::new(&cluster).with_recorder(&rec);
        let mut dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let mut policy = MoveSome::new(1_000);
        let out = engine.run_rebalanced_on_with_threads(&mut dist, &MinLabel, 2, &mut policy);
        // The per-step records absorb the migration surcharge, so the
        // trace still tallies with the aggregate report.
        let wall: f64 = out.report.steps.iter().map(|s| s.wall_s).sum();
        assert!((wall - out.report.makespan_s).abs() < 1e-12);
        let events = rec.take_events();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.name == "migration" && e.cat == "rebalance")
            .collect();
        assert_eq!(spans.len(), 2, "one span per machine lane of the pair");
        assert_eq!(spans[0].track, 0);
        assert_eq!(spans[1].track, 1);
        let p = cluster.len() as u32;
        for name in ["migrated_edges", "migration_bytes"] {
            let hits: Vec<_> = events.iter().filter(|e| e.name == name).collect();
            assert_eq!(hits.len(), 1, "{name} once per migration batch");
            assert_eq!(hits[0].track, p, "{name} on the cluster-wide lane");
        }
    }

    #[test]
    fn perturbation_slowdown_stretches_the_makespan() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = partitioned(&g, &cluster);
        let base = SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 2);
        let schedule = PerturbationSchedule::new().slowdown(0, 0, None, 0.25);
        let slowed = SimEngine::new(&cluster)
            .with_perturbations(&schedule)
            .run_parallel(&g, &a, &MinLabel, 2);
        assert_eq!(
            base.data, slowed.data,
            "perturbations change time, not answers"
        );
        assert!(slowed.report.makespan_s > base.report.makespan_s);
        // An empty schedule is byte-identical to no schedule at all.
        let empty = PerturbationSchedule::new();
        let noop = SimEngine::new(&cluster)
            .with_perturbations(&empty)
            .run_parallel(&g, &a, &MinLabel, 2);
        assert_eq!(base.report, noop.report);
    }
}
