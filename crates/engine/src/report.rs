//! Execution reports.

use hetgraph_cluster::{EnergyReport, WorkCounts};

/// One superstep's timing snapshot (recorded when tracing is enabled via
/// [`crate::SimEngine::with_trace`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StepRecord {
    /// Superstep index.
    pub step: usize,
    /// Active vertices entering the step.
    pub active: usize,
    /// Per-machine busy compute seconds.
    pub busy_s: Vec<f64>,
    /// Communication + barrier seconds.
    pub comm_s: f64,
    /// Wall-clock of the step.
    pub wall_s: f64,
}

impl StepRecord {
    /// Slowest machine's busy time over the mean — the step's own
    /// imbalance (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.busy_s.len().max(1) as f64;
        let mean: f64 = self.busy_s.iter().sum::<f64>() / n;
        if mean == 0.0 {
            1.0
        } else {
            self.busy_s.iter().copied().fold(0.0f64, f64::max) / mean
        }
    }
}

/// Everything the simulator measured about one application run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// Application name.
    pub app: String,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Whether the program converged within its superstep budget.
    pub converged: bool,
    /// End-to-end simulated wall clock (compute + communication), seconds.
    pub makespan_s: f64,
    /// Σ over supersteps of the slowest machine's compute time.
    pub compute_s: f64,
    /// Σ over supersteps of communication + barrier time.
    pub comm_s: f64,
    /// Per-machine total busy compute seconds.
    pub per_machine_busy_s: Vec<f64>,
    /// Per-machine accumulated work counts.
    pub per_machine_work: Vec<WorkCounts>,
    /// Energy accounting over the whole schedule.
    pub energy: EnergyReport,
    /// Per-superstep records (empty unless tracing was enabled).
    pub steps: Vec<StepRecord>,
}

impl SimReport {
    /// Total joules consumed by the cluster.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// The balance quality actually realized: slowest machine busy time
    /// over mean busy time (1.0 = perfectly balanced compute).
    pub fn compute_imbalance(&self) -> f64 {
        let n = self.per_machine_busy_s.len().max(1) as f64;
        let mean: f64 = self.per_machine_busy_s.iter().sum::<f64>() / n;
        if mean == 0.0 {
            1.0
        } else {
            self.per_machine_busy_s
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                / mean
        }
    }

    /// Fraction of the makespan spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan_s == 0.0 {
            0.0
        } else {
            self.comm_s / self.makespan_s
        }
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4}s over {} supersteps (compute {:.4}s, comm {:.4}s, {:.1} J{})",
            self.app,
            self.makespan_s,
            self.supersteps,
            self.compute_s,
            self.comm_s,
            self.total_energy_j(),
            if self.converged {
                ""
            } else {
                ", NOT converged"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            app: "test".into(),
            supersteps: 3,
            converged: true,
            makespan_s: 10.0,
            compute_s: 8.0,
            comm_s: 2.0,
            per_machine_busy_s: vec![8.0, 4.0],
            per_machine_work: vec![WorkCounts::zero(), WorkCounts::zero()],
            energy: EnergyReport::new(2),
            steps: Vec::new(),
        }
    }

    #[test]
    fn step_record_imbalance() {
        let r = StepRecord {
            step: 0,
            active: 10,
            busy_s: vec![3.0, 1.0],
            comm_s: 0.1,
            wall_s: 3.1,
        };
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
        let idle = StepRecord {
            step: 1,
            active: 0,
            busy_s: vec![0.0, 0.0],
            comm_s: 0.0,
            wall_s: 0.0,
        };
        assert_eq!(idle.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let r = report();
        assert!((r.compute_imbalance() - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn comm_fraction() {
        assert!((report().comm_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("test"));
        assert!(s.contains("supersteps"));
    }

    #[test]
    fn zero_cases() {
        let mut r = report();
        r.makespan_s = 0.0;
        assert_eq!(r.comm_fraction(), 0.0);
        r.per_machine_busy_s = vec![0.0, 0.0];
        assert_eq!(r.compute_imbalance(), 1.0);
    }
}
