//! Execution reports.

use hetgraph_cluster::{EnergyReport, WorkCounts};

/// One superstep's timing snapshot (recorded when an enabled recorder is
/// attached via [`crate::SimEngine::with_recorder`]).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StepRecord {
    /// Superstep index.
    pub step: usize,
    /// Active vertices entering the step.
    pub active: usize,
    /// Per-machine busy compute seconds.
    pub busy_s: Vec<f64>,
    /// Communication + barrier seconds.
    pub comm_s: f64,
    /// Wall-clock of the step.
    pub wall_s: f64,
}

impl StepRecord {
    /// Slowest machine's busy time over the mean — the step's own
    /// imbalance (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.busy_s.len().max(1) as f64;
        let mean: f64 = self.busy_s.iter().sum::<f64>() / n;
        if mean == 0.0 {
            1.0
        } else {
            self.busy_s.iter().copied().fold(0.0f64, f64::max) / mean
        }
    }

    /// Per-machine barrier-wait slack for this step: `max busy − busy_i`,
    /// i.e. how long each machine idles at the superstep barrier waiting
    /// for the straggler. The straggler's own entry is 0.
    pub fn barrier_wait(&self) -> Vec<f64> {
        let max = self.busy_s.iter().copied().fold(0.0f64, f64::max);
        self.busy_s.iter().map(|&b| max - b).collect()
    }

    /// The machine gating this step's barrier: the index with the maximal
    /// busy time (lowest index on ties, including the all-idle step).
    pub fn straggler(&self) -> usize {
        let max = self.busy_s.iter().copied().fold(0.0f64, f64::max);
        self.busy_s.iter().position(|&b| b == max).unwrap_or(0)
    }
}

/// Everything the simulator measured about one application run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// Application name.
    pub app: String,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Whether the program converged within its superstep budget.
    pub converged: bool,
    /// End-to-end simulated wall clock (compute + communication), seconds.
    pub makespan_s: f64,
    /// Σ over supersteps of the slowest machine's compute time.
    pub compute_s: f64,
    /// Σ over supersteps of communication + barrier time.
    pub comm_s: f64,
    /// Per-machine total busy compute seconds.
    pub per_machine_busy_s: Vec<f64>,
    /// Per-machine accumulated work counts.
    pub per_machine_work: Vec<WorkCounts>,
    /// Energy accounting over the whole schedule.
    pub energy: EnergyReport,
    /// Per-superstep records (empty unless tracing was enabled).
    pub steps: Vec<StepRecord>,
}

impl SimReport {
    /// Total joules consumed by the cluster.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// The balance quality actually realized: slowest machine busy time
    /// over mean busy time (1.0 = perfectly balanced compute).
    pub fn compute_imbalance(&self) -> f64 {
        let n = self.per_machine_busy_s.len().max(1) as f64;
        let mean: f64 = self.per_machine_busy_s.iter().sum::<f64>() / n;
        if mean == 0.0 {
            1.0
        } else {
            self.per_machine_busy_s
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                / mean
        }
    }

    /// Alias of [`SimReport::compute_imbalance`]: slowest machine's busy
    /// time over the mean (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        self.compute_imbalance()
    }

    /// Fraction of the makespan spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.makespan_s == 0.0 {
            0.0
        } else {
            self.comm_s / self.makespan_s
        }
    }

    /// Per-machine barrier-wait slack accumulated over the whole run:
    /// `compute_s − per_machine_busy_s[i]`.
    ///
    /// `compute_s` is the sum of per-step maxima, so this equals the sum
    /// over supersteps of each step's `max busy − busy_i` — the time
    /// machine `i` spent idle at superstep barriers waiting for
    /// stragglers. Derived from the aggregate fields, so it is available
    /// whether or not per-step tracing was on.
    pub fn barrier_wait_s(&self) -> Vec<f64> {
        self.per_machine_busy_s
            .iter()
            .map(|&b| self.compute_s - b)
            .collect()
    }

    /// Total barrier-wait slack across all machines, seconds. Bounded by
    /// `(P − 1) × compute_s`: at most all machines but the per-step
    /// straggler idle for a whole step.
    pub fn total_barrier_wait_s(&self) -> f64 {
        self.barrier_wait_s().iter().sum()
    }

    /// How many supersteps each machine was the straggler (the machine
    /// gating the barrier; ties go to the lowest index). Requires per-step
    /// tracing: without it every count is 0.
    pub fn straggler_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.per_machine_busy_s.len()];
        for s in &self.steps {
            let i = s.straggler();
            if i < hist.len() {
                hist[i] += 1;
            }
        }
        hist
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {:.4}s over {} supersteps (compute {:.4}s, comm {:.4}s, {:.1} J{})",
            self.app,
            self.makespan_s,
            self.supersteps,
            self.compute_s,
            self.comm_s,
            self.total_energy_j(),
            if self.converged {
                ""
            } else {
                ", NOT converged"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            app: "test".into(),
            supersteps: 3,
            converged: true,
            makespan_s: 10.0,
            compute_s: 8.0,
            comm_s: 2.0,
            per_machine_busy_s: vec![8.0, 4.0],
            per_machine_work: vec![WorkCounts::zero(), WorkCounts::zero()],
            energy: EnergyReport::new(2),
            steps: Vec::new(),
        }
    }

    #[test]
    fn step_record_imbalance() {
        let r = StepRecord {
            step: 0,
            active: 10,
            busy_s: vec![3.0, 1.0],
            comm_s: 0.1,
            wall_s: 3.1,
        };
        assert!((r.imbalance() - 1.5).abs() < 1e-12);
        let idle = StepRecord {
            step: 1,
            active: 0,
            busy_s: vec![0.0, 0.0],
            comm_s: 0.0,
            wall_s: 0.0,
        };
        assert_eq!(idle.imbalance(), 1.0);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let r = report();
        assert!((r.compute_imbalance() - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn comm_fraction() {
        assert!((report().comm_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("test"));
        assert!(s.contains("supersteps"));
    }

    #[test]
    fn zero_cases() {
        let mut r = report();
        r.makespan_s = 0.0;
        assert_eq!(r.comm_fraction(), 0.0);
        r.per_machine_busy_s = vec![0.0, 0.0];
        assert_eq!(r.compute_imbalance(), 1.0);
    }

    #[test]
    fn single_machine_is_always_balanced() {
        let mut r = report();
        r.per_machine_busy_s = vec![8.0];
        r.compute_s = 8.0;
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.barrier_wait_s(), vec![0.0]);
        assert_eq!(r.total_barrier_wait_s(), 0.0);
        // A lone machine is its own straggler on every traced step.
        r.steps = vec![StepRecord {
            step: 0,
            active: 3,
            busy_s: vec![8.0],
            comm_s: 0.0,
            wall_s: 8.0,
        }];
        assert_eq!(r.straggler_histogram(), vec![1]);
    }

    #[test]
    fn zero_compute_superstep_attributes_nothing() {
        // A step where no machine computes (e.g. all remaining active
        // vertices have no edges anywhere): imbalance degenerates to 1,
        // nobody waits, and the tie-broken straggler is machine 0.
        let s = StepRecord {
            step: 2,
            active: 1,
            busy_s: vec![0.0, 0.0, 0.0],
            comm_s: 0.0,
            wall_s: 0.0,
        };
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.barrier_wait(), vec![0.0, 0.0, 0.0]);
        assert_eq!(s.straggler(), 0);
    }

    #[test]
    fn empty_active_set_report_is_well_defined() {
        // A run that converges before its first superstep: every aggregate
        // is zero and the derived metrics hit their defined fallbacks.
        let r = SimReport {
            app: "empty".into(),
            supersteps: 0,
            converged: true,
            makespan_s: 0.0,
            compute_s: 0.0,
            comm_s: 0.0,
            per_machine_busy_s: vec![0.0, 0.0],
            per_machine_work: vec![WorkCounts::zero(), WorkCounts::zero()],
            energy: EnergyReport::new(2),
            steps: Vec::new(),
        };
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.comm_fraction(), 0.0);
        assert_eq!(r.barrier_wait_s(), vec![0.0, 0.0]);
        assert_eq!(r.straggler_histogram(), vec![0, 0]);
    }

    #[test]
    fn step_barrier_wait_zeroes_the_straggler() {
        let s = StepRecord {
            step: 0,
            active: 10,
            busy_s: vec![1.0, 3.0, 2.0],
            comm_s: 0.0,
            wall_s: 3.0,
        };
        assert_eq!(s.straggler(), 1);
        assert_eq!(s.barrier_wait(), vec![2.0, 0.0, 1.0]);
    }

    #[test]
    fn barrier_wait_attribution_sums_and_is_bounded() {
        // Three steps on two machines. Aggregates mirror what the kernel
        // accumulates: compute_s = Σ max busy, per_machine = Σ busy_i.
        let steps = vec![
            StepRecord {
                step: 0,
                active: 10,
                busy_s: vec![3.0, 1.0],
                comm_s: 0.0,
                wall_s: 3.0,
            },
            StepRecord {
                step: 1,
                active: 8,
                busy_s: vec![1.0, 4.0],
                comm_s: 0.0,
                wall_s: 4.0,
            },
            StepRecord {
                step: 2,
                active: 2,
                busy_s: vec![2.0, 2.0],
                comm_s: 0.0,
                wall_s: 2.0,
            },
        ];
        let p = 2usize;
        let compute_s: f64 = steps
            .iter()
            .map(|s| s.busy_s.iter().copied().fold(0.0f64, f64::max))
            .sum();
        let per_machine: Vec<f64> = (0..p)
            .map(|i| steps.iter().map(|s| s.busy_s[i]).sum())
            .collect();
        let r = SimReport {
            app: "t".into(),
            supersteps: steps.len(),
            converged: true,
            makespan_s: compute_s,
            compute_s,
            comm_s: 0.0,
            per_machine_busy_s: per_machine,
            per_machine_work: vec![WorkCounts::zero(); p],
            energy: EnergyReport::new(p),
            steps,
        };
        // The aggregate attribution equals the per-step slack summed.
        for i in 0..p {
            let per_step: f64 = r.steps.iter().map(|s| s.barrier_wait()[i]).sum();
            assert!(
                (r.barrier_wait_s()[i] - per_step).abs() < 1e-12,
                "machine {i}"
            );
        }
        // Total slack is bounded by (P−1) × compute_s: per step, at most
        // everyone but the straggler idles the whole step.
        let total = r.total_barrier_wait_s();
        assert!(total <= (p - 1) as f64 * r.compute_s + 1e-12);
        assert!((total - (3.0 - 1.0 + 4.0 - 1.0)).abs() < 1e-12);
        // Straggler histogram: m0 gates step 0, m1 gates step 1, tie on
        // step 2 goes to m0.
        assert_eq!(r.straggler_histogram(), vec![2, 1]);
    }
}
