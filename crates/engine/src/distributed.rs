//! The partition-aware graph view.
//!
//! Work attribution needs to know, for every adjacency slot the engine
//! touches, *which machine owns the underlying edge*. The CSR adjacency in
//! `hetgraph-core` stores neighbor ids only, so this module builds machine
//! arrays exactly aligned with each CSR's `targets` array by replaying the
//! same counting sort the CSR construction used.

use std::sync::OnceLock;

use hetgraph_core::{Graph, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

/// Largest machine count for which [`DistributedGraph::machine_counts`]
/// materializes its per-vertex count tables. Each direction costs
/// `n * p` u32s; past this the footprint outweighs the per-edge
/// accounting work the tables save.
const ROW_COUNTS_MAX_MACHINES: usize = 8;

/// A graph plus its partition, with per-adjacency-slot edge ownership.
pub struct DistributedGraph<'a> {
    graph: &'a Graph,
    assignment: &'a PartitionAssignment,
    /// Machine of the edge behind `out_csr.targets()[k]`.
    out_slot_machine: Vec<u16>,
    /// Machine of the edge behind `in_csr.targets()[k]`.
    in_slot_machine: Vec<u16>,
    /// Lazily built per-vertex per-machine slot counts (see
    /// [`machine_counts`](Self::machine_counts)).
    out_row_counts: OnceLock<Vec<u32>>,
    in_row_counts: OnceLock<Vec<u32>>,
}

impl<'a> DistributedGraph<'a> {
    /// Build the aligned ownership arrays.
    ///
    /// # Panics
    /// Panics if the assignment does not cover exactly this graph's edges.
    pub fn new(graph: &'a Graph, assignment: &'a PartitionAssignment) -> Self {
        Self::new_with_threads(graph, assignment, 1)
    }

    /// [`DistributedGraph::new`] with a host thread budget.
    ///
    /// With one thread, a single fused edge pass fills both direction
    /// arrays at once (one sweep over the edge list instead of two full
    /// replays). With two or more, the directions build concurrently —
    /// each direction's array is computed independently, so the result
    /// is identical at any thread count.
    ///
    /// # Panics
    /// Panics if the assignment does not cover exactly this graph's
    /// edges, or if `host_threads == 0`.
    pub fn new_with_threads(
        graph: &'a Graph,
        assignment: &'a PartitionAssignment,
        host_threads: usize,
    ) -> Self {
        assert!(host_threads > 0, "need at least one host thread");
        assert_eq!(
            assignment.edge_machines().len(),
            graph.num_edges(),
            "assignment must cover the graph"
        );
        let (out_slot_machine, in_slot_machine) = if host_threads >= 2 {
            let mut arrays = hetgraph_core::par::scheduled(2, host_threads, |dir| {
                align(graph, assignment, /*by_src=*/ dir == 0)
            });
            let ins = arrays.pop().expect("two direction arrays");
            let outs = arrays.pop().expect("two direction arrays");
            (outs, ins)
        } else {
            align_fused(graph, assignment)
        };
        DistributedGraph {
            graph,
            assignment,
            out_slot_machine,
            in_slot_machine,
            out_row_counts: OnceLock::new(),
            in_row_counts: OnceLock::new(),
        }
    }

    /// Per-vertex per-machine adjacency-slot counts for the (out, in) CSR
    /// directions, row-major by vertex: entry `v * p + m` is how many of
    /// `v`'s adjacency slots machine `m` owns. The superstep kernel uses
    /// them to charge unit-per-edge work with `p` adds per row instead of
    /// one machine-lane load and add per edge.
    ///
    /// Built lazily on first call (one pass over each slot array) and
    /// cached. Returns `None` when the cluster has more than
    /// [`ROW_COUNTS_MAX_MACHINES`] machines, where the tables' `n * p`
    /// footprint stops paying for itself; callers must keep a per-edge
    /// fallback.
    pub fn machine_counts(&self) -> Option<(&[u32], &[u32])> {
        let p = self.assignment.num_machines();
        if p > ROW_COUNTS_MAX_MACHINES {
            return None;
        }
        let out = self.out_row_counts.get_or_init(|| {
            row_machine_counts(self.graph.out_csr().offsets(), &self.out_slot_machine, p)
        });
        let inn = self.in_row_counts.get_or_init(|| {
            row_machine_counts(self.graph.in_csr().offsets(), &self.in_slot_machine, p)
        });
        Some((out, inn))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The partition.
    pub fn assignment(&self) -> &PartitionAssignment {
        self.assignment
    }

    /// Out-neighbors of `v` with the owning machine of each edge.
    pub fn out_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.out_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.out_csr().targets()[lo..hi]
            .iter()
            .zip(&self.out_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }

    /// In-neighbors of `v` with the owning machine of each edge.
    pub fn in_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.in_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.in_csr().targets()[lo..hi]
            .iter()
            .zip(&self.in_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }

    /// Out-adjacency of `v` as raw parallel slices: neighbor ids and the
    /// raw machine index of each edge. The slice form is what the
    /// kernel's hot scans iterate — a bounds-checked-once zip over two
    /// plain slices, with the `MachineId` wrapper elided.
    #[inline]
    pub fn out_adj(&self, v: VertexId) -> (&[VertexId], &[u16]) {
        let offsets = self.graph.out_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        (
            &self.graph.out_csr().targets()[lo..hi],
            &self.out_slot_machine[lo..hi],
        )
    }

    /// In-adjacency of `v` as raw parallel slices (see
    /// [`out_adj`](Self::out_adj)).
    #[inline]
    pub fn in_adj(&self, v: VertexId) -> (&[VertexId], &[u16]) {
        let offsets = self.graph.in_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        (
            &self.graph.in_csr().targets()[lo..hi],
            &self.in_slot_machine[lo..hi],
        )
    }
}

/// Replay the CSR counting sort to produce, for each adjacency slot, the
/// machine of the edge that filled it. Must iterate edges in exactly the
/// order `Csr::build` does (graph edge order). Slots within a vertex are
/// tracked with a zero-initialized per-vertex counter added to the CSR
/// offset, so no copy of the offsets array is made.
fn align(graph: &Graph, assignment: &PartitionAssignment, by_src: bool) -> Vec<u16> {
    let csr = if by_src {
        graph.out_csr()
    } else {
        graph.in_csr()
    };
    let offsets = csr.offsets();
    let mut fill = vec![0u32; graph.num_vertices() as usize];
    let mut slot_machine = vec![0u16; graph.num_edges()];
    for (e, &mach) in graph.edges().iter().zip(assignment.edge_machines()) {
        let key = if by_src { e.src } else { e.dst } as usize;
        slot_machine[offsets[key] + fill[key] as usize] = mach;
        fill[key] += 1;
    }
    slot_machine
}

/// Collapse a slot-machine array into per-vertex per-machine counts
/// (`n * p`, row-major by vertex).
fn row_machine_counts(offsets: &[usize], slot_machine: &[u16], p: usize) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut counts = vec![0u32; n * p];
    for v in 0..n {
        let row = &mut counts[v * p..(v + 1) * p];
        for &m in &slot_machine[offsets[v]..offsets[v + 1]] {
            row[m as usize] += 1;
        }
    }
    counts
}

/// [`align`] for both directions in one edge pass: each edge lands its
/// machine in its out-CSR slot (keyed by source) and its in-CSR slot
/// (keyed by target) in the same iteration, so the edge list, the
/// assignment, and both fill counters stream through cache once.
fn align_fused(graph: &Graph, assignment: &PartitionAssignment) -> (Vec<u16>, Vec<u16>) {
    let n = graph.num_vertices() as usize;
    let out_offsets = graph.out_csr().offsets();
    let in_offsets = graph.in_csr().offsets();
    let mut out_fill = vec![0u32; n];
    let mut in_fill = vec![0u32; n];
    let mut out_slot = vec![0u16; graph.num_edges()];
    let mut in_slot = vec![0u16; graph.num_edges()];
    for (e, &mach) in graph.edges().iter().zip(assignment.edge_machines()) {
        let s = e.src as usize;
        let d = e.dst as usize;
        out_slot[out_offsets[s] + out_fill[s] as usize] = mach;
        out_fill[s] += 1;
        in_slot[in_offsets[d] + in_fill[d] as usize] = mach;
        in_fill[d] += 1;
    }
    (out_slot, in_slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn setup() -> (Graph, Vec<u16>) {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1), // e0 -> m0
                Edge::new(0, 2), // e1 -> m1
                Edge::new(1, 2), // e2 -> m0
                Edge::new(3, 2), // e3 -> m1
            ],
        ));
        (g, vec![0, 1, 0, 1])
    }

    #[test]
    fn out_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        let got: Vec<_> = d.out_neighbors_owned(0).collect();
        assert_eq!(got, vec![(1, MachineId(0)), (2, MachineId(1))]);
    }

    #[test]
    fn in_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        // In-neighbors of 2: from edges e1 (0, m1), e2 (1, m0), e3 (3, m1).
        let mut got: Vec<_> = d.in_neighbors_owned(2).collect();
        got.sort();
        assert_eq!(
            got,
            vec![(0, MachineId(1)), (1, MachineId(0)), (3, MachineId(1))]
        );
    }

    #[test]
    fn ownership_consistent_between_directions() {
        // The same edge must report the same machine from both endpoints.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        // Edge (1,2) seen from 1's out list and 2's in list.
        let from_out = d
            .out_neighbors_owned(1)
            .find(|&(u, _)| u == 2)
            .expect("edge exists")
            .1;
        let from_in = d
            .in_neighbors_owned(2)
            .find(|&(u, _)| u == 1)
            .expect("edge exists")
            .1;
        assert_eq!(from_out, from_in);
    }

    #[test]
    fn duplicate_edges_keep_individual_owners() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            2,
            vec![Edge::new(0, 1), Edge::new(0, 1)],
        ));
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 1]);
        let d = DistributedGraph::new(&g, &a);
        let machines: Vec<_> = d.out_neighbors_owned(0).map(|(_, m)| m.0).collect();
        assert_eq!(machines.len(), 2);
        let mut sorted = machines.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn fused_and_threaded_builds_agree() {
        // The fused single-pass build (1 thread) and the per-direction
        // parallel build (2+ threads) must produce identical slot arrays.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let serial = DistributedGraph::new(&g, &a);
        for threads in [2, 4] {
            let par = DistributedGraph::new_with_threads(&g, &a, threads);
            assert_eq!(serial.out_slot_machine, par.out_slot_machine);
            assert_eq!(serial.in_slot_machine, par.in_slot_machine);
        }
    }

    #[test]
    fn adjacency_slices_match_owned_iterators() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        for v in g.vertices() {
            let from_iter: Vec<_> = d.out_neighbors_owned(v).collect();
            let (ts, mach) = d.out_adj(v);
            let from_slices: Vec<_> = ts
                .iter()
                .zip(mach)
                .map(|(&u, &m)| (u, MachineId(m)))
                .collect();
            assert_eq!(from_iter, from_slices);
            let from_iter: Vec<_> = d.in_neighbors_owned(v).collect();
            let (ts, mach) = d.in_adj(v);
            let from_slices: Vec<_> = ts
                .iter()
                .zip(mach)
                .map(|(&u, &m)| (u, MachineId(m)))
                .collect();
            assert_eq!(from_iter, from_slices);
        }
    }

    #[test]
    fn machine_counts_match_slot_lanes() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        let (out, inn) = d.machine_counts().expect("2 machines is under the cap");
        let p = 2usize;
        for v in g.vertices() {
            for m in 0..p {
                let expect_out = d.out_adj(v).1.iter().filter(|&&s| s as usize == m).count();
                assert_eq!(
                    out[v as usize * p + m] as usize,
                    expect_out,
                    "out v={v} m={m}"
                );
                let expect_in = d.in_adj(v).1.iter().filter(|&&s| s as usize == m).count();
                assert_eq!(
                    inn[v as usize * p + m] as usize,
                    expect_in,
                    "in v={v} m={m}"
                );
            }
        }
        // Cached: a second call hands back the same tables.
        let again = d.machine_counts().unwrap();
        assert!(std::ptr::eq(out, again.0) && std::ptr::eq(inn, again.1));
    }

    #[test]
    fn machine_counts_absent_above_machine_cap() {
        let (g, _) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 9, vec![0, 1, 2, 8]);
        let d = DistributedGraph::new(&g, &a);
        assert!(d.machine_counts().is_none(), "9 machines exceeds the cap");
    }

    #[test]
    #[should_panic(expected = "cover the graph")]
    fn mismatched_assignment_panics() {
        let (g, _) = setup();
        let smaller = Graph::from_edge_list(EdgeList::from_edges(2, vec![Edge::new(0, 1)]));
        let a = PartitionAssignment::from_edge_machines(&smaller, 2, vec![0]);
        DistributedGraph::new(&g, &a);
    }
}
