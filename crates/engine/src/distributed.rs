//! The partition-aware graph view.
//!
//! Work attribution needs to know, for every adjacency slot the engine
//! touches, *which machine owns the underlying edge*. The CSR adjacency in
//! `hetgraph-core` stores neighbor ids only, so this module builds machine
//! arrays exactly aligned with each CSR's `targets` array by replaying the
//! same counting sort the CSR construction used.

use hetgraph_core::{Graph, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

/// A graph plus its partition, with per-adjacency-slot edge ownership.
pub struct DistributedGraph<'a> {
    graph: &'a Graph,
    assignment: &'a PartitionAssignment,
    /// Machine of the edge behind `out_csr.targets()[k]`.
    out_slot_machine: Vec<u16>,
    /// Machine of the edge behind `in_csr.targets()[k]`.
    in_slot_machine: Vec<u16>,
}

impl<'a> DistributedGraph<'a> {
    /// Build the aligned ownership arrays.
    ///
    /// # Panics
    /// Panics if the assignment does not cover exactly this graph's edges.
    pub fn new(graph: &'a Graph, assignment: &'a PartitionAssignment) -> Self {
        Self::new_with_threads(graph, assignment, 1)
    }

    /// [`DistributedGraph::new`] with a host thread budget.
    ///
    /// With one thread, a single fused edge pass fills both direction
    /// arrays at once (one sweep over the edge list instead of two full
    /// replays). With two or more, the directions build concurrently —
    /// each direction's array is computed independently, so the result
    /// is identical at any thread count.
    ///
    /// # Panics
    /// Panics if the assignment does not cover exactly this graph's
    /// edges, or if `host_threads == 0`.
    pub fn new_with_threads(
        graph: &'a Graph,
        assignment: &'a PartitionAssignment,
        host_threads: usize,
    ) -> Self {
        assert!(host_threads > 0, "need at least one host thread");
        assert_eq!(
            assignment.edge_machines().len(),
            graph.num_edges(),
            "assignment must cover the graph"
        );
        let (out_slot_machine, in_slot_machine) = if host_threads >= 2 {
            let mut arrays = hetgraph_core::par::scheduled(2, host_threads, |dir| {
                align(graph, assignment, /*by_src=*/ dir == 0)
            });
            let ins = arrays.pop().expect("two direction arrays");
            let outs = arrays.pop().expect("two direction arrays");
            (outs, ins)
        } else {
            align_fused(graph, assignment)
        };
        DistributedGraph {
            graph,
            assignment,
            out_slot_machine,
            in_slot_machine,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The partition.
    pub fn assignment(&self) -> &PartitionAssignment {
        self.assignment
    }

    /// Out-neighbors of `v` with the owning machine of each edge.
    pub fn out_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.out_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.out_csr().targets()[lo..hi]
            .iter()
            .zip(&self.out_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }

    /// In-neighbors of `v` with the owning machine of each edge.
    pub fn in_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.in_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.in_csr().targets()[lo..hi]
            .iter()
            .zip(&self.in_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }
}

/// Replay the CSR counting sort to produce, for each adjacency slot, the
/// machine of the edge that filled it. Must iterate edges in exactly the
/// order `Csr::build` does (graph edge order). Slots within a vertex are
/// tracked with a zero-initialized per-vertex counter added to the CSR
/// offset, so no copy of the offsets array is made.
fn align(graph: &Graph, assignment: &PartitionAssignment, by_src: bool) -> Vec<u16> {
    let csr = if by_src {
        graph.out_csr()
    } else {
        graph.in_csr()
    };
    let offsets = csr.offsets();
    let mut fill = vec![0u32; graph.num_vertices() as usize];
    let mut slot_machine = vec![0u16; graph.num_edges()];
    for (e, &mach) in graph.edges().iter().zip(assignment.edge_machines()) {
        let key = if by_src { e.src } else { e.dst } as usize;
        slot_machine[offsets[key] + fill[key] as usize] = mach;
        fill[key] += 1;
    }
    slot_machine
}

/// [`align`] for both directions in one edge pass: each edge lands its
/// machine in its out-CSR slot (keyed by source) and its in-CSR slot
/// (keyed by target) in the same iteration, so the edge list, the
/// assignment, and both fill counters stream through cache once.
fn align_fused(graph: &Graph, assignment: &PartitionAssignment) -> (Vec<u16>, Vec<u16>) {
    let n = graph.num_vertices() as usize;
    let out_offsets = graph.out_csr().offsets();
    let in_offsets = graph.in_csr().offsets();
    let mut out_fill = vec![0u32; n];
    let mut in_fill = vec![0u32; n];
    let mut out_slot = vec![0u16; graph.num_edges()];
    let mut in_slot = vec![0u16; graph.num_edges()];
    for (e, &mach) in graph.edges().iter().zip(assignment.edge_machines()) {
        let s = e.src as usize;
        let d = e.dst as usize;
        out_slot[out_offsets[s] + out_fill[s] as usize] = mach;
        out_fill[s] += 1;
        in_slot[in_offsets[d] + in_fill[d] as usize] = mach;
        in_fill[d] += 1;
    }
    (out_slot, in_slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn setup() -> (Graph, Vec<u16>) {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1), // e0 -> m0
                Edge::new(0, 2), // e1 -> m1
                Edge::new(1, 2), // e2 -> m0
                Edge::new(3, 2), // e3 -> m1
            ],
        ));
        (g, vec![0, 1, 0, 1])
    }

    #[test]
    fn out_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        let got: Vec<_> = d.out_neighbors_owned(0).collect();
        assert_eq!(got, vec![(1, MachineId(0)), (2, MachineId(1))]);
    }

    #[test]
    fn in_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        // In-neighbors of 2: from edges e1 (0, m1), e2 (1, m0), e3 (3, m1).
        let mut got: Vec<_> = d.in_neighbors_owned(2).collect();
        got.sort();
        assert_eq!(
            got,
            vec![(0, MachineId(1)), (1, MachineId(0)), (3, MachineId(1))]
        );
    }

    #[test]
    fn ownership_consistent_between_directions() {
        // The same edge must report the same machine from both endpoints.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        // Edge (1,2) seen from 1's out list and 2's in list.
        let from_out = d
            .out_neighbors_owned(1)
            .find(|&(u, _)| u == 2)
            .expect("edge exists")
            .1;
        let from_in = d
            .in_neighbors_owned(2)
            .find(|&(u, _)| u == 1)
            .expect("edge exists")
            .1;
        assert_eq!(from_out, from_in);
    }

    #[test]
    fn duplicate_edges_keep_individual_owners() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            2,
            vec![Edge::new(0, 1), Edge::new(0, 1)],
        ));
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 1]);
        let d = DistributedGraph::new(&g, &a);
        let machines: Vec<_> = d.out_neighbors_owned(0).map(|(_, m)| m.0).collect();
        assert_eq!(machines.len(), 2);
        let mut sorted = machines.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn fused_and_threaded_builds_agree() {
        // The fused single-pass build (1 thread) and the per-direction
        // parallel build (2+ threads) must produce identical slot arrays.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let serial = DistributedGraph::new(&g, &a);
        for threads in [2, 4] {
            let par = DistributedGraph::new_with_threads(&g, &a, threads);
            assert_eq!(serial.out_slot_machine, par.out_slot_machine);
            assert_eq!(serial.in_slot_machine, par.in_slot_machine);
        }
    }

    #[test]
    #[should_panic(expected = "cover the graph")]
    fn mismatched_assignment_panics() {
        let (g, _) = setup();
        let smaller = Graph::from_edge_list(EdgeList::from_edges(2, vec![Edge::new(0, 1)]));
        let a = PartitionAssignment::from_edge_machines(&smaller, 2, vec![0]);
        DistributedGraph::new(&g, &a);
    }
}
