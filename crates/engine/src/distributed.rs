//! The partition-aware graph view.
//!
//! Work attribution needs to know, for every adjacency slot the engine
//! touches, *which machine owns the underlying edge*. The CSR adjacency in
//! `hetgraph-core` stores neighbor ids only, so this module builds machine
//! arrays exactly aligned with each CSR's `targets` array by replaying the
//! same counting sort the CSR construction used.

use hetgraph_core::{Graph, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

/// A graph plus its partition, with per-adjacency-slot edge ownership.
pub struct DistributedGraph<'a> {
    graph: &'a Graph,
    assignment: &'a PartitionAssignment,
    /// Machine of the edge behind `out_csr.targets()[k]`.
    out_slot_machine: Vec<u16>,
    /// Machine of the edge behind `in_csr.targets()[k]`.
    in_slot_machine: Vec<u16>,
}

impl<'a> DistributedGraph<'a> {
    /// Build the aligned ownership arrays.
    ///
    /// # Panics
    /// Panics if the assignment does not cover exactly this graph's edges.
    pub fn new(graph: &'a Graph, assignment: &'a PartitionAssignment) -> Self {
        assert_eq!(
            assignment.edge_machines().len(),
            graph.num_edges(),
            "assignment must cover the graph"
        );
        let out_slot_machine = align(graph, assignment, /*by_src=*/ true);
        let in_slot_machine = align(graph, assignment, /*by_src=*/ false);
        DistributedGraph {
            graph,
            assignment,
            out_slot_machine,
            in_slot_machine,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The partition.
    pub fn assignment(&self) -> &PartitionAssignment {
        self.assignment
    }

    /// Out-neighbors of `v` with the owning machine of each edge.
    pub fn out_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.out_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.out_csr().targets()[lo..hi]
            .iter()
            .zip(&self.out_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }

    /// In-neighbors of `v` with the owning machine of each edge.
    pub fn in_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.in_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.in_csr().targets()[lo..hi]
            .iter()
            .zip(&self.in_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }
}

/// Replay the CSR counting sort to produce, for each adjacency slot, the
/// machine of the edge that filled it. Must iterate edges in exactly the
/// order `Csr::build` does (graph edge order).
fn align(graph: &Graph, assignment: &PartitionAssignment, by_src: bool) -> Vec<u16> {
    let csr = if by_src {
        graph.out_csr()
    } else {
        graph.in_csr()
    };
    let mut cursor: Vec<usize> = csr.offsets()[..csr.offsets().len() - 1].to_vec();
    let mut slot_machine = vec![0u16; graph.num_edges()];
    for (idx, e) in graph.edges().iter().enumerate() {
        let key = if by_src { e.src } else { e.dst } as usize;
        slot_machine[cursor[key]] = assignment.edge_machines()[idx];
        cursor[key] += 1;
    }
    slot_machine
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn setup() -> (Graph, Vec<u16>) {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1), // e0 -> m0
                Edge::new(0, 2), // e1 -> m1
                Edge::new(1, 2), // e2 -> m0
                Edge::new(3, 2), // e3 -> m1
            ],
        ));
        (g, vec![0, 1, 0, 1])
    }

    #[test]
    fn out_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        let got: Vec<_> = d.out_neighbors_owned(0).collect();
        assert_eq!(got, vec![(1, MachineId(0)), (2, MachineId(1))]);
    }

    #[test]
    fn in_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        // In-neighbors of 2: from edges e1 (0, m1), e2 (1, m0), e3 (3, m1).
        let mut got: Vec<_> = d.in_neighbors_owned(2).collect();
        got.sort();
        assert_eq!(
            got,
            vec![(0, MachineId(1)), (1, MachineId(0)), (3, MachineId(1))]
        );
    }

    #[test]
    fn ownership_consistent_between_directions() {
        // The same edge must report the same machine from both endpoints.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a);
        // Edge (1,2) seen from 1's out list and 2's in list.
        let from_out = d
            .out_neighbors_owned(1)
            .find(|&(u, _)| u == 2)
            .expect("edge exists")
            .1;
        let from_in = d
            .in_neighbors_owned(2)
            .find(|&(u, _)| u == 1)
            .expect("edge exists")
            .1;
        assert_eq!(from_out, from_in);
    }

    #[test]
    fn duplicate_edges_keep_individual_owners() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            2,
            vec![Edge::new(0, 1), Edge::new(0, 1)],
        ));
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 1]);
        let d = DistributedGraph::new(&g, &a);
        let machines: Vec<_> = d.out_neighbors_owned(0).map(|(_, m)| m.0).collect();
        assert_eq!(machines.len(), 2);
        let mut sorted = machines.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cover the graph")]
    fn mismatched_assignment_panics() {
        let (g, _) = setup();
        let smaller = Graph::from_edge_list(EdgeList::from_edges(2, vec![Edge::new(0, 1)]));
        let a = PartitionAssignment::from_edge_machines(&smaller, 2, vec![0]);
        DistributedGraph::new(&g, &a);
    }
}
