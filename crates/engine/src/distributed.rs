//! The partition-aware graph view.
//!
//! Work attribution needs to know, for every adjacency slot the engine
//! touches, *which machine owns the underlying edge*. The CSR adjacency in
//! `hetgraph-core` stores neighbor ids only, so this module builds machine
//! arrays exactly aligned with each CSR's `targets` array by replaying the
//! same counting sort the CSR construction used.

use std::borrow::Cow;
use std::sync::OnceLock;

use crate::error::EngineError;
use hetgraph_core::{Graph, MachineId, VertexId};
use hetgraph_partition::{AssignmentDelta, PartitionAssignment};

/// Largest machine count for which [`DistributedGraph::machine_counts`]
/// materializes its per-vertex count tables. Each direction costs
/// `n * p` u32s; past this the footprint outweighs the per-edge
/// accounting work the tables save.
pub(crate) const ROW_COUNTS_MAX_MACHINES: usize = 8;

/// A graph plus its partition, with per-adjacency-slot edge ownership.
///
/// The assignment is held as a [`Cow`]: a freshly built view borrows the
/// caller's `PartitionAssignment` (zero copy, exactly the old behavior);
/// the first [`migrate_edges`](Self::migrate_edges) call clones it once
/// and every edit from then on is in-place on the owned copy. The
/// alignment tables are owned either way and are patched per-delta in
/// O(|delta|) rather than rebuilt. Cloning copies the alignment tables
/// but not the graph, and a borrowed assignment stays borrowed — cheap
/// enough to fork a mutable view off a shared one before rebalancing.
#[derive(Clone)]
pub struct DistributedGraph<'a> {
    graph: &'a Graph,
    assignment: Cow<'a, PartitionAssignment>,
    /// Machine of the edge behind `out_csr.targets()[k]`.
    out_slot_machine: Vec<u16>,
    /// Machine of the edge behind `in_csr.targets()[k]`.
    in_slot_machine: Vec<u16>,
    /// Lazily built per-vertex per-machine slot counts (see
    /// [`machine_counts`](Self::machine_counts)).
    out_row_counts: OnceLock<Vec<u32>>,
    in_row_counts: OnceLock<Vec<u32>>,
    /// Lazily built per-edge slot positions `(out, in)` — edge `i` fills
    /// `out_csr.targets()[out[i]]` and `in_csr.targets()[in[i]]`. Built on
    /// the first delta so slot lanes patch in O(|delta|) instead of an
    /// O(E) realign per migration batch.
    edge_slots: OnceLock<(Vec<u32>, Vec<u32>)>,
}

impl<'a> DistributedGraph<'a> {
    /// Build the aligned ownership arrays.
    ///
    /// # Errors
    /// Returns [`EngineError::AssignmentMismatch`] if the assignment does
    /// not cover exactly this graph's edges.
    pub fn new(graph: &'a Graph, assignment: &'a PartitionAssignment) -> Result<Self, EngineError> {
        Self::new_with_threads(graph, assignment, 1)
    }

    /// [`DistributedGraph::new`] with a host thread budget.
    ///
    /// With one thread, a single fused edge pass fills both direction
    /// arrays at once (one sweep over the edge list instead of two full
    /// replays). With two or more, the directions build concurrently —
    /// each direction's array is computed independently, so the result
    /// is identical at any thread count.
    ///
    /// # Errors
    /// Returns [`EngineError::AssignmentMismatch`] if the assignment does
    /// not cover exactly this graph's edges.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn new_with_threads(
        graph: &'a Graph,
        assignment: &'a PartitionAssignment,
        host_threads: usize,
    ) -> Result<Self, EngineError> {
        assert!(host_threads > 0, "need at least one host thread");
        if assignment.edge_machines().len() != graph.num_edges() {
            return Err(EngineError::AssignmentMismatch {
                assignment_edges: assignment.edge_machines().len(),
                graph_edges: graph.num_edges(),
            });
        }
        let (out_slot_machine, in_slot_machine) = if host_threads >= 2 {
            let mut arrays = hetgraph_core::par::scheduled(2, host_threads, |dir| {
                align(graph, assignment, /*by_src=*/ dir == 0)
            });
            let ins = arrays.pop().expect("two direction arrays");
            let outs = arrays.pop().expect("two direction arrays");
            (outs, ins)
        } else {
            align_fused(graph, assignment)
        };
        Ok(DistributedGraph {
            graph,
            assignment: Cow::Borrowed(assignment),
            out_slot_machine,
            in_slot_machine,
            out_row_counts: OnceLock::new(),
            in_row_counts: OnceLock::new(),
            edge_slots: OnceLock::new(),
        })
    }

    /// Per-vertex per-machine adjacency-slot counts for the (out, in) CSR
    /// directions, row-major by vertex: entry `v * p + m` is how many of
    /// `v`'s adjacency slots machine `m` owns. The superstep kernel uses
    /// them to charge unit-per-edge work with `p` adds per row instead of
    /// one machine-lane load and add per edge.
    ///
    /// Built lazily on first call (one pass over each slot array) and
    /// cached. Returns `None` when the cluster has more than
    /// [`ROW_COUNTS_MAX_MACHINES`] machines, where the tables' `n * p`
    /// footprint stops paying for itself; callers must keep a per-edge
    /// fallback.
    pub fn machine_counts(&self) -> Option<(&[u32], &[u32])> {
        let p = self.assignment.num_machines();
        if p > ROW_COUNTS_MAX_MACHINES {
            return None;
        }
        let out = self.out_row_counts.get_or_init(|| {
            row_machine_counts(self.graph.out_csr().offsets(), &self.out_slot_machine, p)
        });
        let inn = self.in_row_counts.get_or_init(|| {
            row_machine_counts(self.graph.in_csr().offsets(), &self.in_slot_machine, p)
        });
        Some((out, inn))
    }

    /// Resident footprint in bytes of every O(V)+O(E) structure a plain
    /// simulation keeps alive through this view: the borrowed `Graph`
    /// (edge list + both CSRs), the assignment's lanes and replication
    /// arrays, this view's slot-machine lanes, and any lazily built
    /// count/slot tables that have actually materialized. The compact
    /// counterpart is [`crate::CompactDistGraph::resident_bytes`]; the
    /// scale benchmark compares the two per edge.
    pub fn resident_bytes(&self) -> usize {
        self.graph.resident_bytes()
            + self.assignment.resident_bytes()
            + self.out_slot_machine.len() * 2
            + self.in_slot_machine.len() * 2
            + self.out_row_counts.get().map_or(0, |c| c.len() * 4)
            + self.in_row_counts.get().map_or(0, |c| c.len() * 4)
            + self
                .edge_slots
                .get()
                .map_or(0, |(o, i)| (o.len() + i.len()) * 4)
    }

    /// The underlying graph. Tied to the graph's lifetime, not the
    /// view's, so callers can hold it across mutations of `self`.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The partition (the owned copy once any migration has happened).
    pub fn assignment(&self) -> &PartitionAssignment {
        &self.assignment
    }

    /// Reassign a batch of `(edge index, destination machine)` pairs and
    /// patch every derived table, returning the applied delta. The first
    /// call clones the borrowed assignment (copy-on-write); the slot
    /// lanes, row-count tables, and replication structure are then
    /// patched in place — no O(E) rebuild on any path after the one-time
    /// edge-slot-table construction.
    ///
    /// # Panics
    /// Panics if an edge index or destination machine is out of range.
    pub fn migrate_edges(&mut self, batch: &[(usize, u16)]) -> AssignmentDelta {
        // An all-no-op batch must not trigger the copy-on-write clone (an
        // out-of-range index falls through so validation still fires).
        let no_change = batch
            .iter()
            .all(|&(e, to)| self.assignment.edge_machines().get(e) == Some(&to));
        if no_change {
            return AssignmentDelta::default();
        }
        let graph = self.graph;
        let delta = self.assignment.to_mut().migrate_edges(graph, batch);
        self.apply_delta(&delta);
        delta
    }

    /// Patch the alignment tables for an already-applied assignment
    /// delta: the touched out/in slot lanes get the new machine, and the
    /// row-count tables (if materialized) get `±1` on the two affected
    /// machine columns of each moved edge's endpoint rows.
    ///
    /// Callers that mutate through [`migrate_edges`](Self::migrate_edges)
    /// never call this directly; it is public for consumers that edit a
    /// `PartitionAssignment` they own and mirror the delta into the view.
    pub fn apply_delta(&mut self, delta: &AssignmentDelta) {
        if delta.is_empty() {
            return;
        }
        self.ensure_edge_slots();
        let (out_slots, in_slots) = self.edge_slots.get().expect("just built");
        for mv in &delta.moves {
            self.out_slot_machine[out_slots[mv.edge] as usize] = mv.to.0;
            self.in_slot_machine[in_slots[mv.edge] as usize] = mv.to.0;
        }
        let p = self.assignment.num_machines();
        let edges = self.graph.edges();
        if let Some(rc) = self.out_row_counts.get_mut() {
            for mv in &delta.moves {
                let row = edges[mv.edge].src as usize * p;
                rc[row + mv.from.index()] -= 1;
                rc[row + mv.to.index()] += 1;
            }
        }
        if let Some(rc) = self.in_row_counts.get_mut() {
            for mv in &delta.moves {
                let row = edges[mv.edge].dst as usize * p;
                rc[row + mv.from.index()] -= 1;
                rc[row + mv.to.index()] += 1;
            }
        }
    }

    /// Build the per-edge slot-position tables if not yet built: one
    /// replay of the CSR counting sort recording, for each edge, which
    /// out-slot and in-slot it filled.
    fn ensure_edge_slots(&self) {
        self.edge_slots.get_or_init(|| {
            let n = self.graph.num_vertices() as usize;
            assert!(
                self.graph.num_edges() <= u32::MAX as usize,
                "edge-slot tables index edges with u32"
            );
            let out_offsets = self.graph.out_csr().offsets();
            let in_offsets = self.graph.in_csr().offsets();
            let mut out_fill = vec![0u32; n];
            let mut in_fill = vec![0u32; n];
            let mut out_of_edge = vec![0u32; self.graph.num_edges()];
            let mut in_of_edge = vec![0u32; self.graph.num_edges()];
            for (i, e) in self.graph.edges().iter().enumerate() {
                let s = e.src as usize;
                let d = e.dst as usize;
                out_of_edge[i] = (out_offsets[s] + out_fill[s] as usize) as u32;
                out_fill[s] += 1;
                in_of_edge[i] = (in_offsets[d] + in_fill[d] as usize) as u32;
                in_fill[d] += 1;
            }
            (out_of_edge, in_of_edge)
        });
    }

    /// Out-neighbors of `v` with the owning machine of each edge.
    pub fn out_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.out_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.out_csr().targets()[lo..hi]
            .iter()
            .zip(&self.out_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }

    /// In-neighbors of `v` with the owning machine of each edge.
    pub fn in_neighbors_owned(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, MachineId)> + '_ {
        let offsets = self.graph.in_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        self.graph.in_csr().targets()[lo..hi]
            .iter()
            .zip(&self.in_slot_machine[lo..hi])
            .map(|(&u, &m)| (u, MachineId(m)))
    }

    /// Out-adjacency of `v` as raw parallel slices: neighbor ids and the
    /// raw machine index of each edge. The slice form is what the
    /// kernel's hot scans iterate — a bounds-checked-once zip over two
    /// plain slices, with the `MachineId` wrapper elided.
    #[inline]
    pub fn out_adj(&self, v: VertexId) -> (&[VertexId], &[u16]) {
        let offsets = self.graph.out_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        (
            &self.graph.out_csr().targets()[lo..hi],
            &self.out_slot_machine[lo..hi],
        )
    }

    /// In-adjacency of `v` as raw parallel slices (see
    /// [`out_adj`](Self::out_adj)).
    #[inline]
    pub fn in_adj(&self, v: VertexId) -> (&[VertexId], &[u16]) {
        let offsets = self.graph.in_csr().offsets();
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        (
            &self.graph.in_csr().targets()[lo..hi],
            &self.in_slot_machine[lo..hi],
        )
    }
}

/// Replay the CSR counting sort to produce, for each adjacency slot, the
/// machine of the edge that filled it. Must iterate edges in exactly the
/// order `Csr::build` does (graph edge order). Slots within a vertex are
/// tracked with a zero-initialized per-vertex counter added to the CSR
/// offset, so no copy of the offsets array is made.
fn align(graph: &Graph, assignment: &PartitionAssignment, by_src: bool) -> Vec<u16> {
    let csr = if by_src {
        graph.out_csr()
    } else {
        graph.in_csr()
    };
    let offsets = csr.offsets();
    let mut fill = vec![0u32; graph.num_vertices() as usize];
    let mut slot_machine = vec![0u16; graph.num_edges()];
    for (e, &mach) in graph.edges().iter().zip(assignment.edge_machines()) {
        let key = if by_src { e.src } else { e.dst } as usize;
        slot_machine[offsets[key] + fill[key] as usize] = mach;
        fill[key] += 1;
    }
    slot_machine
}

/// Collapse a slot-machine array into per-vertex per-machine counts
/// (`n * p`, row-major by vertex).
fn row_machine_counts(offsets: &[usize], slot_machine: &[u16], p: usize) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut counts = vec![0u32; n * p];
    for v in 0..n {
        let row = &mut counts[v * p..(v + 1) * p];
        for &m in &slot_machine[offsets[v]..offsets[v + 1]] {
            row[m as usize] += 1;
        }
    }
    counts
}

/// [`align`] for both directions in one edge pass: each edge lands its
/// machine in its out-CSR slot (keyed by source) and its in-CSR slot
/// (keyed by target) in the same iteration, so the edge list, the
/// assignment, and both fill counters stream through cache once.
fn align_fused(graph: &Graph, assignment: &PartitionAssignment) -> (Vec<u16>, Vec<u16>) {
    let n = graph.num_vertices() as usize;
    let out_offsets = graph.out_csr().offsets();
    let in_offsets = graph.in_csr().offsets();
    let mut out_fill = vec![0u32; n];
    let mut in_fill = vec![0u32; n];
    let mut out_slot = vec![0u16; graph.num_edges()];
    let mut in_slot = vec![0u16; graph.num_edges()];
    for (e, &mach) in graph.edges().iter().zip(assignment.edge_machines()) {
        let s = e.src as usize;
        let d = e.dst as usize;
        out_slot[out_offsets[s] + out_fill[s] as usize] = mach;
        out_fill[s] += 1;
        in_slot[in_offsets[d] + in_fill[d] as usize] = mach;
        in_fill[d] += 1;
    }
    (out_slot, in_slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn setup() -> (Graph, Vec<u16>) {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1), // e0 -> m0
                Edge::new(0, 2), // e1 -> m1
                Edge::new(1, 2), // e2 -> m0
                Edge::new(3, 2), // e3 -> m1
            ],
        ));
        (g, vec![0, 1, 0, 1])
    }

    #[test]
    fn out_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let got: Vec<_> = d.out_neighbors_owned(0).collect();
        assert_eq!(got, vec![(1, MachineId(0)), (2, MachineId(1))]);
    }

    #[test]
    fn in_slots_carry_edge_machines() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        // In-neighbors of 2: from edges e1 (0, m1), e2 (1, m0), e3 (3, m1).
        let mut got: Vec<_> = d.in_neighbors_owned(2).collect();
        got.sort();
        assert_eq!(
            got,
            vec![(0, MachineId(1)), (1, MachineId(0)), (3, MachineId(1))]
        );
    }

    #[test]
    fn ownership_consistent_between_directions() {
        // The same edge must report the same machine from both endpoints.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        // Edge (1,2) seen from 1's out list and 2's in list.
        let from_out = d
            .out_neighbors_owned(1)
            .find(|&(u, _)| u == 2)
            .expect("edge exists")
            .1;
        let from_in = d
            .in_neighbors_owned(2)
            .find(|&(u, _)| u == 1)
            .expect("edge exists")
            .1;
        assert_eq!(from_out, from_in);
    }

    #[test]
    fn duplicate_edges_keep_individual_owners() {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            2,
            vec![Edge::new(0, 1), Edge::new(0, 1)],
        ));
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 1]);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let machines: Vec<_> = d.out_neighbors_owned(0).map(|(_, m)| m.0).collect();
        assert_eq!(machines.len(), 2);
        let mut sorted = machines.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn fused_and_threaded_builds_agree() {
        // The fused single-pass build (1 thread) and the per-direction
        // parallel build (2+ threads) must produce identical slot arrays.
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let serial = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        for threads in [2, 4] {
            let par = DistributedGraph::new_with_threads(&g, &a, threads)
                .expect("assignment must cover the graph");
            assert_eq!(serial.out_slot_machine, par.out_slot_machine);
            assert_eq!(serial.in_slot_machine, par.in_slot_machine);
        }
    }

    #[test]
    fn adjacency_slices_match_owned_iterators() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        for v in g.vertices() {
            let from_iter: Vec<_> = d.out_neighbors_owned(v).collect();
            let (ts, mach) = d.out_adj(v);
            let from_slices: Vec<_> = ts
                .iter()
                .zip(mach)
                .map(|(&u, &m)| (u, MachineId(m)))
                .collect();
            assert_eq!(from_iter, from_slices);
            let from_iter: Vec<_> = d.in_neighbors_owned(v).collect();
            let (ts, mach) = d.in_adj(v);
            let from_slices: Vec<_> = ts
                .iter()
                .zip(mach)
                .map(|(&u, &m)| (u, MachineId(m)))
                .collect();
            assert_eq!(from_iter, from_slices);
        }
    }

    #[test]
    fn machine_counts_match_slot_lanes() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let (out, inn) = d.machine_counts().expect("2 machines is under the cap");
        let p = 2usize;
        for v in g.vertices() {
            for m in 0..p {
                let expect_out = d.out_adj(v).1.iter().filter(|&&s| s as usize == m).count();
                assert_eq!(
                    out[v as usize * p + m] as usize,
                    expect_out,
                    "out v={v} m={m}"
                );
                let expect_in = d.in_adj(v).1.iter().filter(|&&s| s as usize == m).count();
                assert_eq!(
                    inn[v as usize * p + m] as usize,
                    expect_in,
                    "in v={v} m={m}"
                );
            }
        }
        // Cached: a second call hands back the same tables.
        let again = d.machine_counts().unwrap();
        assert!(std::ptr::eq(out, again.0) && std::ptr::eq(inn, again.1));
    }

    #[test]
    fn machine_counts_absent_above_machine_cap() {
        let (g, _) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 9, vec![0, 1, 2, 8]);
        let d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        assert!(d.machine_counts().is_none(), "9 machines exceeds the cap");
    }

    #[test]
    fn mismatched_assignment_is_a_typed_error() {
        let (g, _) = setup();
        let smaller = Graph::from_edge_list(EdgeList::from_edges(2, vec![Edge::new(0, 1)]));
        let a = PartitionAssignment::from_edge_machines(&smaller, 2, vec![0]);
        match DistributedGraph::new(&g, &a) {
            Err(EngineError::AssignmentMismatch {
                assignment_edges,
                graph_edges,
            }) => {
                assert_eq!(assignment_edges, 1);
                assert_eq!(graph_edges, 4);
            }
            _ => panic!("expected AssignmentMismatch"),
        }
    }

    #[test]
    fn migrate_patches_slot_lanes_like_a_fresh_build() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let mut d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let delta = d.migrate_edges(&[(1, 0), (3, 0)]);
        assert_eq!(delta.edges_moved(), 2);
        // The caller's assignment is untouched (copy-on-write)...
        assert_eq!(a.edge_machines(), &[0, 1, 0, 1]);
        // ...and the view equals a fresh build of the migrated machines.
        let migrated =
            PartitionAssignment::from_edge_machines(&g, 2, d.assignment().edge_machines().to_vec());
        assert_eq!(d.assignment(), &migrated);
        let fresh = DistributedGraph::new(&g, &migrated).expect("assignment must cover the graph");
        assert_eq!(d.out_slot_machine, fresh.out_slot_machine);
        assert_eq!(d.in_slot_machine, fresh.in_slot_machine);
    }

    #[test]
    fn migrate_patches_row_counts_in_place() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms);
        let mut d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        // Materialize the row tables BEFORE migrating so the patch path
        // (not a rebuild) is what produces the final counts.
        d.machine_counts().expect("under the machine cap");
        let _ = d.migrate_edges(&[(0, 1), (2, 1)]);
        let migrated =
            PartitionAssignment::from_edge_machines(&g, 2, d.assignment().edge_machines().to_vec());
        let fresh = DistributedGraph::new(&g, &migrated).expect("assignment must cover the graph");
        assert_eq!(d.machine_counts(), fresh.machine_counts());
    }

    #[test]
    fn empty_migration_batch_changes_nothing() {
        let (g, ms) = setup();
        let a = PartitionAssignment::from_edge_machines(&g, 2, ms.clone());
        let mut d = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let delta = d.migrate_edges(&[(0, 0)]);
        assert!(delta.is_empty());
        // No clone happened: still borrowing the caller's assignment.
        assert!(matches!(d.assignment, Cow::Borrowed(_)));
        assert_eq!(d.assignment().edge_machines(), ms.as_slice());
    }
}
