//! The compressed partition-aware graph view.
//!
//! [`CompactDistGraph`] is the bounded-RSS counterpart of
//! [`crate::DistributedGraph`]: both adjacency directions live in
//! delta-varint [`CompactCsr`] form, machine ownership lanes stay plain
//! per-edge `u16` arrays aligned with the *sorted* neighbor order, and the
//! replication structure (master + replica mask per vertex) is copied out
//! of the assignment so the view owns everything it needs — no `Graph`,
//! no edge list, no `PartitionAssignment` kept alive. The only O(E)
//! resident structures are the varint streams and the machine lanes,
//! which is what the scale benchmark's RSS-per-edge gate audits.
//!
//! Neighbor order differs from the plain view (sorted ascending instead
//! of edge-insertion order), but every quantity the superstep kernel
//! folds from adjacency is order-insensitive — integer-valued work
//! tallies, exact min/max/sum accumulators — so `SimReport`s stay
//! byte-identical (`sim::tests` and the CLI's `--compact` path assert
//! this). Placement is frozen: there is no migration support, so runs
//! that need a rebalance policy must use the plain view.
//!
//! Two constructors cover the two ingestion paths: [`from_dist`]
//! (re-compress an already-built plain view, used by tests and the
//! `simulate --compact` CLI path) and [`from_edge_stream`] (build
//! straight from a replayable edge stream — e.g. a
//! [`hetgraph_core::ShardSet`] — without ever materializing a `Graph`).
//! Both produce structurally identical views for the same edges and
//! assignment.
//!
//! [`from_dist`]: CompactDistGraph::from_dist
//! [`from_edge_stream`]: CompactDistGraph::from_edge_stream

use crate::distributed::{DistributedGraph, ROW_COUNTS_MAX_MACHINES};
use crate::error::EngineError;
use hetgraph_core::compact::{meta_pair, CompactCsr, CompactCsrBuilder};
use hetgraph_core::{Edge, GraphMeta, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

/// A partitioned graph in compressed form: delta-varint adjacency plus
/// per-edge machine lanes and per-vertex replication structure. See the
/// module docs for the contract with the plain [`DistributedGraph`].
#[derive(Debug, Clone)]
pub struct CompactDistGraph {
    num_machines: usize,
    out: CompactCsr,
    inn: CompactCsr,
    /// Machine of the edge behind out slot `k` (sorted neighbor order).
    out_slot_machine: Vec<u16>,
    /// Machine of the edge behind in slot `k` (sorted neighbor order).
    in_slot_machine: Vec<u16>,
    /// Master machine per vertex.
    master: Vec<u16>,
    /// Replica bitmask per vertex.
    replica_mask: Vec<u64>,
    /// Per-vertex per-machine slot counts (row-major), materialized only
    /// when the machine count is at most [`ROW_COUNTS_MAX_MACHINES`].
    out_row_counts: Option<Vec<u32>>,
    in_row_counts: Option<Vec<u32>>,
}

impl CompactDistGraph {
    /// Re-compress a plain distributed view. Each adjacency row's
    /// `(target, machine)` pairs are stable-sorted by target so the
    /// machine lane stays aligned with the sorted varint row; duplicate
    /// targets keep their insertion-order machines.
    pub fn from_dist(dist: &DistributedGraph<'_>) -> Self {
        let graph = dist.graph();
        let assignment = dist.assignment();
        let n = graph.num_vertices();
        let p = assignment.num_machines();
        let (out, out_slot_machine, out_row_counts) =
            compress_rows(n, graph.num_edges(), p, |v| dist.out_adj(v));
        let (inn, in_slot_machine, in_row_counts) =
            compress_rows(n, graph.num_edges(), p, |v| dist.in_adj(v));
        let master = (0..n).map(|v| assignment.master(v).0).collect();
        let replica_mask = (0..n).map(|v| assignment.replica_mask(v)).collect();
        CompactDistGraph {
            num_machines: p,
            out,
            inn,
            out_slot_machine,
            in_slot_machine,
            master,
            replica_mask,
            out_row_counts,
            in_row_counts,
        }
    }

    /// Build from a replayable edge stream, without materializing a
    /// `Graph` or edge list. `stream` is called three times (degree
    /// count, out fill, in fill) and must yield the same edges in the
    /// same order each time — exactly what a
    /// [`hetgraph_core::ShardSet`] replay provides. Edge order must
    /// match the assignment's edge-machine lane.
    ///
    /// The transient fill buffers are one direction at a time (6 bytes
    /// per edge raw, freed before the other direction builds), so peak
    /// build memory stays well under a full `Graph + DistributedGraph`.
    ///
    /// # Errors
    /// Returns [`EngineError::AssignmentMismatch`] if the stream's edge
    /// count differs from the assignment's.
    pub fn from_edge_stream<I, F>(
        num_vertices: u32,
        assignment: &PartitionAssignment,
        mut stream: F,
    ) -> Result<Self, EngineError>
    where
        I: Iterator<Item = Edge>,
        F: FnMut() -> I,
    {
        let p = assignment.num_machines();
        let em = assignment.edge_machines();
        let n = num_vertices as usize;
        let mut out_deg = vec![0u32; n];
        let mut in_deg = vec![0u32; n];
        let mut count = 0usize;
        for e in stream() {
            out_deg[e.src as usize] += 1;
            in_deg[e.dst as usize] += 1;
            count += 1;
        }
        if count != em.len() {
            return Err(EngineError::AssignmentMismatch {
                assignment_edges: em.len(),
                graph_edges: count,
            });
        }
        let (out, out_slot_machine, out_row_counts) =
            fill_direction(num_vertices, &out_deg, em, stream(), true, p);
        drop(out_deg);
        let (inn, in_slot_machine, in_row_counts) =
            fill_direction(num_vertices, &in_deg, em, stream(), false, p);
        drop(in_deg);
        let master = (0..num_vertices).map(|v| assignment.master(v).0).collect();
        let replica_mask = (0..num_vertices)
            .map(|v| assignment.replica_mask(v))
            .collect();
        Ok(CompactDistGraph {
            num_machines: p,
            out,
            inn,
            out_slot_machine,
            in_slot_machine,
            master,
            replica_mask,
            out_row_counts,
            in_row_counts,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.out.num_vertices()
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Number of machines in the partition.
    #[inline]
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// The counts-and-degrees view vertex programs consume.
    #[inline]
    pub fn meta(&self) -> GraphMeta<'_> {
        meta_pair(&self.out, &self.inn)
    }

    /// Master machine of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> MachineId {
        MachineId(self.master[v as usize])
    }

    /// Replica bitmask of `v` (bit `m` set iff machine `m` holds a
    /// replica).
    #[inline]
    pub fn replica_mask(&self, v: VertexId) -> u64 {
        self.replica_mask[v as usize]
    }

    /// Out-adjacency of `v`: sorted neighbors decoded into `scratch`,
    /// returned alongside the aligned machine lane slice.
    #[inline]
    pub fn out_adj_into<'s>(
        &'s self,
        v: VertexId,
        scratch: &'s mut Vec<VertexId>,
    ) -> (&'s [VertexId], &'s [u16]) {
        self.out.decode_row_into(v, scratch);
        let (lo, hi) = self.out.edge_range(v);
        (&scratch[..], &self.out_slot_machine[lo..hi])
    }

    /// In-adjacency of `v` (see [`out_adj_into`](Self::out_adj_into)).
    #[inline]
    pub fn in_adj_into<'s>(
        &'s self,
        v: VertexId,
        scratch: &'s mut Vec<VertexId>,
    ) -> (&'s [VertexId], &'s [u16]) {
        self.inn.decode_row_into(v, scratch);
        let (lo, hi) = self.inn.edge_range(v);
        (&scratch[..], &self.in_slot_machine[lo..hi])
    }

    /// Per-vertex per-machine slot counts for the (out, in) directions,
    /// same layout and availability rule as
    /// [`DistributedGraph::machine_counts`]; precomputed at build time.
    #[inline]
    pub fn machine_counts(&self) -> Option<(&[u32], &[u32])> {
        match (&self.out_row_counts, &self.in_row_counts) {
            (Some(o), Some(i)) => Some((o, i)),
            _ => None,
        }
    }

    /// Resident footprint in bytes of every O(V)+O(E) structure this
    /// view keeps alive: varint data and offset indexes for both
    /// directions, the machine lanes, the replication structure, and the
    /// optional row-count tables. The scale benchmark divides this by
    /// the edge count for its RSS-per-edge gate.
    pub fn resident_bytes(&self) -> usize {
        self.out.resident_bytes()
            + self.inn.resident_bytes()
            + self.out_slot_machine.len() * 2
            + self.in_slot_machine.len() * 2
            + self.master.len() * 2
            + self.replica_mask.len() * 8
            + self.out_row_counts.as_ref().map_or(0, |c| c.len() * 4)
            + self.in_row_counts.as_ref().map_or(0, |c| c.len() * 4)
    }
}

/// Compress one direction's rows from a `(targets, machines)` slice
/// source: stable-sort the pairs per row, feed the sorted targets to the
/// varint builder, and lay the machines down in the same order.
fn compress_rows<'a>(
    n: u32,
    num_edges: usize,
    p: usize,
    row_of: impl Fn(VertexId) -> (&'a [VertexId], &'a [u16]),
) -> (CompactCsr, Vec<u16>, Option<Vec<u32>>) {
    let mut b = CompactCsrBuilder::new(n);
    let mut lane = Vec::with_capacity(num_edges);
    let mut counts = (p <= ROW_COUNTS_MAX_MACHINES).then(|| vec![0u32; n as usize * p]);
    let mut pairs: Vec<(VertexId, u16)> = Vec::new();
    let mut row: Vec<VertexId> = Vec::new();
    for v in 0..n {
        let (ts, ms) = row_of(v);
        pairs.clear();
        pairs.extend(ts.iter().copied().zip(ms.iter().copied()));
        pairs.sort_by_key(|&(t, _)| t);
        row.clear();
        row.extend(pairs.iter().map(|&(t, _)| t));
        b.push_row(&row);
        for &(_, m) in &pairs {
            lane.push(m);
            if let Some(c) = &mut counts {
                c[v as usize * p + m as usize] += 1;
            }
        }
    }
    (b.finish(), lane, counts)
}

/// One direction of the streaming build: replay the counting sort the
/// plain CSR construction uses into raw target/machine arrays, then
/// compress row by row. The raw arrays are freed on return.
fn fill_direction(
    n: u32,
    deg: &[u32],
    edge_machine: &[u16],
    edges: impl Iterator<Item = Edge>,
    by_src: bool,
    p: usize,
) -> (CompactCsr, Vec<u16>, Option<Vec<u32>>) {
    let mut offsets = Vec::with_capacity(deg.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in deg {
        acc += d as usize;
        offsets.push(acc);
    }
    let num_edges = acc;
    let mut targets = vec![0u32; num_edges];
    let mut lane_raw = vec![0u16; num_edges];
    let mut fill = vec![0u32; deg.len()];
    for (i, e) in edges.enumerate() {
        let (key, t) = if by_src {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        let k = key as usize;
        let slot = offsets[k] + fill[k] as usize;
        targets[slot] = t;
        lane_raw[slot] = edge_machine[i];
        fill[k] += 1;
    }
    drop(fill);
    compress_rows(n, num_edges, p, |v| {
        let (lo, hi) = (offsets[v as usize], offsets[v as usize + 1]);
        (&targets[lo..hi], &lane_raw[lo..hi])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{EdgeList, Graph};

    fn fixture() -> (Graph, PartitionAssignment) {
        // Includes a duplicate edge and an isolated vertex.
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(0, 4),
            Edge::new(0, 1),
            Edge::new(2, 0),
            Edge::new(4, 2),
            Edge::new(1, 0),
        ];
        let g = Graph::from_edge_list(EdgeList::from_edges(6, edges));
        let a = PartitionAssignment::from_edge_machines(&g, 3, vec![0, 1, 2, 0, 1, 2]);
        (g, a)
    }

    #[test]
    fn from_dist_matches_plain_view() {
        let (g, a) = fixture();
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let c = CompactDistGraph::from_dist(&dist);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.num_machines(), 3);
        let mut scratch = Vec::new();
        for v in g.vertices() {
            // Sorted (target, machine) multisets must agree per row.
            for dir in [true, false] {
                let (pt, pm) = if dir { dist.out_adj(v) } else { dist.in_adj(v) };
                let mut plain: Vec<_> = pt.iter().copied().zip(pm.iter().copied()).collect();
                plain.sort();
                let (ct, cm) = if dir {
                    c.out_adj_into(v, &mut scratch)
                } else {
                    c.in_adj_into(v, &mut scratch)
                };
                assert!(ct.windows(2).all(|w| w[0] <= w[1]), "sorted row");
                let mut compact: Vec<_> = ct.iter().copied().zip(cm.iter().copied()).collect();
                compact.sort();
                assert_eq!(plain, compact, "v={v} dir={dir}");
            }
            assert_eq!(c.master(v), a.master(v));
            assert_eq!(c.replica_mask(v), a.replica_mask(v));
        }
    }

    #[test]
    fn stream_build_equals_dist_build() {
        let (g, a) = fixture();
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let from_dist = CompactDistGraph::from_dist(&dist);
        let edges: Vec<Edge> = g.edges().to_vec();
        let from_stream =
            CompactDistGraph::from_edge_stream(g.num_vertices(), &a, || edges.iter().copied())
                .unwrap();
        assert_eq!(from_dist.out, from_stream.out);
        assert_eq!(from_dist.inn, from_stream.inn);
        assert_eq!(from_dist.out_slot_machine, from_stream.out_slot_machine);
        assert_eq!(from_dist.in_slot_machine, from_stream.in_slot_machine);
        assert_eq!(from_dist.master, from_stream.master);
        assert_eq!(from_dist.replica_mask, from_stream.replica_mask);
        assert_eq!(from_dist.out_row_counts, from_stream.out_row_counts);
        assert_eq!(from_dist.in_row_counts, from_stream.in_row_counts);
    }

    #[test]
    fn machine_counts_match_lanes() {
        let (g, a) = fixture();
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let c = CompactDistGraph::from_dist(&dist);
        let (out, inn) = c.machine_counts().expect("3 machines is under the cap");
        let p = 3usize;
        let mut scratch = Vec::new();
        for v in g.vertices() {
            for m in 0..p {
                let o = c.out_adj_into(v, &mut scratch).1.iter();
                let expect = o.filter(|&&s| s as usize == m).count();
                assert_eq!(out[v as usize * p + m] as usize, expect);
                let i = c.in_adj_into(v, &mut scratch).1.iter();
                let expect = i.filter(|&&s| s as usize == m).count();
                assert_eq!(inn[v as usize * p + m] as usize, expect);
            }
        }
    }

    #[test]
    fn stream_count_mismatch_is_typed_error() {
        let (g, a) = fixture();
        let short: Vec<Edge> = g.edges()[..3].to_vec();
        match CompactDistGraph::from_edge_stream(g.num_vertices(), &a, || short.iter().copied()) {
            Err(EngineError::AssignmentMismatch {
                assignment_edges,
                graph_edges,
            }) => {
                assert_eq!(assignment_edges, 6);
                assert_eq!(graph_edges, 3);
            }
            _ => panic!("expected AssignmentMismatch"),
        }
    }

    #[test]
    fn meta_exposes_degrees() {
        let (g, a) = fixture();
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let c = CompactDistGraph::from_dist(&dist);
        let m = c.meta();
        let gm = g.meta();
        assert_eq!(m.num_vertices(), gm.num_vertices());
        assert_eq!(m.num_edges(), gm.num_edges());
        for v in g.vertices() {
            assert_eq!(m.out_degree(v), gm.out_degree(v));
            assert_eq!(m.in_degree(v), gm.in_degree(v));
        }
    }

    #[test]
    fn resident_bytes_counts_every_lane() {
        let (g, a) = fixture();
        let dist = DistributedGraph::new(&g, &a).unwrap();
        let c = CompactDistGraph::from_dist(&dist);
        // At minimum: one varint byte per edge per direction, two lane
        // bytes per edge per direction, plus the per-vertex structure.
        let floor = g.num_edges() * (1 + 2) * 2 + g.num_vertices() as usize * 10;
        assert!(c.resident_bytes() >= floor);
    }
}
