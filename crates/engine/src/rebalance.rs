//! Online rebalancing: acting on the straggler signals mid-run.
//!
//! PR 5's observability layer attributes every superstep's barrier wait to
//! the machine that gated it; this module closes the loop. Between two
//! supersteps the kernel hands the step's signals (per-machine busy time,
//! work counts, imbalance) to a [`RebalancePolicy`]; the policy may answer
//! with a batch of edge migrations, which the kernel applies through
//! [`DistributedGraph::migrate_edges`] and charges as simulated
//! communication time (bytes over the bottleneck NIC, plus one barrier).
//!
//! **Determinism contract.** A policy sees only simulated quantities —
//! busy seconds, work counts, the assignment, the graph — all of which are
//! thread-count invariant, and the kernel invokes it from the serial
//! between-superstep section. A deterministic policy therefore yields
//! byte-identical rebalanced [`crate::SimReport`]s at any host thread
//! count, the same contract the rest of the kernel honors.
//!
//! **Amortization rule** (the greedy policy): migration is worth it only
//! if the projected per-step barrier savings, summed over an assumed
//! horizon of future supersteps, exceed the one-time simulated migration
//! cost. Both sides are computed from the same models the kernel charges
//! with, so the policy cannot talk itself into a move the report will not
//! reward.

use hetgraph_cluster::{MachineSpec, NetworkModel, WorkCounts, MIGRATION_BYTES_PER_EDGE};
use hetgraph_core::MachineId;

use crate::distributed::DistributedGraph;

/// One superstep's rebalancing signals, borrowed from the kernel's serial
/// timing section. Everything here is simulated (thread-count invariant).
pub struct StepSignals<'s> {
    /// Superstep index (0-based).
    pub step: usize,
    /// Active vertices this superstep.
    pub active: usize,
    /// Per-machine busy seconds this superstep.
    pub busy_s: &'s [f64],
    /// Per-machine work counts this superstep.
    pub step_work: &'s [WorkCounts],
    /// The step's compute wall-clock (max busy — what the barrier waits
    /// for).
    pub step_compute_s: f64,
    /// The step's communication time.
    pub step_comm_s: f64,
}

impl StepSignals<'_> {
    /// Barrier imbalance: `max busy / mean busy` (1.0 = perfectly
    /// balanced; the same definition the trace gauges use).
    pub fn imbalance(&self) -> f64 {
        let mean = self.busy_s.iter().sum::<f64>() / self.busy_s.len() as f64;
        if mean > 0.0 {
            self.step_compute_s / mean
        } else {
            1.0
        }
    }

    /// The machine gating the barrier (lowest index on ties).
    pub fn straggler(&self) -> usize {
        self.busy_s
            .iter()
            .position(|&b| b == self.step_compute_s)
            .unwrap_or(0)
    }
}

/// A migration the kernel applied on a policy's plan, with its simulated
/// price.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationEvent {
    /// Superstep after which the migration ran.
    pub step: usize,
    /// Edges actually moved.
    pub edges_moved: usize,
    /// Total migration payload in bytes.
    pub bytes: f64,
    /// Simulated wall-clock charged for the migration.
    pub cost_s: f64,
    /// Moved-edge counts per `(src, dst)` machine pair.
    pub moves_per_pair: Vec<(MachineId, MachineId, usize)>,
}

/// A mid-run placement policy: watches each superstep's signals and
/// proposes edge migrations.
pub trait RebalancePolicy {
    /// Short name for reports and traces (e.g. `"greedy"`).
    fn name(&self) -> &str;

    /// Called by the kernel between supersteps (serial section). Returns
    /// the edges to move as `(edge index, destination machine)` pairs;
    /// empty means leave the placement alone. Implementations must be
    /// deterministic functions of their own state and the arguments.
    fn plan(
        &mut self,
        signals: &StepSignals<'_>,
        dist: &DistributedGraph<'_>,
        machines: &[MachineSpec],
        network: &NetworkModel,
    ) -> Vec<(usize, u16)>;

    /// Called by the kernel after it applied a non-empty plan, with the
    /// realized migration and its charged cost.
    fn notify(&mut self, event: MigrationEvent) {
        let _ = event;
    }
}

/// The greedy straggler-relief policy.
///
/// Triggers when a superstep's imbalance crosses a threshold (and a
/// cooldown since the last migration has elapsed), then moves edges from
/// the straggler to the least-busy machine:
///
/// 1. **Batch size** comes from the measured per-edge cost rates: moving
///    `e` edges lowers the straggler by `e·r_s` and raises the recipient
///    by `e·r_t`, so `e = gap / (r_s + r_t)` closes the gap, capped by
///    `max_batch_edges`.
/// 2. **Candidates** are the straggler's edges bucketed by how cheap they
///    are to re-home: endpoints already replicated on the recipient first
///    (no new mirrors), then hub edges (endpoints above the degree
///    threshold — their vertices are replicated widely anyway), then the
///    rest; edge order within a bucket. Deterministic, no sorting.
/// 3. **Amortization**: the projected compute saving per step, times the
///    horizon, must exceed the simulated migration cost (same byte/NIC
///    model the kernel charges), else the plan is dropped.
pub struct GreedyRebalance {
    min_imbalance: f64,
    cooldown_steps: usize,
    horizon_steps: usize,
    max_batch_edges: usize,
    last_migration_step: Option<usize>,
    events: Vec<MigrationEvent>,
}

impl Default for GreedyRebalance {
    fn default() -> Self {
        GreedyRebalance {
            min_imbalance: 1.05,
            cooldown_steps: 2,
            horizon_steps: 6,
            // Large enough to close a whole-machine-sized gap in one
            // batch on the headline fixtures; the amortization rule, not
            // this cap, is what keeps batches honest.
            max_batch_edges: 1 << 22,
            last_migration_step: None,
            events: Vec::new(),
        }
    }
}

impl GreedyRebalance {
    /// Policy with the default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Minimum step imbalance (`max busy / mean busy`) that triggers
    /// planning.
    pub fn with_min_imbalance(mut self, min_imbalance: f64) -> Self {
        assert!(min_imbalance >= 1.0, "imbalance is >= 1 by definition");
        self.min_imbalance = min_imbalance;
        self
    }

    /// Minimum supersteps between migrations (lets the signals settle).
    pub fn with_cooldown(mut self, steps: usize) -> Self {
        self.cooldown_steps = steps;
        self
    }

    /// Supersteps of projected savings the migration cost must amortize
    /// over.
    pub fn with_horizon(mut self, steps: usize) -> Self {
        assert!(steps > 0, "horizon must be at least one step");
        self.horizon_steps = steps;
        self
    }

    /// Cap on edges moved per migration.
    pub fn with_max_batch(mut self, edges: usize) -> Self {
        assert!(edges > 0, "batch cap must be positive");
        self.max_batch_edges = edges;
        self
    }

    /// Every migration the kernel applied on this policy's plans.
    pub fn events(&self) -> &[MigrationEvent] {
        &self.events
    }
}

impl RebalancePolicy for GreedyRebalance {
    fn name(&self) -> &str {
        "greedy"
    }

    fn plan(
        &mut self,
        signals: &StepSignals<'_>,
        dist: &DistributedGraph<'_>,
        machines: &[MachineSpec],
        network: &NetworkModel,
    ) -> Vec<(usize, u16)> {
        if signals.busy_s.len() < 2 || signals.imbalance() < self.min_imbalance {
            return Vec::new();
        }
        if let Some(last) = self.last_migration_step {
            if signals.step < last + self.cooldown_steps {
                return Vec::new();
            }
        }
        let straggler = signals.straggler();
        // Recipient: the least-busy machine (lowest index on ties).
        let recipient = signals
            .busy_s
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("busy times are finite"))
            .map(|(i, _)| i)
            .unwrap_or(straggler);
        if recipient == straggler {
            return Vec::new();
        }

        // Measured per-assigned-edge cost on both machines, from this
        // step's busy time over the edges each machine currently owns
        // (not the step's edge-unit tally, which counts gather+scatter
        // visits and would size batches in the wrong currency). If the
        // straggler owns no edges or did no edge work, the signal is not
        // a placement problem — skip.
        let graph = dist.graph();
        let assignment = dist.assignment();
        let edges_s = assignment.edges_per_machine()[straggler] as f64;
        if edges_s <= 0.0 || signals.step_work[straggler].edge_units <= 0.0 {
            return Vec::new();
        }
        let c_s = signals.busy_s[straggler] / edges_s;
        let edges_t = assignment.edges_per_machine()[recipient] as f64;
        let c_t = if edges_t > 0.0 {
            signals.busy_s[recipient] / edges_t
        } else {
            // Idle recipient: assume edges cost it what they cost the
            // straggler per-edge (pessimistic for the plan, safe).
            c_s
        };
        // Moving e edges closes the gap by e·(c_s + c_t); this batch
        // equalizes the pair under the linear model.
        let gap = signals.busy_s[straggler] - signals.busy_s[recipient];
        let batch = ((gap / (c_s + c_t)) as usize)
            .min(self.max_batch_edges)
            .min(edges_s as usize);
        if batch == 0 {
            return Vec::new();
        }

        // Candidate selection: one pass over the edge list, six priority
        // buckets — (endpoints replicated on the recipient: 2, 1, 0) ×
        // (hub edge or not). Hub = max endpoint degree above 4× average.
        let hub_degree = (graph.avg_degree() * 4.0).max(8.0) as usize;
        let recipient_bit = 1u64 << recipient;
        let mut buckets: [Vec<usize>; 6] = Default::default();
        for (e, edge) in graph.edges().iter().enumerate() {
            if assignment.edge_machine(e).index() != straggler {
                continue;
            }
            let on_recipient = usize::from(assignment.replica_mask(edge.src) & recipient_bit != 0)
                + usize::from(assignment.replica_mask(edge.dst) & recipient_bit != 0);
            let hub = graph.degree(edge.src).max(graph.degree(edge.dst)) >= hub_degree;
            let bucket = (2 - on_recipient) * 2 + usize::from(!hub);
            buckets[bucket].push(e);
        }
        let mut plan: Vec<(usize, u16)> = Vec::with_capacity(batch);
        'fill: for bucket in &buckets {
            for &e in bucket {
                if plan.len() == batch {
                    break 'fill;
                }
                plan.push((e, recipient as u16));
            }
        }
        if plan.is_empty() {
            return Vec::new();
        }

        // Amortization: projected compute saving per step × horizon must
        // beat the one-time migration cost.
        let moved = plan.len() as f64;
        let projected_s = signals.busy_s[straggler] - moved * c_s;
        let projected_t = signals.busy_s[recipient] + moved * c_t;
        let projected_compute = signals
            .busy_s
            .iter()
            .enumerate()
            .map(|(i, &b)| match i {
                i if i == straggler => projected_s,
                i if i == recipient => projected_t,
                _ => b,
            })
            .fold(0.0f64, f64::max);
        let saving_per_step = signals.step_compute_s - projected_compute;
        let bytes = moved * MIGRATION_BYTES_PER_EDGE;
        let cost = network.migration_transfer_s(&machines[straggler], &machines[recipient], bytes)
            + network.barrier_latency_s;
        if saving_per_step * self.horizon_steps as f64 <= cost {
            return Vec::new();
        }
        plan
    }

    fn notify(&mut self, event: MigrationEvent) {
        self.last_migration_step = Some(event.step);
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::catalog;
    use hetgraph_core::{Edge, EdgeList, Graph};
    use hetgraph_partition::PartitionAssignment;

    fn signals<'s>(busy: &'s [f64], work: &'s [WorkCounts], step: usize) -> StepSignals<'s> {
        StepSignals {
            step,
            active: 100,
            busy_s: busy,
            step_work: work,
            step_compute_s: busy.iter().copied().fold(0.0, f64::max),
            step_comm_s: 0.0,
        }
    }

    fn work(edges: f64) -> WorkCounts {
        WorkCounts {
            edge_units: edges,
            vertex_units: 0.0,
        }
    }

    fn skewed_setup() -> (Graph, PartitionAssignment) {
        let g = Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(0, 3),
                Edge::new(0, 4),
            ],
        ));
        // Everything on machine 0; machine 1 idle.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 0]);
        (g, a)
    }

    #[test]
    fn imbalance_and_straggler_read_the_signals() {
        let busy = [1.0, 3.0];
        let w = [work(0.0), work(0.0)];
        let s = signals(&busy, &w, 0);
        assert!((s.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(s.straggler(), 1);
    }

    #[test]
    fn skewed_step_plans_moves_to_the_idle_machine() {
        let (g, a) = skewed_setup();
        let dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let machines = vec![catalog::xeon_s(), catalog::xeon_l()];
        let mut p = GreedyRebalance::new();
        let busy = [2.0, 0.5];
        let w = [work(4.0), work(0.0)];
        let s = signals(&busy, &w, 0);
        let plan = p.plan(&s, &dist, &machines, &NetworkModel::default());
        assert!(!plan.is_empty(), "imbalanced step must produce a plan");
        for &(e, to) in &plan {
            assert_eq!(a.edge_machine(e).index(), 0, "moves come off the straggler");
            assert_eq!(to, 1, "moves land on the idle machine");
        }
    }

    #[test]
    fn balanced_step_produces_no_plan() {
        let (g, a) = skewed_setup();
        let dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let machines = vec![catalog::xeon_s(), catalog::xeon_l()];
        let mut p = GreedyRebalance::new();
        let busy = [1.0, 1.0];
        let w = [work(2.0), work(2.0)];
        let s = signals(&busy, &w, 0);
        assert!(p
            .plan(&s, &dist, &machines, &NetworkModel::default())
            .is_empty());
    }

    #[test]
    fn cooldown_suppresses_back_to_back_plans() {
        let (g, a) = skewed_setup();
        let dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let machines = vec![catalog::xeon_s(), catalog::xeon_l()];
        let mut p = GreedyRebalance::new().with_cooldown(5);
        p.notify(MigrationEvent {
            step: 3,
            edges_moved: 1,
            bytes: MIGRATION_BYTES_PER_EDGE,
            cost_s: 1e-3,
            moves_per_pair: vec![],
        });
        let busy = [2.0, 0.5];
        let w = [work(4.0), work(0.0)];
        let s = signals(&busy, &w, 4);
        assert!(
            p.plan(&s, &dist, &machines, &NetworkModel::default())
                .is_empty(),
            "step 4 is inside the cooldown window after a step-3 migration"
        );
        let s = signals(&busy, &w, 8);
        assert!(!p
            .plan(&s, &dist, &machines, &NetworkModel::default())
            .is_empty());
    }

    #[test]
    fn notify_tracks_cooldown_and_events() {
        let mut p = GreedyRebalance::new().with_cooldown(3);
        p.notify(MigrationEvent {
            step: 4,
            edges_moved: 10,
            bytes: 320.0,
            cost_s: 1e-3,
            moves_per_pair: vec![],
        });
        assert_eq!(p.events().len(), 1);
        assert_eq!(p.last_migration_step, Some(4));
    }
}
