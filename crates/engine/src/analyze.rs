//! Offline straggler-attribution analytics over exported run artifacts.
//!
//! [`TraceAnalysis`] ingests the JSON-lines trace that `obs::to_jsonl`
//! writes (the `simulate --trace-out run.jsonl` artifact) and rebuilds the
//! simulated run from its sim-domain events alone: superstep windows from
//! the `active_vertices` counters, per-machine phase time from the
//! `gather`/`apply`/`scatter` spans, barrier slack from the
//! `barrier_wait` spans, and the migration timeline from the rebalance
//! counters. The point is that "why was machine 3 the bottleneck" gets
//! answered from artifacts on disk — no re-run, no eyeballing Chrome
//! traces.
//!
//! The reconstruction is *exact* where it matters: the per-step straggler
//! comes from the `straggler_machine` gauge, which the kernel computes
//! with the same rule as [`crate::report::StepRecord::straggler`]
//! (lowest-index machine whose busy time equals the step maximum), so
//! [`TraceAnalysis::straggler_histogram`] reproduces
//! [`crate::report::SimReport::straggler_histogram`] exactly. Phase spans
//! are proportional attributions (they sum to each machine's busy time),
//! so the phase breakdown is faithful to the trace, while barrier-wait
//! durations are the kernel's exact slack values.

use std::collections::BTreeMap;

use hetgraph_core::metrics::MetricsSnapshot;

/// One reconstructed superstep.
#[derive(Debug, Clone)]
pub struct StepSummary {
    /// Superstep index (position in the trace).
    pub step: usize,
    /// Simulated start time, seconds.
    pub start_s: f64,
    /// Active vertices entering the step.
    pub active: u64,
    /// `max busy / mean busy` (the kernel's imbalance gauge).
    pub imbalance: f64,
    /// Straggler machine (lowest index whose busy equals the max).
    pub straggler: usize,
    /// Per-machine busy seconds (sum of the machine's phase spans).
    pub busy_s: Vec<f64>,
    /// Per-machine barrier slack seconds (exact kernel values).
    pub barrier_wait_s: Vec<f64>,
    /// Communication barrier seconds.
    pub comm_s: f64,
}

impl StepSummary {
    /// Machine-seconds idled at this step's barrier, summed over
    /// machines — the ranking key for "worst straggler superstep".
    pub fn barrier_waste_s(&self) -> f64 {
        self.barrier_wait_s.iter().sum()
    }
}

/// One machine's totals across the run.
#[derive(Debug, Clone, Default)]
pub struct MachineSummary {
    /// Total busy seconds.
    pub busy_s: f64,
    /// Gather-phase seconds (proportional attribution).
    pub gather_s: f64,
    /// Apply-phase seconds.
    pub apply_s: f64,
    /// Scatter-phase seconds.
    pub scatter_s: f64,
    /// Total barrier-wait seconds (exact).
    pub barrier_wait_s: f64,
    /// Supersteps this machine gated the barrier.
    pub straggler_steps: u64,
}

/// One applied migration batch, with the imbalance it was reacting to
/// and the imbalance of the following step (its observed effect).
#[derive(Debug, Clone)]
pub struct MigrationSummary {
    /// Superstep after which the batch was applied.
    pub step: usize,
    /// Simulated time of the migration barrier, seconds.
    pub at_s: f64,
    /// Edges migrated.
    pub edges: u64,
    /// Payload bytes.
    pub bytes: f64,
    /// Charged migration cost, seconds.
    pub cost_s: f64,
    /// Imbalance gauge of the step that triggered the batch.
    pub imbalance_before: f64,
    /// Imbalance gauge of the next step (`None` when the run ended).
    pub imbalance_after: Option<f64>,
}

/// Critical-path phase totals: per step, the straggler machine's phase
/// spans plus the cluster-wide communication barrier.
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// Gather seconds on the per-step straggler.
    pub gather_s: f64,
    /// Apply seconds on the per-step straggler.
    pub apply_s: f64,
    /// Scatter seconds on the per-step straggler.
    pub scatter_s: f64,
    /// Communication barrier seconds.
    pub comm_s: f64,
    /// Migration barrier seconds.
    pub migration_s: f64,
}

impl PhaseBreakdown {
    /// Sum of all phases — the reconstructed critical path length.
    pub fn total_s(&self) -> f64 {
        self.gather_s + self.apply_s + self.scatter_s + self.comm_s + self.migration_s
    }
}

/// A run reconstructed from its sim-domain trace events.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Machine count (the track cluster-wide events use).
    pub machines: usize,
    /// Reconstructed supersteps, in order.
    pub steps: Vec<StepSummary>,
    /// Per-machine totals, indexed by machine.
    pub per_machine: Vec<MachineSummary>,
    /// Applied migration batches, in order.
    pub migrations: Vec<MigrationSummary>,
    /// Critical-path phase totals.
    pub critical_path: PhaseBreakdown,
}

/// Minimal decoded trace event (only what the analyzer consumes).
struct Event {
    name: String,
    kind: String,
    track: usize,
    ts_s: f64,
    dur_s: f64,
    value: f64,
}

fn parse_events(jsonl: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (lineno, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
        let field_str = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(serde::Value::as_str)
                .ok_or_else(|| format!("trace line {}: missing {key:?}", lineno + 1))?
                .to_string())
        };
        let field_f64 = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(serde::Value::as_f64)
                .ok_or_else(|| format!("trace line {}: missing {key:?}", lineno + 1))
        };
        // Wall-domain events describe the host, not the simulated
        // cluster; the analyzer reads only the sim timeline.
        if field_str("domain")? != "Sim" {
            continue;
        }
        events.push(Event {
            name: field_str("name")?,
            kind: field_str("kind")?,
            track: field_f64("track")? as usize,
            ts_s: field_f64("ts_us")? / 1e6,
            dur_s: field_f64("dur_us")? / 1e6,
            value: field_f64("value")?,
        });
    }
    Ok(events)
}

impl TraceAnalysis {
    /// Reconstruct a run from `obs::to_jsonl` output. Fails on malformed
    /// JSON or a trace with no supersteps (no `active_vertices` samples —
    /// e.g. a Chrome-format file passed by mistake).
    pub fn from_jsonl(jsonl: &str) -> Result<TraceAnalysis, String> {
        let events = parse_events(jsonl)?;

        // Superstep windows: one `active_vertices` counter marks each
        // step's start; cluster-wide events carry the machine count as
        // their track.
        let starts: Vec<(f64, u64)> = events
            .iter()
            .filter(|e| e.kind == "Counter" && e.name == "active_vertices")
            .map(|e| (e.ts_s, e.value as u64))
            .collect();
        if starts.is_empty() {
            return Err(
                "trace has no sim-domain active_vertices samples (not a superstep trace \
                 in JSONL format?)"
                    .to_string(),
            );
        }
        let machines = events
            .iter()
            .find(|e| e.kind == "Counter" && e.name == "active_vertices")
            .map(|e| e.track)
            .unwrap();
        // Index of the step whose window contains ts: last start <= ts.
        // (Migration events land between a step's end and the next
        // step's start, so they attribute to the step that planned them.)
        let step_of =
            |ts: f64| -> usize { starts.partition_point(|&(s, _)| s <= ts).saturating_sub(1) };

        let mut steps: Vec<StepSummary> = starts
            .iter()
            .enumerate()
            .map(|(i, &(start_s, active))| StepSummary {
                step: i,
                start_s,
                active,
                imbalance: 1.0,
                straggler: 0,
                busy_s: vec![0.0; machines],
                barrier_wait_s: vec![0.0; machines],
                comm_s: 0.0,
            })
            .collect();
        let mut per_machine = vec![MachineSummary::default(); machines];
        // (step, machine) -> straggler phase seconds, filled after the
        // gauges identify each step's straggler.
        let mut phase_by_step: Vec<BTreeMap<&str, f64>> =
            vec![BTreeMap::new(); steps.len() * machines];
        let mut comm_by_step = vec![0.0f64; steps.len()];
        let mut migration_cost_by_step = vec![0.0f64; steps.len()];
        let mut migration_edges: Vec<(usize, f64, u64)> = Vec::new();
        let mut migration_bytes: BTreeMap<usize, f64> = BTreeMap::new();

        for e in &events {
            let step = step_of(e.ts_s);
            match (e.kind.as_str(), e.name.as_str()) {
                ("Span", "gather") | ("Span", "apply") | ("Span", "scatter")
                    if e.track < machines =>
                {
                    let m = &mut per_machine[e.track];
                    match e.name.as_str() {
                        "gather" => m.gather_s += e.dur_s,
                        "apply" => m.apply_s += e.dur_s,
                        _ => m.scatter_s += e.dur_s,
                    }
                    m.busy_s += e.dur_s;
                    steps[step].busy_s[e.track] += e.dur_s;
                    *phase_by_step[step * machines + e.track]
                        .entry(match e.name.as_str() {
                            "gather" => "gather",
                            "apply" => "apply",
                            _ => "scatter",
                        })
                        .or_insert(0.0) += e.dur_s;
                }
                ("Span", "barrier_wait") if e.track < machines => {
                    per_machine[e.track].barrier_wait_s += e.dur_s;
                    steps[step].barrier_wait_s[e.track] += e.dur_s;
                }
                ("Span", "comm_barrier") => comm_by_step[step] += e.dur_s,
                ("Span", "migration") => {
                    // One span per involved lane, all with the batch's
                    // cost; keep the max so the batch is counted once.
                    migration_cost_by_step[step] = migration_cost_by_step[step].max(e.dur_s);
                }
                ("Gauge", "imbalance") => steps[step].imbalance = e.value,
                ("Gauge", "straggler_machine") => steps[step].straggler = e.value as usize,
                ("Counter", "migrated_edges") => {
                    migration_edges.push((step, e.ts_s, e.value as u64));
                }
                ("Counter", "migration_bytes") => {
                    *migration_bytes.entry(step).or_insert(0.0) += e.value;
                }
                _ => {}
            }
        }

        for s in &mut steps {
            s.comm_s = comm_by_step[s.step];
            per_machine[s.straggler.min(machines - 1)].straggler_steps += 1;
        }

        let mut critical_path = PhaseBreakdown::default();
        for s in &steps {
            let phases = &phase_by_step[s.step * machines + s.straggler.min(machines - 1)];
            critical_path.gather_s += phases.get("gather").copied().unwrap_or(0.0);
            critical_path.apply_s += phases.get("apply").copied().unwrap_or(0.0);
            critical_path.scatter_s += phases.get("scatter").copied().unwrap_or(0.0);
            critical_path.comm_s += s.comm_s;
            critical_path.migration_s += migration_cost_by_step[s.step];
        }

        let migrations = migration_edges
            .into_iter()
            .map(|(step, at_s, edges)| MigrationSummary {
                step,
                at_s,
                edges,
                bytes: migration_bytes.get(&step).copied().unwrap_or(0.0),
                cost_s: migration_cost_by_step[step],
                imbalance_before: steps[step].imbalance,
                imbalance_after: steps.get(step + 1).map(|s| s.imbalance),
            })
            .collect();

        Ok(TraceAnalysis {
            machines,
            steps,
            per_machine,
            migrations,
            critical_path,
        })
    }

    /// How many supersteps each machine gated the barrier. Derived from
    /// the kernel's `straggler_machine` gauge, whose rule is identical to
    /// [`crate::report::StepRecord::straggler`], so this reproduces
    /// [`crate::report::SimReport::straggler_histogram`] exactly.
    pub fn straggler_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.machines];
        for s in &self.steps {
            if s.straggler < hist.len() {
                hist[s.straggler] += 1;
            }
        }
        hist
    }

    /// Indices of the `k` supersteps that wasted the most machine-seconds
    /// at the barrier, worst first (ties broken by step order).
    pub fn top_straggler_steps(&self, k: usize) -> Vec<&StepSummary> {
        let mut ranked: Vec<&StepSummary> = self.steps.iter().collect();
        ranked.sort_by(|a, b| {
            b.barrier_waste_s()
                .partial_cmp(&a.barrier_waste_s())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.step.cmp(&b.step))
        });
        ranked.truncate(k);
        ranked
    }

    /// Reconstructed simulated makespan (end of the last step's window).
    pub fn makespan_s(&self) -> f64 {
        self.steps
            .last()
            .map(|s| {
                let compute = s.busy_s.iter().copied().fold(0.0f64, f64::max);
                s.start_s + compute + s.comm_s
            })
            .unwrap_or(0.0)
    }

    /// Render the human-readable report: per-machine barrier-wait table,
    /// top-`k` straggler supersteps, critical-path phase breakdown, and
    /// the migration-effectiveness timeline, followed by a summary of the
    /// optional metrics snapshot.
    pub fn render(&self, top_k: usize, metrics: Option<&MetricsSnapshot>) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run: {} supersteps on {} machines, sim makespan {:.6} s\n",
            self.steps.len(),
            self.machines,
            self.makespan_s(),
        ));

        out.push_str("\nper-machine barrier wait\n");
        out.push_str(
            "  machine      busy_s    gather_s     apply_s   scatter_s  barrier_wait_s  straggler_steps\n",
        );
        for (i, m) in self.per_machine.iter().enumerate() {
            out.push_str(&format!(
                "  m{:<7} {:>10.6}  {:>10.6}  {:>10.6}  {:>10.6}  {:>14.6}  {:>15}\n",
                i,
                m.busy_s,
                m.gather_s,
                m.apply_s,
                m.scatter_s,
                m.barrier_wait_s,
                m.straggler_steps,
            ));
        }

        out.push_str(&format!(
            "\ntop {} straggler supersteps (by machine-seconds idled at the barrier)\n",
            top_k.min(self.steps.len())
        ));
        for s in self.top_straggler_steps(top_k) {
            out.push_str(&format!(
                "  step {:>4}: straggler m{}, imbalance {:.4}, active {}, barrier waste {:.6} s\n",
                s.step,
                s.straggler,
                s.imbalance,
                s.active,
                s.barrier_waste_s(),
            ));
        }

        let cp = &self.critical_path;
        let total = cp.total_s();
        let pct = |x: f64| if total > 0.0 { 100.0 * x / total } else { 0.0 };
        out.push_str(&format!(
            "\ncritical path (straggler machine per step): {total:.6} s\n  gather {:.1}%  \
             apply {:.1}%  scatter {:.1}%  comm {:.1}%  migration {:.1}%\n",
            pct(cp.gather_s),
            pct(cp.apply_s),
            pct(cp.scatter_s),
            pct(cp.comm_s),
            pct(cp.migration_s),
        ));

        out.push_str("\nmigration timeline\n");
        if self.migrations.is_empty() {
            out.push_str("  (no migrations recorded)\n");
        } else {
            for m in &self.migrations {
                let after = m
                    .imbalance_after
                    .map(|x| format!("{x:.4}"))
                    .unwrap_or_else(|| "end".to_string());
                out.push_str(&format!(
                    "  t={:.6} s (after step {}): {} edges, {:.0} bytes, cost {:.6} s, \
                     imbalance {:.4} -> {}\n",
                    m.at_s, m.step, m.edges, m.bytes, m.cost_s, m.imbalance_before, after,
                ));
            }
        }

        if let Some(snap) = metrics {
            out.push_str("\nmetrics snapshot\n");
            for c in &snap.counters {
                out.push_str(&format!("  {} = {}\n", c.name, c.value));
            }
            for g in &snap.gauges {
                out.push_str(&format!("  {} = {:.6}\n", g.name, g.value));
            }
            for h in &snap.histograms {
                let stats = match (h.mean(), h.quantile(0.5), h.quantile(0.99)) {
                    (Some(mean), Some(p50), Some(p99)) => {
                        format!("mean ~{mean:.6}, p50 <= {p50:.6}, p99 <= {p99:.6}")
                    }
                    _ => "empty".to_string(),
                };
                out.push_str(&format!("  {} : count {}, {stats}\n", h.name, h.count()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::obs::{to_jsonl, TraceEvent};

    fn synthetic_trace() -> String {
        // Two machines, two supersteps; machine 1 is the straggler of
        // step 0, machine 0 of step 1; one migration between them.
        let mut events = vec![
            // step 0 at t=0: busy = [1.0, 2.0]
            TraceEvent::sim_counter("active_vertices", 2, 0.0, 100.0),
            TraceEvent::sim_gauge("imbalance", 2, 0.0, 2.0 / 1.5),
            TraceEvent::sim_gauge("straggler_machine", 2, 0.0, 1.0),
            TraceEvent::sim_span("gather", "superstep", 0, 0.0, 0.75),
            TraceEvent::sim_span("scatter", "superstep", 0, 0.75, 0.25),
            TraceEvent::sim_span("gather", "superstep", 1, 0.0, 1.5),
            TraceEvent::sim_span("apply", "superstep", 1, 1.5, 0.5),
            TraceEvent::sim_span("barrier_wait", "superstep", 0, 1.0, 1.0),
            TraceEvent::sim_span("comm_barrier", "superstep", 2, 2.0, 0.5),
        ];
        // Migration after step 0: t = 2.5, cost 0.25.
        events.push(TraceEvent::sim_span("migration", "rebalance", 0, 2.5, 0.25));
        events.push(TraceEvent::sim_span("migration", "rebalance", 1, 2.5, 0.25));
        events.push(TraceEvent::sim_counter("migrated_edges", 2, 2.5, 640.0));
        events.push(TraceEvent::sim_counter("migration_bytes", 2, 2.5, 1024.0));
        // step 1 at t=2.75: busy = [2.0, 1.0]
        events.extend([
            TraceEvent::sim_counter("active_vertices", 2, 2.75, 40.0),
            TraceEvent::sim_gauge("imbalance", 2, 2.75, 2.0 / 1.5),
            TraceEvent::sim_gauge("straggler_machine", 2, 2.75, 0.0),
            TraceEvent::sim_span("gather", "superstep", 0, 2.75, 2.0),
            TraceEvent::sim_span("gather", "superstep", 1, 2.75, 1.0),
            TraceEvent::sim_span("barrier_wait", "superstep", 1, 3.75, 1.0),
        ]);
        // A wall-domain event the analyzer must ignore.
        events.push(TraceEvent::wall_span("gather_merge", "host", 0, 10.0, 5.0));
        to_jsonl(&events)
    }

    #[test]
    fn reconstructs_steps_machines_and_stragglers() {
        let a = TraceAnalysis::from_jsonl(&synthetic_trace()).unwrap();
        assert_eq!(a.machines, 2);
        assert_eq!(a.steps.len(), 2);
        assert_eq!(a.straggler_histogram(), vec![1, 1]);
        assert_eq!(a.steps[0].active, 100);
        assert_eq!(a.steps[0].straggler, 1);
        assert_eq!(a.steps[1].straggler, 0);
        assert!((a.steps[0].busy_s[0] - 1.0).abs() < 1e-9);
        assert!((a.steps[0].busy_s[1] - 2.0).abs() < 1e-9);
        assert!((a.per_machine[0].barrier_wait_s - 1.0).abs() < 1e-9);
        assert!((a.per_machine[1].barrier_wait_s - 1.0).abs() < 1e-9);
        assert_eq!(a.per_machine[0].straggler_steps, 1);
        assert_eq!(a.per_machine[1].straggler_steps, 1);
        // makespan: step 1 starts at 2.75, compute 2.0, no comm.
        assert!((a.makespan_s() - 4.75).abs() < 1e-9);
    }

    #[test]
    fn critical_path_follows_the_straggler() {
        let a = TraceAnalysis::from_jsonl(&synthetic_trace()).unwrap();
        let cp = &a.critical_path;
        // Step 0 straggler is m1 (gather 1.5, apply 0.5); step 1
        // straggler is m0 (gather 2.0). Comm 0.5, migration 0.25.
        assert!((cp.gather_s - 3.5).abs() < 1e-9);
        assert!((cp.apply_s - 0.5).abs() < 1e-9);
        assert!((cp.scatter_s - 0.0).abs() < 1e-9);
        assert!((cp.comm_s - 0.5).abs() < 1e-9);
        assert!((cp.migration_s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn migration_timeline_links_imbalance_before_and_after() {
        let a = TraceAnalysis::from_jsonl(&synthetic_trace()).unwrap();
        assert_eq!(a.migrations.len(), 1);
        let m = &a.migrations[0];
        assert_eq!(m.step, 0);
        assert_eq!(m.edges, 640);
        assert!((m.bytes - 1024.0).abs() < 1e-9);
        assert!((m.cost_s - 0.25).abs() < 1e-9);
        assert!(m.imbalance_after.is_some());
    }

    #[test]
    fn top_steps_rank_by_barrier_waste() {
        let a = TraceAnalysis::from_jsonl(&synthetic_trace()).unwrap();
        let top = a.top_straggler_steps(1);
        assert_eq!(top.len(), 1);
        // Both steps waste 1.0 machine-seconds; the tie goes to step 0.
        assert_eq!(top[0].step, 0);
        // Rendering mentions every section and never panics.
        let text = a.render(5, None);
        assert!(text.contains("per-machine barrier wait"));
        assert!(text.contains("critical path"));
        assert!(text.contains("migration timeline"));
    }

    #[test]
    fn rejects_traces_without_supersteps() {
        assert!(TraceAnalysis::from_jsonl("").is_err());
        let only_wall = to_jsonl(&[TraceEvent::wall_span("x", "host", 0, 0.0, 1.0)]);
        assert!(TraceAnalysis::from_jsonl(&only_wall).is_err());
        assert!(TraceAnalysis::from_jsonl("not json\n").is_err());
    }
}
