//! The Gather-Apply-Scatter vertex-program abstraction.
//!
//! Semantics are Jacobi-style (synchronous): every superstep, each active
//! vertex gathers over its neighbors' *previous-step* data, applies a pure
//! update, and scatters activation signals for the next superstep. This is
//! PowerGraph's sync engine; determinism is exact, which the reproduction
//! harness depends on.

use hetgraph_cluster::AppProfile;
use hetgraph_core::{GraphMeta, VertexId};

/// Which adjacency direction a phase iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// In-edges (neighbors pointing at the vertex).
    In,
    /// Out-edges.
    Out,
    /// Both directions.
    Both,
    /// No iteration at all (skip the phase).
    None,
}

/// How the initial active set is formed.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ActiveInit {
    /// Every vertex starts active (PageRank, CC, Coloring, TC).
    All,
    /// Only the listed seed vertices start active (SSSP).
    Seeds(Vec<VertexId>),
}

/// A GAS vertex program.
///
/// All methods must be pure functions of their arguments (no interior
/// state), which makes execution deterministic and lets the engine
/// re-order work freely within a superstep. `Sync` is a supertrait
/// because the one superstep kernel shares the program across its worker
/// threads (the serial path is the same kernel at one thread).
pub trait GasProgram: Sync {
    /// Per-vertex state.
    type VertexData: Clone + Send + Sync;
    /// Gather accumulator. `Sync` lets the kernel share a per-source
    /// contribution table across worker threads (see
    /// [`gather_by_source`](Self::gather_by_source)).
    type Accum: Clone + Send + Sync;

    /// Application name (keys the CCR pool).
    fn name(&self) -> &'static str;

    /// Ground-truth hardware profile (see `hetgraph-cluster::perf`). Not
    /// visible to scheduling policies — only the simulator reads it.
    fn profile(&self) -> AppProfile;

    /// Initial vertex data.
    ///
    /// Programs receive a [`GraphMeta`] — counts and degrees only — rather
    /// than a concrete graph, so the same program runs unchanged over the
    /// plain and the compact (delta-varint) representations.
    fn init(&self, graph: &GraphMeta<'_>, v: VertexId) -> Self::VertexData;

    /// Which neighbors the gather phase visits.
    fn gather_direction(&self) -> Direction;

    /// Gather over one neighbor `u` of `v`. Returns the accumulator
    /// contribution (or `None` to contribute nothing) and the *work units*
    /// this visit cost (1.0 for a plain read; Triangle Count returns the
    /// actual number of intersection probes).
    fn gather(
        &self,
        graph: &GraphMeta<'_>,
        data: &[Self::VertexData],
        v: VertexId,
        u: VertexId,
    ) -> (Option<Self::Accum>, f64);

    /// Declares that [`gather`](Self::gather) is *source-only*: for every
    /// edge it returns `(Some(c), 1.0)` where `c` depends only on the
    /// gathered source vertex `u` — never on the gathering vertex `v`.
    /// Default: `false`.
    ///
    /// When true, [`source_gather`](Self::source_gather) must be
    /// implemented, and the kernel may evaluate the contribution **once
    /// per source vertex per superstep** into a dense table and replay it
    /// per edge, instead of recomputing it for every edge. The values and
    /// accumulation order are unchanged, so results stay bit-identical;
    /// only redundant per-edge arithmetic is removed. Worth opting into
    /// when gather does real math per edge (e.g. PageRank's
    /// `data[u] / out_degree(u)` division); a plain `data[u]` read is
    /// cheaper replayed directly than through a table entry.
    ///
    /// Contract for opt-in programs: `gather(graph, data, v, u)` must
    /// equal `(Some(source_gather(graph, data, u)), 1.0)` for every `v`
    /// (the kernel debug-asserts this while filling the table), and
    /// `source_gather` must be total (no panics) for *any* vertex `u`,
    /// including vertices that never appear as a gather source (the table
    /// is filled for all of them; an unread `inf` from a zero out-degree
    /// is fine, a panic is not).
    fn gather_by_source(&self) -> bool {
        false
    }

    /// The source-only gather contribution of vertex `u` (see
    /// [`gather_by_source`](Self::gather_by_source)). Only called when
    /// `gather_by_source()` returns `true`.
    fn source_gather(
        &self,
        _graph: &GraphMeta<'_>,
        _data: &[Self::VertexData],
        _u: VertexId,
    ) -> Self::Accum {
        unreachable!("gather_by_source() is true but source_gather() is not implemented")
    }

    /// Commutative, associative combination of accumulators.
    fn sum(&self, a: Self::Accum, b: Self::Accum) -> Self::Accum;

    /// Pure apply: old data + gathered accumulator → (new data, changed?).
    /// `changed` drives scatter and convergence.
    fn apply(
        &self,
        graph: &GraphMeta<'_>,
        v: VertexId,
        old: &Self::VertexData,
        acc: Option<Self::Accum>,
        superstep: usize,
    ) -> (Self::VertexData, bool);

    /// Which neighbors the scatter phase visits (for changed vertices).
    fn scatter_direction(&self) -> Direction;

    /// Whether scatter along `v → u` activates `u` for the next superstep.
    /// Default: activate exactly when `v` changed (message-passing style).
    fn scatter_activates(
        &self,
        _graph: &GraphMeta<'_>,
        _data: &[Self::VertexData],
        _v: VertexId,
        _u: VertexId,
        v_changed: bool,
    ) -> bool {
        v_changed
    }

    /// Initial active set.
    fn initial_active(&self, _graph: &GraphMeta<'_>) -> ActiveInit {
        ActiveInit::All
    }

    /// Superstep budget; the engine stops here even without convergence.
    fn max_supersteps(&self) -> usize {
        200
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_is_copy_and_comparable() {
        let d = Direction::Both;
        let e = d;
        assert_eq!(d, e);
        assert_ne!(Direction::In, Direction::Out);
    }

    #[test]
    fn active_init_variants() {
        let all = ActiveInit::All;
        let seeds = ActiveInit::Seeds(vec![1, 2]);
        assert_ne!(all, seeds);
        if let ActiveInit::Seeds(s) = seeds {
            assert_eq!(s.len(), 2);
        }
    }
}
