//! Error type for the simulation engine.

/// Errors produced while building or mutating engine-side structures.
#[derive(Debug)]
pub enum EngineError {
    /// The partition assignment does not cover exactly the graph's edges.
    AssignmentMismatch {
        /// Edge count of the assignment.
        assignment_edges: usize,
        /// Edge count of the graph.
        graph_edges: usize,
    },
    /// A host thread budget of zero was requested.
    ZeroThreads,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::AssignmentMismatch {
                assignment_edges,
                graph_edges,
            } => write!(
                f,
                "assignment must cover the graph: assignment has {assignment_edges} edges, \
                 graph has {graph_edges}"
            ),
            EngineError::ZeroThreads => write!(f, "need at least one host thread"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = EngineError::AssignmentMismatch {
            assignment_edges: 3,
            graph_edges: 7,
        };
        let s = e.to_string();
        assert!(s.contains("cover the graph") && s.contains("3") && s.contains("7"));
        assert!(EngineError::ZeroThreads.to_string().contains("thread"));
    }
}
