//! # hetgraph-engine
//!
//! A PowerGraph-like Gather-Apply-Scatter (GAS) engine executing on a
//! *simulated* heterogeneous cluster.
//!
//! The engine really runs the algorithm: vertex programs compute real
//! PageRank values, real component labels, real colors, real triangle
//! counts over the real partition. What is simulated is *time*: the engine
//! counts the work each machine performs in each superstep (every gather
//! visit, apply, scatter visit, and mirror synchronization, attributed to
//! the machine that owns the edge or masters the vertex) and converts
//! those counts to seconds and joules through the calibrated machine
//! models in `hetgraph-cluster`. See `DESIGN.md` for why this substitution
//! preserves the paper's phenomena.
//!
//! - [`program`] — the [`GasProgram`] trait (Jacobi-style functional GAS).
//! - [`distributed`] — [`DistributedGraph`]: the partition-aware view that
//!   knows which machine owns each CSR adjacency slot.
//! - [`compact_dist`] — [`CompactDistGraph`]: the same view over
//!   delta-varint compressed adjacency, buildable straight from an edge
//!   stream; the kernel runs it through
//!   [`SimEngine::run_compact_on_with_threads`](sim::SimEngine::run_compact_on_with_threads)
//!   with byte-identical reports.
//! - [`sim`] — [`SimEngine`]: **the** BSP superstep loop (there is exactly
//!   one; serial execution is its 1-thread case) with timing, energy, and
//!   communication accounting.
//! - [`rebalance`] — [`RebalancePolicy`]: between-superstep migration
//!   driven by the per-step straggler signals; [`GreedyRebalance`] is the
//!   built-in amortizing policy.
//! - [`report`] — [`SimReport`]: everything the evaluation harness reads.
//! - [`analyze`] — [`TraceAnalysis`]: offline straggler-attribution
//!   analytics over exported trace JSONL (backs `hetgraph report`).
//! - [`error`] — [`EngineError`]: typed construction failures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod compact_dist;
pub mod distributed;
pub mod error;
pub mod program;
pub mod rebalance;
pub mod report;
pub mod sim;

pub use analyze::TraceAnalysis;
pub use compact_dist::CompactDistGraph;
pub use distributed::DistributedGraph;
pub use error::EngineError;
pub use program::{ActiveInit, Direction, GasProgram};
pub use rebalance::{GreedyRebalance, MigrationEvent, RebalancePolicy, StepSignals};
pub use report::{SimReport, StepRecord};
pub use sim::{SimEngine, SimOutcome};
