//! Multithreaded host execution.
//!
//! [`SimEngine::run`] executes supersteps on one host thread. For large
//! experiment sweeps the gather phase dominates host time, and it is
//! embarrassingly parallel across vertices (GAS methods are pure), so this
//! module adds [`SimEngine::run_parallel`]: the same simulation, with the
//! gather/apply and scatter phases fanned out over host threads via the
//! shared [`hetgraph_core::par::scheduled`] self-scheduling pool.
//!
//! **Determinism is preserved exactly for vertex data** and to within
//! floating-point re-association for the simulated times: active vertices
//! are split into fixed chunks, threads self-schedule chunks off a shared
//! atomic cursor (so power-law work skew cannot idle threads), and
//! `scheduled` hands results back *in chunk order*. Per-vertex outputs are
//! pure functions of the previous superstep, so the merged state is
//! identical to the sequential engine's.
//!
//! The hot path avoids per-superstep allocation churn: the active list,
//! changed list, and activation bitsets are reused across supersteps, the
//! chunk slices are derived from index arithmetic instead of a collected
//! `Vec<&[u32]>`, and the per-chunk scratch buffers (work counts, sync
//! counts, change lists) cycle through a [`Pool`] so a superstep reuses
//! the previous superstep's allocations.
//!
//! Note the distinction between the two kinds of time here: `run_parallel`
//! changes how long the *host* takes to compute the simulation; the
//! *simulated* cluster times it produces are the same quantity `run`
//! produces.

use hetgraph_cluster::{EnergyModel, EnergyReport, GraphShape, WorkCounts};
use hetgraph_core::par::{scheduled, Pool};
use hetgraph_core::{BitSet, Graph, MachineId, VertexId};
use hetgraph_partition::PartitionAssignment;

use crate::distributed::DistributedGraph;
use crate::program::{ActiveInit, Direction, GasProgram};
use crate::report::SimReport;
use crate::sim::{SimEngine, SimOutcome};

/// Vertices per self-scheduled chunk. Small enough that hub-heavy chunks
/// cannot stall the tail, big enough to amortize the atomic fetch.
const CHUNK: usize = 1_024;

/// Per-chunk result of the gather/apply phase. The buffers are pooled:
/// after the merge drains them they go back to the [`Pool`] for the next
/// superstep's chunks.
struct GatherChunk<D> {
    changes: Vec<(VertexId, D, bool)>,
    work: Vec<WorkCounts>,
    sync_counts: Vec<u64>,
}

impl<D> GatherChunk<D> {
    fn new(p: usize) -> Self {
        GatherChunk {
            changes: Vec::new(),
            work: vec![WorkCounts::zero(); p],
            sync_counts: vec![0u64; p],
        }
    }

    /// Reset for reuse; `changes` is expected to be already drained.
    fn recycle(&mut self) {
        debug_assert!(self.changes.is_empty(), "changes must be drained first");
        for w in &mut self.work {
            *w = WorkCounts::zero();
        }
        self.sync_counts.fill(0);
    }
}

/// Per-chunk result of the scatter phase, pooled like [`GatherChunk`].
struct ScatterChunk {
    work: Vec<WorkCounts>,
    activations: Vec<VertexId>,
}

impl ScatterChunk {
    fn new(p: usize) -> Self {
        ScatterChunk {
            work: vec![WorkCounts::zero(); p],
            activations: Vec::new(),
        }
    }

    fn recycle(&mut self) {
        for w in &mut self.work {
            *w = WorkCounts::zero();
        }
        self.activations.clear();
    }
}

impl SimEngine<'_> {
    /// Parallel variant of [`SimEngine::run`] using `host_threads` OS
    /// threads. Produces identical vertex data and (up to floating-point
    /// association) identical reports.
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_parallel<P>(
        &self,
        graph: &Graph,
        assignment: &PartitionAssignment,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData>
    where
        P: GasProgram + Sync,
        P::VertexData: Send + Sync,
        P::Accum: Send,
    {
        let dist = DistributedGraph::new(graph, assignment);
        self.run_parallel_on(&dist, program, host_threads)
    }

    /// [`SimEngine::run_parallel`] over a prebuilt [`DistributedGraph`].
    ///
    /// Building the distributed view is O(edges); sweeps that execute many
    /// apps over one partition build it once and call this per app.
    ///
    /// # Panics
    /// Panics if `host_threads == 0` or on a cluster/assignment mismatch.
    pub fn run_parallel_on<P>(
        &self,
        dist: &DistributedGraph<'_>,
        program: &P,
        host_threads: usize,
    ) -> SimOutcome<P::VertexData>
    where
        P: GasProgram + Sync,
        P::VertexData: Send + Sync,
        P::Accum: Send,
    {
        assert!(host_threads > 0, "need at least one host thread");
        let graph = dist.graph();
        let assignment = dist.assignment();
        assert_eq!(
            assignment.num_machines(),
            self.cluster().len(),
            "assignment and cluster must have the same machine count"
        );
        let p = self.cluster().len();
        let n = graph.num_vertices() as usize;
        let profile = program.profile();
        profile.assert_valid();
        let shape = GraphShape::of(graph);
        let machines = self.cluster().machines();
        let energy_model = EnergyModel::new(machines.to_vec());

        let mut data: Vec<P::VertexData> = (0..n as u32).map(|v| program.init(graph, v)).collect();
        let mut active = match program.initial_active(graph) {
            ActiveInit::All => BitSet::full(n),
            ActiveInit::Seeds(seeds) => {
                let mut s = BitSet::new(n);
                for v in seeds {
                    s.insert(v as usize);
                }
                s
            }
        };

        let mut energy = EnergyReport::new(p);
        let mut per_machine_busy = vec![0.0f64; p];
        let mut total_work = vec![WorkCounts::zero(); p];
        let mut makespan = 0.0f64;
        let mut compute_total = 0.0f64;
        let mut comm_total = 0.0f64;
        let mut supersteps = 0usize;
        let mut converged = false;
        let mut steps: Vec<crate::report::StepRecord> = Vec::new();

        // Buffers reused across supersteps (see module docs).
        let mut active_list: Vec<u32> = Vec::new();
        let mut changed: Vec<u32> = Vec::new();
        let mut next_active = BitSet::new(n);
        let mut step_work = vec![WorkCounts::zero(); p];
        let mut sync_counts = vec![0u64; p];
        let mut busy = vec![0.0f64; p];
        let gather_pool: Pool<GatherChunk<P::VertexData>> = Pool::new();
        let scatter_pool: Pool<ScatterChunk> = Pool::new();

        for step in 0..program.max_supersteps() {
            if active.is_empty() {
                converged = true;
                break;
            }
            active_list.clear();
            active_list.extend(active.iter().map(|v| v as u32));
            for w in &mut step_work {
                *w = WorkCounts::zero();
            }
            sync_counts.fill(0);

            // --- Gather + Apply, fanned out ---
            let n_chunks = active_list.len().div_ceil(CHUNK);
            let gathered: Vec<GatherChunk<P::VertexData>> =
                scheduled(n_chunks, host_threads, |idx| {
                    let lo = idx * CHUNK;
                    let hi = (lo + CHUNK).min(active_list.len());
                    let mut out = gather_pool.take(|| GatherChunk::new(p));
                    gather_chunk(
                        &mut out,
                        &active_list[lo..hi],
                        graph,
                        dist,
                        assignment,
                        program,
                        &data,
                        step,
                    );
                    out
                });

            // --- Merge in chunk order, commit applies (Jacobi barrier) ---
            changed.clear();
            for mut c in gathered {
                for i in 0..p {
                    step_work[i].add(c.work[i]);
                    sync_counts[i] += c.sync_counts[i];
                }
                for (v, nd, did_change) in c.changes.drain(..) {
                    data[v as usize] = nd;
                    if did_change {
                        changed.push(v);
                    }
                }
                c.recycle();
                gather_pool.put(c);
            }

            // --- Scatter, fanned out over changed vertices ---
            next_active.clear();
            if program.scatter_direction() != Direction::None && !changed.is_empty() {
                let n_sc_chunks = changed.len().div_ceil(CHUNK);
                let scattered: Vec<ScatterChunk> = scheduled(n_sc_chunks, host_threads, |idx| {
                    let lo = idx * CHUNK;
                    let hi = (lo + CHUNK).min(changed.len());
                    let mut out = scatter_pool.take(|| ScatterChunk::new(p));
                    scatter_chunk(&mut out, &changed[lo..hi], graph, dist, program, &data);
                    out
                });
                for mut c in scattered {
                    for i in 0..p {
                        step_work[i].add(c.work[i]);
                    }
                    for &u in &c.activations {
                        next_active.insert(u as usize);
                    }
                    c.recycle();
                    scatter_pool.put(c);
                }
            }

            // --- Timing, energy, bookkeeping (same as the serial path) ---
            busy.clear();
            busy.extend(
                (0..p).map(|i| profile.time_seconds(&machines[i], &step_work[i], &shape)),
            );
            let step_compute = busy.iter().copied().fold(0.0f64, f64::max);
            let step_comm = self.network().step_comm_s(machines, &sync_counts);
            let step_wall = step_compute + step_comm;
            for i in 0..p {
                energy_model.account_step(&mut energy, i, busy[i], step_wall);
                per_machine_busy[i] += busy[i];
                total_work[i].add(step_work[i]);
            }
            if self.trace() {
                steps.push(crate::report::StepRecord {
                    step,
                    active: active_list.len(),
                    busy_s: busy.clone(),
                    comm_s: step_comm,
                    wall_s: step_wall,
                });
            }
            makespan += step_wall;
            compute_total += step_compute;
            comm_total += step_comm;
            supersteps += 1;
            std::mem::swap(&mut active, &mut next_active);
        }
        if active.is_empty() {
            converged = true;
        }

        SimOutcome {
            data,
            report: SimReport {
                app: program.name().to_string(),
                supersteps,
                converged,
                makespan_s: makespan,
                compute_s: compute_total,
                comm_s: comm_total,
                per_machine_busy_s: per_machine_busy,
                per_machine_work: total_work,
                energy,
                steps,
            },
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn gather_chunk<P>(
    out: &mut GatherChunk<P::VertexData>,
    chunk: &[u32],
    graph: &Graph,
    dist: &DistributedGraph<'_>,
    assignment: &PartitionAssignment,
    program: &P,
    data: &[P::VertexData],
    step: usize,
) where
    P: GasProgram + Sync,
{
    let GatherChunk {
        changes,
        work,
        sync_counts,
    } = out;
    changes.reserve(chunk.len());
    for &v in chunk {
        let mut acc: Option<P::Accum> = None;
        for_each_neighbor(dist, v, program.gather_direction(), |u, m| {
            let (contrib, w) = program.gather(graph, data, v, u);
            work[m.index()].edge_units += w;
            if let Some(c) = contrib {
                acc = Some(match acc.take() {
                    Some(prev) => program.sum(prev, c),
                    None => c,
                });
            }
        });
        let master = assignment.master(v);
        work[master.index()].vertex_units += 1.0;
        let (nd, did_change) = program.apply(graph, v, &data[v as usize], acc, step);
        changes.push((v, nd, did_change));
        let mask = assignment.replica_mask(v);
        let replicas = mask.count_ones();
        if replicas > 1 {
            sync_counts[master.index()] += (replicas - 1) as u64;
            let mut rest = mask;
            while rest != 0 {
                let m = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if m != master.index() {
                    sync_counts[m] += 1;
                }
            }
        }
    }
}

fn scatter_chunk<P>(
    out: &mut ScatterChunk,
    chunk: &[u32],
    graph: &Graph,
    dist: &DistributedGraph<'_>,
    program: &P,
    data: &[P::VertexData],
) where
    P: GasProgram + Sync,
{
    let ScatterChunk { work, activations } = out;
    for &v in chunk {
        for_each_neighbor(dist, v, program.scatter_direction(), |u, m| {
            work[m.index()].edge_units += 1.0;
            if program.scatter_activates(graph, data, v, u, true) {
                activations.push(u);
            }
        });
    }
}

/// Visit each neighbor of `v` in the given direction with its edge owner.
fn for_each_neighbor(
    dist: &DistributedGraph<'_>,
    v: VertexId,
    dir: Direction,
    mut f: impl FnMut(VertexId, MachineId),
) {
    match dir {
        Direction::In => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::Out => {
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::Both => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m);
            }
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m);
            }
        }
        Direction::None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_apps_free::*;

    /// Self-contained CC-like program (the apps crate depends on this
    /// crate, so tests define their own).
    mod hetgraph_apps_free {
        use super::*;
        use hetgraph_cluster::AppProfile;

        pub struct MinLabel;

        impl GasProgram for MinLabel {
            type VertexData = u32;
            type Accum = u32;
            fn name(&self) -> &'static str {
                "min_label"
            }
            fn profile(&self) -> AppProfile {
                AppProfile {
                    name: "min_label".into(),
                    edge_flops: 50.0,
                    edge_bytes: 40.0,
                    vertex_flops: 10.0,
                    vertex_bytes: 8.0,
                    serial_fraction: 0.05,
                    parallel_exponent: 1.0,
                    skew_sensitivity: 0.3,
                    relief_floor: 0.85,
                    relief_ref_degree: 10.0,
                }
            }
            fn init(&self, _g: &Graph, v: VertexId) -> u32 {
                v
            }
            fn gather_direction(&self) -> Direction {
                Direction::Both
            }
            fn gather(
                &self,
                _g: &Graph,
                data: &[u32],
                _v: VertexId,
                u: VertexId,
            ) -> (Option<u32>, f64) {
                (Some(data[u as usize]), 1.0)
            }
            fn sum(&self, a: u32, b: u32) -> u32 {
                a.min(b)
            }
            fn apply(
                &self,
                _g: &Graph,
                _v: VertexId,
                old: &u32,
                acc: Option<u32>,
                _s: usize,
            ) -> (u32, bool) {
                let new = acc.map_or(*old, |a| a.min(*old));
                (new, new < *old)
            }
            fn scatter_direction(&self) -> Direction {
                Direction::Both
            }
        }
    }

    use hetgraph_cluster::Cluster;
    use hetgraph_core::{Edge, EdgeList};
    use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

    fn big_graph() -> Graph {
        let n = 5_000u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push(Edge::new(v, (v * 13 + 7) % n));
            edges.push(Edge::new(v, (v * 31 + 3) % n));
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn parallel_matches_sequential_data_exactly() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let seq = engine.run(&g, &a, &MinLabel);
        for threads in [1, 2, 4] {
            let par = engine.run_parallel(&g, &a, &MinLabel, threads);
            assert_eq!(par.data, seq.data, "{threads} threads");
            assert_eq!(par.report.supersteps, seq.report.supersteps);
            assert!(
                (par.report.makespan_s - seq.report.makespan_s).abs()
                    < 1e-9 * seq.report.makespan_s.max(1.0),
                "{threads} threads: {} vs {}",
                par.report.makespan_s,
                seq.report.makespan_s
            );
        }
    }

    #[test]
    fn parallel_work_attribution_matches() {
        let g = big_graph();
        let cluster = Cluster::case3();
        let a = RandomHash::new().partition(&g, &MachineWeights::from_ccr(&[1.0, 4.0]));
        let engine = SimEngine::new(&cluster);
        let seq = engine.run(&g, &a, &MinLabel).report;
        let par = engine.run_parallel(&g, &a, &MinLabel, 3).report;
        for i in 0..2 {
            assert!(
                (seq.per_machine_work[i].edge_units - par.per_machine_work[i].edge_units).abs()
                    < 1e-6,
                "machine {i} edge work"
            );
            assert!(
                (seq.per_machine_work[i].vertex_units - par.per_machine_work[i].vertex_units).abs()
                    < 1e-6,
                "machine {i} vertex work"
            );
        }
        assert_eq!(seq.energy.busy_s.len(), par.energy.busy_s.len());
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let r1 = engine.run_parallel(&g, &a, &MinLabel, 4);
        let r2 = engine.run_parallel(&g, &a, &MinLabel, 4);
        assert_eq!(r1.data, r2.data);
        assert_eq!(r1.report, r2.report);
    }

    #[test]
    fn run_parallel_on_shared_view_matches_run_parallel() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let engine = SimEngine::new(&cluster);
        let dist = DistributedGraph::new(&g, &a);
        let direct = engine.run_parallel(&g, &a, &MinLabel, 2);
        let shared = engine.run_parallel_on(&dist, &MinLabel, 2);
        assert_eq!(direct.data, shared.data);
        assert_eq!(direct.report, shared.report);
        // The serial engine over the same shared view agrees too.
        let serial = engine.run_on(&dist, &MinLabel);
        assert_eq!(serial.data, shared.data);
    }

    #[test]
    fn empty_graph_parallel() {
        let g = Graph::from_edge_list(EdgeList::new(0));
        let cluster = Cluster::case2();
        let a = hetgraph_partition::PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        let out = SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 2);
        assert!(out.report.converged);
        assert_eq!(out.report.supersteps, 0);
    }

    #[test]
    #[should_panic(expected = "at least one host thread")]
    fn zero_threads_rejected() {
        let g = big_graph();
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        SimEngine::new(&cluster).run_parallel(&g, &a, &MinLabel, 0);
    }
}
