//! `hetgraph` — command-line tools for the hetgraph workspace.
//!
//! ```text
//! hetgraph generate  --family powerlaw|rmat|ba|smallworld|gnm|natural ... --out FILE | --shards DIR
//! hetgraph alpha     --input FILE | --vertices N --edges M
//! hetgraph stats     --input FILE
//! hetgraph partition --input FILE --machines K [--algorithm NAME] [--weights a,b,...]
//! hetgraph profile   [--cluster case1|case2|case3] [--scale N] [--apps LIST]
//! hetgraph simulate  --input FILE|SHARD_DIR [--compact] [--cluster C] [--app A] [--algorithm P] [--policy default|prior|ccr] [--rebalance greedy|off] [--trace-out FILE] [--metrics-out FILE]
//! hetgraph serve     [--requests N] [--tenants K] [--batch-window W] [--queue-budget B] [--max-batch M] [--weights a,b,...] [--input FILE | --vertices N] [--trace-out FILE] [--metrics-out FILE]
//! hetgraph report    --trace FILE.jsonl [--metrics FILE.json] [--top K]
//! hetgraph submit    --input FILE [--cluster C] [--app A] [--algorithm P] [--policy ...] [--threads N]
//! ```
//!
//! Graph files: `.hgb` is the compact binary format; any other extension
//! is SNAP-style text (`src<TAB>dst` per line, `#` comments).

mod args;
mod commands;

const USAGE: &str = "\
hetgraph <command> [--flag value ...]

commands:
  generate   write a synthetic graph to a file and/or a shard directory
             --family powerlaw|rmat|ba|smallworld|gnm|natural  --out FILE | --shards DIR
             powerlaw: --vertices N [--alpha A]      rmat/gnm: --vertices N --edges M
             ba: --vertices N [--edges M]            smallworld: --vertices N [--neighbors K] [--beta B]
             natural: --natural amazon|citation|social_network|wiki [--scale S]
             common: [--seed S]
             --shards DIR streams fixed-size binary shards with bounded
             buffering (powerlaw, rmat, gnm, natural only)
  alpha      fit the power-law exponent (paper Eq. 7)
             --input FILE | --vertices N --edges M
  stats      degree statistics of a graph file
             --input FILE
  partition  partition a graph and print quality metrics
             --input FILE [--machines K] [--algorithm NAME] [--weights a,b,...]
  profile    proxy-profile a cluster (prints the CCR pool)
             [--cluster case1|case2|case3] [--scale N] [--threads N]
             [--apps LIST|all]
  simulate   run one application on a simulated heterogeneous cluster
             --input FILE|SHARD_DIR [--cluster C] [--app A] [--algorithm P]
             [--policy default|prior|ccr] [--scale N] [--threads N]
             [--compact]  run the kernel on the delta-varint compressed
             structure (byte-identical SimReport, lower resident bytes);
             a shard-directory --input requires --compact and a streaming
             --algorithm (random, oblivious, grid)
             [--rebalance greedy|off]  migrate edges between supersteps
             when a machine straggles (off by default; reports are
             byte-identical to no flag when off)
             [--trace-out FILE]  Chrome trace_event JSON of the simulated
             timeline (.jsonl = every event as JSON-lines); open in
             chrome://tracing or ui.perfetto.dev
             [--metrics-out FILE]  aggregated metrics snapshot (.prom =
             Prometheus text exposition, else JSON); sim-domain only —
             byte-identical at any --threads — unless the name has .full.
  serve      serve an open-loop stream of graph queries (per-source SSSP,
             personalized PageRank, k-core membership) over one shared
             partitioned graph, with batched multi-source waves,
             admission control, and weighted fair scheduling
             [--requests N] [--tenants K] [--batch-window W]
             [--queue-budget B] [--max-batch M] [--weights a,b,...]
             [--mean-gap S] [--ppr-iters I] [--seed S] [--threads N]
             [--input FILE | --vertices N] [--cluster C] [--algorithm P]
             [--trace-out FILE] [--metrics-out FILE]
             all times simulated; the summary is byte-identical at any
             --threads
  report     offline straggler report from an exported trace
             --trace FILE.jsonl  [--metrics FILE.json]  [--top K]
             prints per-machine barrier waits, top-K straggler supersteps,
             critical-path phase breakdown, and the migration timeline
  submit     run one job through the full Fig 7b framework flow
             (deploy = offline profiling of every registered app, then
             CCR-pick, partition, execute)
             --input FILE [--cluster C] [--app A] [--algorithm P]
             [--policy default|prior|ccr] [--scale N] [--threads N]

apps: pagerank, coloring, connected_components, triangle_count, sssp, kcore
--threads defaults to HETGRAPH_THREADS or every available core.
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let rest = &argv[1..];
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "alpha" => commands::alpha(rest),
        "stats" => commands::stats(rest),
        "partition" => commands::partition(rest),
        "profile" => commands::profile(rest),
        "simulate" => commands::simulate(rest),
        "serve" => commands::serve(rest),
        "report" => commands::report(rest),
        "submit" => commands::submit(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return;
        }
        other => Err(args::CliError(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
