//! Minimal dependency-free flag parsing.
//!
//! The workspace policy keeps the dependency tree to the approved set, so
//! instead of `clap` the CLI uses this small `--key value` parser: flags
//! are collected into a map, values are fetched with typed accessors, and
//! unknown flags are reported as errors (catching typos, the main thing a
//! real parser buys).

use std::collections::BTreeMap;

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: BTreeMap<String, String>,
}

/// CLI errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl Flags {
    /// Parse `args` (everything after the subcommand). `allowed` is the
    /// set of recognized flag names (without `--`).
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, CliError> {
        Self::parse_with_switches(args, allowed, &[])
    }

    /// Parse with an additional set of boolean `switches` that take no
    /// value (`--compact` rather than `--compact true`). A present switch
    /// reads back as `"true"` via [`Flags::is_set`].
    pub fn parse_with_switches(
        args: &[String],
        allowed: &[&str],
        switches: &[&str],
    ) -> Result<Flags, CliError> {
        let mut values = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(CliError(format!(
                    "unexpected argument {a:?} (flags are --key value)"
                )));
            };
            if switches.contains(&key) {
                if values.insert(key.to_string(), "true".to_string()).is_some() {
                    return Err(CliError(format!("flag --{key} given twice")));
                }
                continue;
            }
            if !allowed.contains(&key) {
                return Err(CliError(format!(
                    "unknown flag --{key}; expected one of: {}",
                    allowed
                        .iter()
                        .chain(switches.iter())
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
            let Some(value) = it.next() else {
                return Err(CliError(format!("flag --{key} needs a value")));
            };
            if values.insert(key.to_string(), value.clone()).is_some() {
                return Err(CliError(format!("flag --{key} given twice")));
            }
        }
        Ok(Flags { values })
    }

    /// Whether a boolean switch was given.
    pub fn is_set(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    /// Optional typed value.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(s) => s
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError(format!("flag --{key}: cannot parse {s:?}"))),
        }
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        Ok(self.get_parsed(key)?.unwrap_or(default))
    }

    /// Required typed value.
    pub fn require_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        self.require(key)?
            .parse::<T>()
            .map_err(|_| CliError(format!("flag --{key}: cannot parse {:?}", self.get(key))))
    }

    /// Comma-separated `f64` list.
    pub fn get_f64_list(&self, key: &str) -> Result<Option<Vec<f64>>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(s) => s
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse::<f64>()
                        .map_err(|_| CliError(format!("flag --{key}: bad number {tok:?}")))
                })
                .collect::<Result<Vec<f64>, CliError>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_known_flags() {
        let f = Flags::parse(
            &argv(&["--vertices", "100", "--alpha", "2.1"]),
            &["vertices", "alpha"],
        )
        .unwrap();
        assert_eq!(f.require_parsed::<u32>("vertices").unwrap(), 100);
        assert_eq!(f.require_parsed::<f64>("alpha").unwrap(), 2.1);
        assert_eq!(f.get_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = Flags::parse(&argv(&["--bogus", "1"]), &["vertices"]).unwrap_err();
        assert!(err.0.contains("unknown flag --bogus"));
        assert!(err.0.contains("--vertices"));
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(Flags::parse(&argv(&["--a"]), &["a"])
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(Flags::parse(&argv(&["--a", "1", "--a", "2"]), &["a"])
            .unwrap_err()
            .0
            .contains("twice"));
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Flags::parse(&argv(&["oops"]), &["a"])
            .unwrap_err()
            .0
            .contains("unexpected"));
    }

    #[test]
    fn typed_errors_are_informative() {
        let f = Flags::parse(&argv(&["--n", "abc"]), &["n"]).unwrap();
        assert!(f
            .require_parsed::<u32>("n")
            .unwrap_err()
            .0
            .contains("cannot parse"));
        assert!(f
            .require("missing")
            .unwrap_err()
            .0
            .contains("missing required"));
    }

    #[test]
    fn switches_take_no_value() {
        let f = Flags::parse_with_switches(
            &argv(&["--compact", "--input", "g.hgb"]),
            &["input"],
            &["compact"],
        )
        .unwrap();
        assert!(f.is_set("compact"));
        assert_eq!(f.get("input"), Some("g.hgb"));
        let f = Flags::parse_with_switches(&argv(&["--input", "g.hgb"]), &["input"], &["compact"])
            .unwrap();
        assert!(!f.is_set("compact"));
        // A switch given twice is still a duplicate, and unknown-flag
        // errors list the switches too.
        assert!(
            Flags::parse_with_switches(&argv(&["--compact", "--compact"]), &[], &["compact"])
                .unwrap_err()
                .0
                .contains("twice")
        );
        let err = Flags::parse_with_switches(&argv(&["--bogus", "1"]), &["input"], &["compact"])
            .unwrap_err();
        assert!(err.0.contains("--compact"));
    }

    #[test]
    fn f64_lists() {
        let f = Flags::parse(&argv(&["--w", "1.0, 2.5,3"]), &["w"]).unwrap();
        assert_eq!(f.get_f64_list("w").unwrap().unwrap(), vec![1.0, 2.5, 3.0]);
        assert!(f.get_f64_list("absent").unwrap().is_none());
    }
}
