//! Subcommand implementations.

use std::path::Path;

use hetgraph::{BalancePolicy, Framework};
use hetgraph_apps::{AnyApp, AppRegistry};
use hetgraph_cluster::Cluster;
use hetgraph_core::degree::DegreeHistogram;
use hetgraph_core::{io, Graph};
use hetgraph_gen::{
    fit_alpha, BarabasiAlbertConfig, GnmConfig, NaturalGraph, PowerLawConfig, ProxySet, RmatConfig,
    SmallWorldConfig, StreamingGenerator,
};
use hetgraph_partition::{MachineWeights, PartitionMetrics, PartitionerKind};
use hetgraph_profile::{CcrPool, PriorWorkEstimator};

use crate::args::{CliError, Flags};

/// Load a graph from `--input FILE` (binary `.hgb` or SNAP-style text).
fn load_graph(path: &str) -> Result<Graph, CliError> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "hgb") {
        io::load_binary(p)
    } else {
        std::fs::File::open(p)
            .map_err(hetgraph_core::CoreError::from)
            .and_then(|f| io::read_text(f, None))
            .map(Graph::from_edge_list)
    };
    result.map_err(|e| CliError(format!("cannot load {path}: {e}")))
}

/// Save a graph to `--out FILE` (binary when the extension is `.hgb`).
fn save_graph(path: &str, graph: &Graph) -> Result<(), CliError> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "hgb") {
        io::save_binary(p, graph)
    } else {
        std::fs::File::create(p)
            .map_err(hetgraph_core::CoreError::from)
            .and_then(|f| io::write_text(f, graph))
    };
    result.map_err(|e| CliError(format!("cannot write {path}: {e}")))
}

/// Resolve `--threads N` (default: `HETGRAPH_THREADS` or all cores).
fn parse_threads(flags: &Flags) -> Result<usize, CliError> {
    match flags.get("threads") {
        None => Ok(hetgraph_core::par::default_host_threads()),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(CliError(format!(
                "--threads must be a positive integer, got {v:?}"
            ))),
        },
    }
}

/// Resolve `--cluster case1|case2|case3`.
fn parse_cluster(name: &str) -> Result<Cluster, CliError> {
    match name {
        "case1" => Ok(Cluster::case1()),
        "case2" => Ok(Cluster::case2()),
        "case3" => Ok(Cluster::case3()),
        other => Err(CliError(format!(
            "unknown cluster {other:?}; expected case1, case2, or case3"
        ))),
    }
}

/// Resolve `--app` against the full app registry, plus the opt-in
/// reduced-precision `pagerank_f32` (kept out of the default registries
/// so `--apps all` and the sweeps stay on the snapshot-pinned f64 path).
fn parse_app(name: &str) -> Result<AnyApp, CliError> {
    let mut registry = AppRegistry::full();
    registry.register(AnyApp::pagerank_f32());
    registry.get(name).cloned().ok_or_else(|| {
        CliError(format!(
            "unknown app {name:?}; expected one of: {}",
            registry.names().join(", ")
        ))
    })
}

/// Resolve `--apps` (comma list or "all") against the full registry.
fn parse_apps(list: &str) -> Result<Vec<AnyApp>, CliError> {
    if list == "all" {
        return Ok(AppRegistry::full().apps().to_vec());
    }
    let mut apps = Vec::new();
    for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        let app = parse_app(name)?;
        if !apps.contains(&app) {
            apps.push(app);
        }
    }
    if apps.is_empty() {
        return Err(CliError("--apps needs at least one workload".into()));
    }
    Ok(apps)
}

/// Resolve `--algorithm`.
fn parse_partitioner(name: &str) -> Result<PartitionerKind, CliError> {
    PartitionerKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            CliError(format!(
                "unknown algorithm {name:?}; expected one of: random, oblivious, grid, hybrid, ginger"
            ))
        })
}

/// `hetgraph generate` — write a synthetic graph to a file and/or a shard
/// directory.
///
/// With `--shards DIR` the streaming families (powerlaw, rmat, gnm,
/// natural) emit fixed-size binary shards with bounded buffering: peak
/// memory is one shard's edge buffer, never the whole edge set, which is
/// how 100M-edge inputs are produced on laptop-class RAM. The growth
/// generators (ba, smallworld) inherently keep their full state and stay
/// materialize-only.
pub fn generate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "family",
            "vertices",
            "edges",
            "alpha",
            "neighbors",
            "beta",
            "seed",
            "out",
            "shards",
            "natural",
            "scale",
        ],
    )?;
    let seed: u64 = flags.get_or("seed", 42)?;
    let out = flags.get("out");
    let shards = flags.get("shards");
    if out.is_none() && shards.is_none() {
        return Err(CliError(
            "generate needs a sink: --out FILE and/or --shards DIR".into(),
        ));
    }
    let family = flags.get("family").unwrap_or("powerlaw");

    // Streaming families build one generator and drive every sink from
    // it; `generate_graph` and the shard writer share the same edge walk,
    // so both sinks see the identical edge sequence.
    let streaming: Option<(Box<dyn StreamingGenerator>, u64)> = match family {
        "powerlaw" => {
            let n: u32 = flags.require_parsed("vertices")?;
            let alpha: f64 = flags.get_or("alpha", 2.1)?;
            Some((Box::new(PowerLawConfig::new(n, alpha)), seed))
        }
        "rmat" => {
            let n: u32 = flags.require_parsed("vertices")?;
            let m: usize = flags.require_parsed("edges")?;
            Some((Box::new(RmatConfig::natural(n, m)), seed))
        }
        "gnm" => {
            let n: u32 = flags.require_parsed("vertices")?;
            let m: usize = flags.require_parsed("edges")?;
            Some((Box::new(GnmConfig::new(n, m)), seed))
        }
        "natural" => {
            let which = flags.require("natural")?;
            let scale: u32 = flags.get_or("scale", 64u32)?;
            if scale == 0 {
                return Err(CliError("--scale must be positive".into()));
            }
            let spec = NaturalGraph::ALL
                .into_iter()
                .find(|g| g.name() == which)
                .ok_or_else(|| CliError(format!("unknown natural graph {which:?}")))?
                .spec();
            // Stand-ins carry their own fixed seed — part of the
            // reproducible experiment definition.
            Some((Box::new(spec.scaled_config(scale)), spec.seed))
        }
        _ => None,
    };

    if let Some((gen, seed)) = streaming {
        if let Some(dir) = shards {
            let set = gen
                .generate_shards(seed, Path::new(dir))
                .map_err(|e| CliError(format!("cannot write shards to {dir}: {e}")))?;
            println!(
                "wrote {}: {} shard(s), {} vertices, {} edges",
                dir,
                set.num_shards(),
                set.num_vertices(),
                set.num_edges()
            );
        }
        if let Some(path) = out {
            let graph = gen.generate_graph(seed);
            save_graph(path, &graph)?;
            println!(
                "wrote {}: {} vertices, {} edges",
                path,
                graph.num_vertices(),
                graph.num_edges()
            );
        }
        return Ok(());
    }

    if shards.is_some() {
        return Err(CliError(format!(
            "family {family:?} cannot stream to shards (growth generators retain \
             their full state); use --out, or a streaming family (powerlaw, rmat, \
             gnm, natural)"
        )));
    }
    let graph = match family {
        "ba" => {
            let n: u32 = flags.require_parsed("vertices")?;
            let m: u32 = flags.get_or("edges", 3u32)?;
            BarabasiAlbertConfig::new(n, m).generate(seed)
        }
        "smallworld" => {
            let n: u32 = flags.require_parsed("vertices")?;
            let k: u32 = flags.get_or("neighbors", 4u32)?;
            let beta: f64 = flags.get_or("beta", 0.1)?;
            SmallWorldConfig::new(n, k, beta).generate(seed)
        }
        other => {
            return Err(CliError(format!(
                "unknown family {other:?}; expected powerlaw, rmat, ba, smallworld, gnm, or natural"
            )))
        }
    };
    let path = out.expect("checked above");
    save_graph(path, &graph)?;
    println!(
        "wrote {}: {} vertices, {} edges",
        path,
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}

/// `hetgraph alpha` — fit the power-law exponent (Eq. 7).
pub fn alpha(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["input", "vertices", "edges"])?;
    let (v, e) = match flags.get("input") {
        Some(path) => {
            let g = load_graph(path)?;
            (g.num_vertices() as u64, g.num_edges() as u64)
        }
        None => (
            flags.require_parsed::<u64>("vertices")?,
            flags.require_parsed::<u64>("edges")?,
        ),
    };
    let fit = fit_alpha(v, e).map_err(|err| CliError(format!("cannot fit alpha: {err}")))?;
    println!(
        "V = {v}, E = {e}, avg degree = {:.3}\nalpha = {:.4} (residual {:.2e}, {} iterations)",
        e as f64 / v as f64,
        fit.alpha,
        fit.residual,
        fit.iterations
    );
    let proxies = ProxySet::standard(1);
    println!(
        "covered by the standard proxy set: {} (closest proxy: {})",
        if proxies.covers(fit.alpha) {
            "yes"
        } else {
            "no — generate an extra proxy"
        },
        proxies.closest(fit.alpha).name,
    );
    Ok(())
}

/// `hetgraph stats` — degree statistics of a graph file.
pub fn stats(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["input"])?;
    let g = load_graph(flags.require("input")?)?;
    let s = g.degree_stats();
    println!(
        "vertices: {}\nedges: {}\navg degree: {:.3}\nmax degree: {}\nisolated: {}\ndegree CV: {:.3}",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree(),
        s.max,
        s.isolated,
        s.coefficient_of_variation(),
    );
    let h = DegreeHistogram::total_degrees(&g);
    if let Some(a) = h.fit_alpha_ccdf(2) {
        println!("empirical tail alpha (CCDF fit): {a:.3}");
    }
    Ok(())
}

/// `hetgraph partition` — partition a graph file and print quality metrics.
pub fn partition(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["input", "machines", "algorithm", "weights", "threads"],
    )?;
    let g = load_graph(flags.require("input")?)?;
    let threads = parse_threads(&flags)?;
    let machines: usize = flags.get_or("machines", 4usize)?;
    if machines == 0 || machines > 64 {
        return Err(CliError("--machines must be in 1..=64".into()));
    }
    let weights = match flags.get_f64_list("weights")? {
        Some(w) => {
            if w.len() != machines {
                return Err(CliError(format!(
                    "--weights has {} entries but --machines is {machines}",
                    w.len()
                )));
            }
            MachineWeights::new(&w)
        }
        None => MachineWeights::uniform(machines),
    };
    let kinds: Vec<PartitionerKind> = match flags.get("algorithm") {
        Some(name) => vec![parse_partitioner(name)?],
        None => PartitionerKind::ALL.to_vec(),
    };
    println!(
        "{:10} {:>8} {:>10} {:>12} {:>13}",
        "algorithm", "rf", "mirrors", "max_nl", "balance_err"
    );
    for kind in kinds {
        let a = kind.build().partition_with_threads(&g, &weights, threads);
        let m = PartitionMetrics::compute_with_threads(&a, &weights, threads);
        println!(
            "{:10} {:>8.3} {:>10} {:>12.3} {:>13.3}",
            kind.name(),
            m.replication_factor,
            m.total_mirrors,
            m.max_normalized_load,
            m.weighted_balance_error
        );
    }
    Ok(())
}

/// `hetgraph profile` — profile a cluster with synthetic proxies.
pub fn profile(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["cluster", "scale", "threads", "apps"])?;
    let cluster = parse_cluster(flags.get("cluster").unwrap_or("case2"))?;
    let scale: u32 = flags.get_or("scale", 320u32)?;
    if scale == 0 {
        return Err(CliError("--scale must be positive".into()));
    }
    let threads = parse_threads(&flags)?;
    let apps = parse_apps(flags.get("apps").unwrap_or("all"))?;
    println!(
        "profiling {} machines with the standard proxy set at 1/{scale} scale...\n",
        cluster.len()
    );
    let pool = CcrPool::profile_with_threads(&cluster, &ProxySet::standard(scale), &apps, threads);
    let prior = PriorWorkEstimator::new().estimate(&cluster);
    println!("{:24} CCR per machine (slowest = 1.0)", "app");
    for set in pool.iter() {
        let r: Vec<String> = set.ratios().iter().map(|x| format!("{x:.2}")).collect();
        println!("{:24} [{}]", set.app(), r.join(", "));
    }
    let r: Vec<String> = prior.ratios().iter().map(|x| format!("{x:.2}")).collect();
    println!("{:24} [{}]", "(prior: thread counts)", r.join(", "));
    Ok(())
}

/// `hetgraph simulate` — run one app on one graph on one cluster.
///
/// With `--trace-out FILE` the whole pipeline (CCR profiling,
/// partitioning, the superstep kernel) runs under a
/// [`hetgraph_core::obs::TraceRecorder`] and the trace is written to
/// `FILE`: a `.jsonl` extension gets every event as JSON-lines, anything
/// else gets the Chrome `trace_event` JSON of the *simulated-time* events
/// only — which is byte-identical at any `--threads` value, and opens in
/// `chrome://tracing` or Perfetto.
///
/// With `--metrics-out FILE` the same pipeline additionally runs under a
/// live [`hetgraph_core::metrics::MetricsRegistry`] and the aggregated
/// snapshot is written to `FILE`: a `.prom` extension gets Prometheus
/// text exposition, anything else pretty JSON. The snapshot holds the
/// *sim-domain* metrics only (byte-identical at any `--threads` value)
/// unless the filename contains `.full.`, which opts into the wall-clock
/// series too.
///
/// With `--compact` the kernel runs on the delta-varint [`hetgraph_engine::
/// CompactDistGraph`] instead of the plain distributed structure — same
/// `SimReport`, byte for byte, at a fraction of the resident bytes per
/// edge. `--input` may then also be a *shard directory* written by
/// `generate --shards`: the partitioner consumes the shard stream directly
/// (random, oblivious, or grid — the single-pass streaming algorithms) and
/// the compact structure is built by replaying shards, so the full edge
/// set is never resident.
pub fn simulate(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &[
            "input",
            "cluster",
            "app",
            "algorithm",
            "policy",
            "scale",
            "threads",
            "trace-out",
            "metrics-out",
            "rebalance",
        ],
        &["compact"],
    )?;
    let input = flags.require("input")?;
    let compact = flags.is_set("compact");
    let cluster = parse_cluster(flags.get("cluster").unwrap_or("case2"))?;
    let app = parse_app(flags.get("app").unwrap_or("pagerank"))?;
    let kind = parse_partitioner(flags.get("algorithm").unwrap_or("hybrid"))?;
    let threads = parse_threads(&flags)?;
    let tracer = hetgraph_core::obs::TraceRecorder::new();
    let recorder: &dyn hetgraph_core::obs::Recorder = if flags.get("trace-out").is_some() {
        &tracer
    } else {
        &hetgraph_core::obs::NOOP
    };
    let live_metrics = hetgraph_core::metrics::MetricsRegistry::new();
    let metrics: &hetgraph_core::metrics::MetricsRegistry = if flags.get("metrics-out").is_some() {
        &live_metrics
    } else {
        &hetgraph_core::metrics::NOOP
    };
    let policy = flags.get("policy").unwrap_or("ccr");
    let weights = match policy {
        "default" => MachineWeights::uniform(cluster.len()),
        "prior" => MachineWeights::from_thread_counts(&cluster),
        "ccr" => {
            let scale: u32 = flags.get_or("scale", 640u32)?;
            let pool = CcrPool::profile_instrumented(
                &cluster,
                &ProxySet::standard(scale.max(1)),
                std::slice::from_ref(&app),
                threads,
                recorder,
                metrics,
            );
            MachineWeights::from_ccr(pool.ccr(app.name()).expect("just profiled").ratios())
        }
        other => {
            return Err(CliError(format!(
                "unknown policy {other:?}; expected default, prior, or ccr"
            )))
        }
    };
    let engine = hetgraph_engine::SimEngine::new(&cluster)
        .with_recorder(recorder)
        .with_metrics(metrics);
    let (report, migrations) = if compact {
        if matches!(flags.get("rebalance"), Some(r) if r != "off") {
            return Err(CliError(
                "--compact does not support --rebalance (the compressed structure \
                 is immutable once built)"
                    .into(),
            ));
        }
        let input_path = Path::new(input);
        let report = if input_path.is_dir() {
            // Shard-fed bounded-RSS pipeline: partition the stream, then
            // build the compact structure by replaying shards — the full
            // edge set is never resident.
            let set = hetgraph_core::shard::ShardSet::open(input_path)
                .map_err(|e| CliError(format!("cannot open shard directory {input}: {e}")))?;
            let streamer = kind.build_stream().ok_or_else(|| {
                CliError(format!(
                    "--algorithm {} cannot consume a shard stream; use random, \
                     oblivious, or grid",
                    kind.name()
                ))
            })?;
            let assignment =
                streamer.partition_stream(set.num_vertices(), &weights, &mut set.stream());
            let dist = hetgraph_engine::CompactDistGraph::from_edge_stream(
                set.num_vertices(),
                &assignment,
                || set.stream(),
            )
            .map_err(|e| CliError(format!("cannot build compact graph: {e}")))?;
            app.run_compact_on_with_threads(&engine, &dist, threads)
        } else {
            let g = load_graph(input)?;
            let assignment = kind
                .build()
                .partition_instrumented(&g, &weights, threads, recorder, metrics);
            let dist = hetgraph_engine::CompactDistGraph::from_edge_stream(
                g.num_vertices(),
                &assignment,
                || g.edges().iter().copied(),
            )
            .map_err(|e| CliError(format!("cannot build compact graph: {e}")))?;
            app.run_compact_on_with_threads(&engine, &dist, threads)
        };
        (report, None)
    } else {
        if Path::new(input).is_dir() {
            return Err(CliError(
                "shard-directory input requires --compact (the plain path \
                 materializes the whole graph)"
                    .into(),
            ));
        }
        let g = load_graph(input)?;
        let assignment = kind
            .build()
            .partition_instrumented(&g, &weights, threads, recorder, metrics);
        match flags.get("rebalance") {
            None | Some("off") => (
                app.run_with_threads(&engine, &g, &assignment, threads),
                None,
            ),
            Some("greedy") => {
                let mut policy = hetgraph_engine::GreedyRebalance::new();
                let report =
                    app.run_rebalanced_with_threads(&engine, &g, &assignment, threads, &mut policy);
                let moved: usize = policy.events().iter().map(|e| e.edges_moved).sum();
                let cost: f64 = policy.events().iter().map(|e| e.cost_s).sum();
                (
                    report,
                    Some(format!(
                        "rebalance: greedy, {} batch(es), {} edge(s) migrated, {:.6}s charged",
                        policy.events().len(),
                        moved,
                        cost
                    )),
                )
            }
            Some(other) => {
                return Err(CliError(format!(
                    "unknown rebalance policy {other:?}; expected greedy or off"
                )))
            }
        }
    };
    println!("{report}");
    if let Some(line) = migrations {
        println!("{line}");
    }
    let labels = cluster.machine_labels();
    println!(
        "per-machine busy: [{}]",
        report
            .per_machine_busy_s
            .iter()
            .zip(&labels)
            .map(|(s, label)| format!("{label} {s:.4}s"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("compute imbalance: {:.3}", report.compute_imbalance());
    write_trace_out(&flags, &tracer)?;
    write_metrics_out(&flags, metrics)?;
    Ok(())
}

/// Honor `--trace-out FILE`: drain `tracer` and write JSON-lines
/// (`.jsonl`) or Chrome trace_event JSON (anything else). No-op when the
/// flag is absent.
fn write_trace_out(
    flags: &Flags,
    tracer: &hetgraph_core::obs::TraceRecorder,
) -> Result<(), CliError> {
    let Some(path) = flags.get("trace-out") else {
        return Ok(());
    };
    let events = tracer.take_events();
    let text = if path.ends_with(".jsonl") {
        hetgraph_core::obs::to_jsonl(&events)
    } else {
        hetgraph_core::obs::chrome_trace_sim(&events)
    };
    std::fs::write(path, &text).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    println!(
        "trace: {} events recorded, wrote {path} (open in chrome://tracing or ui.perfetto.dev)",
        events.len()
    );
    Ok(())
}

/// Honor `--metrics-out FILE`: snapshot `metrics` (sim-domain only
/// unless the name has `.full.`) as Prometheus text (`.prom`) or JSON.
/// No-op when the flag is absent.
fn write_metrics_out(
    flags: &Flags,
    metrics: &hetgraph_core::metrics::MetricsRegistry,
) -> Result<(), CliError> {
    let Some(path) = flags.get("metrics-out") else {
        return Ok(());
    };
    let snapshot = if path.contains(".full.") {
        metrics.snapshot()
    } else {
        metrics.snapshot_sim()
    };
    let text = if path.ends_with(".prom") {
        snapshot.to_prometheus()
    } else {
        snapshot.to_json()
    };
    std::fs::write(path, &text).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    println!(
        "metrics: {} counters, {} gauges, {} histograms, wrote {path}",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len()
    );
    Ok(())
}

/// `hetgraph report` — offline straggler-attribution report over an
/// exported trace.
///
/// Ingests a JSON-lines trace written by `simulate --trace-out FILE.jsonl`
/// (or `exp_all --trace-dir`) and prints the per-machine barrier-wait
/// table, the top-k straggler supersteps ranked by barrier waste, the
/// critical-path phase breakdown, and the migration-effectiveness
/// timeline. `--metrics FILE` folds a JSON metrics snapshot (from
/// `--metrics-out`) into the report.
pub fn report(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["trace", "metrics", "top"])?;
    let trace_path = flags.require("trace")?;
    let top: usize = flags.get_or("top", 5usize)?;
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| CliError(format!("cannot read {trace_path}: {e}")))?;
    let analysis = hetgraph_engine::TraceAnalysis::from_jsonl(&text)
        .map_err(|e| CliError(format!("cannot analyze {trace_path}: {e}")))?;
    let snapshot = match flags.get("metrics") {
        Some(path) => {
            let body = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
            Some(
                hetgraph_core::metrics::MetricsSnapshot::from_json(&body)
                    .map_err(|e| CliError(format!("cannot parse {path}: {e}")))?,
            )
        }
        None => None,
    };
    print!("{}", analysis.render(top, snapshot.as_ref()));
    Ok(())
}

/// `hetgraph submit` — run one job through the Fig 7b [`Framework`] flow:
/// deploy (offline proxy profiling of the full registry), then submit.
pub fn submit(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "input",
            "cluster",
            "app",
            "algorithm",
            "policy",
            "scale",
            "threads",
        ],
    )?;
    let g = load_graph(flags.require("input")?)?;
    let cluster = parse_cluster(flags.get("cluster").unwrap_or("case2"))?;
    let app = parse_app(flags.get("app").unwrap_or("pagerank"))?;
    let threads = parse_threads(&flags)?;
    let scale: u32 = flags.get_or("scale", 640u32)?;
    if scale == 0 {
        return Err(CliError("--scale must be positive".into()));
    }
    let policy = match flags.get("policy").unwrap_or("ccr") {
        "default" => BalancePolicy::Uniform,
        "prior" => BalancePolicy::ThreadCounts,
        "ccr" => BalancePolicy::CcrGuided,
        other => {
            return Err(CliError(format!(
                "unknown policy {other:?}; expected default, prior, or ccr"
            )))
        }
    };
    let mut framework = Framework::deploy(cluster, scale)
        .with_policy(policy)
        .with_threads(threads);
    if let Some(name) = flags.get("algorithm") {
        framework = framework.with_partitioner(parse_partitioner(name)?);
    }
    let result = framework.submit(&g, &app);
    println!("{}", result.report);
    println!(
        "partition: replication factor {:.3}, max normalized load {:.3}",
        result.partition.replication_factor, result.partition.max_normalized_load
    );
    println!(
        "compute imbalance: {:.3}",
        result.report.compute_imbalance()
    );
    Ok(())
}

/// `hetgraph serve` — run an open-loop query-serving scenario over one
/// shared partitioned graph.
///
/// A seeded load generator offers `--requests` mixed queries (per-source
/// SSSP reachability, personalized-PageRank seeds, k-core membership)
/// from `--tenants` tenants; the serving loop admits them against
/// bounded per-tenant queues (`--queue-budget`, shed on overflow),
/// merges compatible queries into multi-source superstep waves (up to
/// `--max-batch` per wave, `--batch-window` seconds of idle batching
/// delay), and schedules lanes by weighted fair queueing (`--weights`).
/// All times are simulated; the summary is byte-identical at any
/// `--threads`. `--trace-out`/`--metrics-out` work as in `simulate`, and
/// a serve trace feeds `hetgraph report` directly.
pub fn serve(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "input",
            "cluster",
            "algorithm",
            "requests",
            "tenants",
            "weights",
            "batch-window",
            "queue-budget",
            "max-batch",
            "mean-gap",
            "ppr-iters",
            "vertices",
            "seed",
            "threads",
            "trace-out",
            "metrics-out",
        ],
    )?;
    let cluster = parse_cluster(flags.get("cluster").unwrap_or("case2"))?;
    let kind = parse_partitioner(flags.get("algorithm").unwrap_or("hybrid"))?;
    let threads = parse_threads(&flags)?;
    let requests: usize = flags.get_or("requests", 2000usize)?;
    let tenants: usize = flags.get_or("tenants", 2usize)?;
    if requests == 0 || tenants == 0 {
        return Err(CliError("--requests and --tenants must be positive".into()));
    }
    let seed: u64 = flags.get_or("seed", 42u64)?;
    let tenant_weights: Vec<u32> = match flags.get("weights") {
        None => vec![1; tenants],
        Some(list) => {
            let parsed: Result<Vec<u32>, _> =
                list.split(',').map(|w| w.trim().parse::<u32>()).collect();
            let parsed = parsed
                .map_err(|e| CliError(format!("--weights must be a comma list of u32: {e}")))?;
            if parsed.len() != tenants {
                return Err(CliError(format!(
                    "--weights has {} entries for {tenants} tenants",
                    parsed.len()
                )));
            }
            parsed
        }
    };

    // Shared graph: a file, or a synthetic power-law fixture.
    let graph = match flags.get("input") {
        Some(path) => load_graph(path)?,
        None => {
            let n: u32 = flags.get_or("vertices", 10_000u32)?;
            if n == 0 {
                return Err(CliError("--vertices must be positive".into()));
            }
            PowerLawConfig::new(n, 2.1).generate(seed)
        }
    };

    let tracer = hetgraph_core::obs::TraceRecorder::new();
    let recorder: &dyn hetgraph_core::obs::Recorder = if flags.get("trace-out").is_some() {
        &tracer
    } else {
        &hetgraph_core::obs::NOOP
    };
    let live_metrics = hetgraph_core::metrics::MetricsRegistry::new();
    let metrics: &hetgraph_core::metrics::MetricsRegistry = if flags.get("metrics-out").is_some() {
        &live_metrics
    } else {
        &hetgraph_core::metrics::NOOP
    };

    // Thread-count machine weights: heterogeneity-aware without a
    // profiling pass (the service would amortize profiling, but the CLI
    // entry point should start serving immediately).
    let weights = MachineWeights::from_thread_counts(&cluster);
    let assignment = kind
        .build()
        .partition_instrumented(&graph, &weights, threads, recorder, metrics);
    let dist = hetgraph_engine::DistributedGraph::new_with_threads(&graph, &assignment, threads)
        .map_err(|e| CliError(format!("cannot build distributed graph: {e}")))?;

    let mut load = hetgraph_serve::LoadGenConfig::standard(
        seed,
        requests,
        flags.get_or("mean-gap", 0.005f64)?,
    );
    load.tenant_shares = vec![1; tenants];
    let stream = load.generate(graph.num_vertices());

    let cfg = hetgraph_serve::ServeConfig {
        batch_window_s: flags.get_or("batch-window", 0.05f64)?,
        max_batch: flags.get_or("max-batch", 16usize)?,
        queue_budget: flags.get_or("queue-budget", 64usize)?,
        tenant_weights,
        ppr_iterations: flags.get_or("ppr-iters", 10usize)?,
        threads,
    };
    if cfg.batch_window_s < 0.0 || cfg.max_batch == 0 || cfg.queue_budget == 0 {
        return Err(CliError(
            "--batch-window must be >= 0; --max-batch and --queue-budget must be positive".into(),
        ));
    }

    let report = hetgraph_serve::Server::new(&cluster)
        .with_recorder(recorder)
        .with_metrics(metrics)
        .serve(&dist, &cfg, &stream);

    println!(
        "serve: {} requests offered, {} served, {} shed, {} waves over {:.3}s simulated",
        requests,
        report.served(),
        report.shed.len(),
        report.waves.len(),
        report.sim_duration_s
    );
    println!(
        "latency: p50 {:.4}s  p99 {:.4}s  mean {:.4}s   throughput {:.1} req/s",
        report.latency_quantile_s(0.50).unwrap_or(0.0),
        report.latency_quantile_s(0.99).unwrap_or(0.0),
        report.mean_latency_s().unwrap_or(0.0),
        report.throughput_rps()
    );
    for (t, (&served, &shed)) in report
        .per_tenant_served
        .iter()
        .zip(&report.per_tenant_shed)
        .enumerate()
    {
        println!("tenant {t}: served {served}, shed {shed}");
    }
    println!(
        "batch composition digest: {:016x}",
        report.composition_digest
    );
    write_trace_out(&flags, &tracer)?;
    write_metrics_out(&flags, metrics)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("hetgraph_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_stats_then_alpha_roundtrip() {
        let path = tmp("pl.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "2000",
            "--alpha",
            "2.0",
            "--out",
            &path,
        ]))
        .unwrap();
        stats(&argv(&["--input", &path])).unwrap();
        alpha(&argv(&["--input", &path])).unwrap();
    }

    #[test]
    fn generate_text_format() {
        let path = tmp("small.txt");
        generate(&argv(&[
            "--family",
            "gnm",
            "--vertices",
            "50",
            "--edges",
            "100",
            "--out",
            &path,
        ]))
        .unwrap();
        let g = load_graph(&path).unwrap();
        assert_eq!(g.num_edges(), 100);
    }

    #[test]
    fn partition_command_runs_all_algorithms() {
        let path = tmp("part.hgb");
        generate(&argv(&[
            "--family",
            "rmat",
            "--vertices",
            "1000",
            "--edges",
            "5000",
            "--out",
            &path,
        ]))
        .unwrap();
        partition(&argv(&["--input", &path, "--machines", "4"])).unwrap();
        partition(&argv(&[
            "--input",
            &path,
            "--machines",
            "2",
            "--algorithm",
            "hybrid",
            "--weights",
            "1,3.5",
        ]))
        .unwrap();
    }

    #[test]
    fn partition_rejects_mismatched_weights() {
        let path = tmp("part2.hgb");
        generate(&argv(&[
            "--family",
            "gnm",
            "--vertices",
            "100",
            "--edges",
            "200",
            "--out",
            &path,
        ]))
        .unwrap();
        let err = partition(&argv(&[
            "--input",
            &path,
            "--machines",
            "3",
            "--weights",
            "1,2",
        ]))
        .unwrap_err();
        assert!(err.0.contains("entries"));
    }

    #[test]
    fn simulate_default_policy() {
        let path = tmp("simulate.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "800",
            "--out",
            &path,
        ]))
        .unwrap();
        simulate(&argv(&[
            "--input",
            &path,
            "--cluster",
            "case3",
            "--app",
            "connected_components",
            "--algorithm",
            "random",
            "--policy",
            "default",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_rebalance_flag() {
        let path = tmp("simulate_rebalance.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "800",
            "--out",
            &path,
        ]))
        .unwrap();
        for rebalance in ["greedy", "off"] {
            simulate(&argv(&[
                "--input",
                &path,
                "--app",
                "pagerank",
                "--algorithm",
                "random",
                "--policy",
                "default",
                "--rebalance",
                rebalance,
            ]))
            .unwrap();
        }
        let err = simulate(&argv(&[
            "--input",
            &path,
            "--policy",
            "default",
            "--rebalance",
            "nope",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("rebalance policy"));
    }

    #[test]
    fn simulate_trace_out_is_byte_identical_across_thread_counts() {
        let path = tmp("trace_in.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "900",
            "--out",
            &path,
        ]))
        .unwrap();
        let trace_at = |threads: &str| {
            let out = tmp(&format!("trace_{threads}.json"));
            simulate(&argv(&[
                "--input",
                &path,
                "--cluster",
                "case2",
                "--app",
                "pagerank",
                "--algorithm",
                "hybrid",
                "--policy",
                "default",
                "--threads",
                threads,
                "--trace-out",
                &out,
            ]))
            .unwrap();
            std::fs::read_to_string(&out).unwrap()
        };
        let reference = trace_at("1");
        assert!(reference.contains("\"traceEvents\""));
        assert!(reference.contains("barrier_wait"));
        assert!(
            !reference.contains("\"pid\":1"),
            "chrome trace output carries sim-domain events only"
        );
        for threads in ["2", "4"] {
            assert_eq!(
                trace_at(threads),
                reference,
                "simulated-time trace must not depend on --threads"
            );
        }
    }

    #[test]
    fn simulate_metrics_out_is_byte_identical_across_thread_counts() {
        let path = tmp("metrics_in.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "900",
            "--out",
            &path,
        ]))
        .unwrap();
        let metrics_at = |threads: &str, out: &str| {
            simulate(&argv(&[
                "--input",
                &path,
                "--cluster",
                "case2",
                "--app",
                "pagerank",
                "--algorithm",
                "hybrid",
                "--policy",
                "ccr",
                "--scale",
                "3200",
                "--threads",
                threads,
                "--metrics-out",
                out,
            ]))
            .unwrap();
            std::fs::read_to_string(out).unwrap()
        };
        let reference = metrics_at("1", &tmp("metrics_1.json"));
        assert!(reference.contains("engine/superstep_makespan_s"));
        assert!(reference.contains("engine/supersteps_total"));
        assert!(reference.contains("partition/hybrid/edges_total"));
        assert!(
            !reference.contains("\"Wall\""),
            "default snapshot carries sim-domain metrics only"
        );
        for threads in ["2", "4"] {
            assert_eq!(
                metrics_at(threads, &tmp(&format!("metrics_{threads}.json"))),
                reference,
                "sim-domain metrics snapshot must not depend on --threads"
            );
        }
        // Round-trip through the parser lands on the same bytes.
        let back = hetgraph_core::metrics::MetricsSnapshot::from_json(&reference).unwrap();
        assert_eq!(back.to_json(), reference);
        // `.prom` selects Prometheus text exposition; `.full.` opts into
        // the wall-clock series.
        let prom = metrics_at("2", &tmp("metrics.prom"));
        assert!(prom.contains("# TYPE hetgraph_engine_supersteps_total counter"));
        assert!(prom.contains("domain=\"sim\""));
        let full = metrics_at("2", &tmp("metrics.full.json"));
        assert!(full.contains("\"Wall\""), "full snapshot has wall metrics");
    }

    #[test]
    fn report_command_renders_exported_trace() {
        let path = tmp("report_in.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "900",
            "--out",
            &path,
        ]))
        .unwrap();
        let trace = tmp("report_trace.jsonl");
        let metrics = tmp("report_metrics.json");
        simulate(&argv(&[
            "--input",
            &path,
            "--cluster",
            "case3",
            "--app",
            "pagerank",
            "--policy",
            "default",
            "--rebalance",
            "greedy",
            "--trace-out",
            &trace,
            "--metrics-out",
            &metrics,
        ]))
        .unwrap();
        report(&argv(&[
            "--trace",
            &trace,
            "--metrics",
            &metrics,
            "--top",
            "3",
        ]))
        .unwrap();
        // A chrome-format trace (non-.jsonl) is rejected with a useful hint.
        let chrome = tmp("report_trace.json");
        simulate(&argv(&[
            "--input",
            &path,
            "--policy",
            "default",
            "--trace-out",
            &chrome,
        ]))
        .unwrap();
        let err = report(&argv(&["--trace", &chrome])).unwrap_err();
        assert!(err.0.contains("cannot analyze"), "{err:?}");
    }

    #[test]
    fn simulate_trace_out_jsonl_includes_wall_events() {
        let path = tmp("trace_jsonl_in.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "700",
            "--out",
            &path,
        ]))
        .unwrap();
        let out = tmp("trace.jsonl");
        simulate(&argv(&[
            "--input",
            &path,
            "--cluster",
            "case2",
            "--policy",
            "ccr",
            "--scale",
            "3200",
            "--trace-out",
            &out,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.lines().count() > 10);
        assert!(
            text.contains("\"domain\":\"Wall\""),
            "profiler/partition spans"
        );
        assert!(text.contains("\"domain\":\"Sim\""), "engine spans");
        assert!(text.contains("partition/hybrid"));
        assert!(text.contains("proxy_generation"));
    }

    #[test]
    fn submit_runs_framework_flow_with_threads() {
        let path = tmp("submit.hgb");
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "600",
            "--out",
            &path,
        ]))
        .unwrap();
        submit(&argv(&[
            "--input",
            &path,
            "--cluster",
            "case2",
            "--app",
            "kcore",
            "--threads",
            "2",
            "--scale",
            "3200",
        ]))
        .unwrap();
    }

    #[test]
    fn generate_shards_then_simulate_compact_matches_plain() {
        let file = tmp("shards_plain.hgb");
        let dir = tmp("shards_dir");
        std::fs::remove_dir_all(&dir).ok();
        // One invocation, both sinks: the file and the shard directory
        // hold the same edge sequence.
        generate(&argv(&[
            "--family",
            "powerlaw",
            "--vertices",
            "900",
            "--seed",
            "5",
            "--out",
            &file,
            "--shards",
            &dir,
        ]))
        .unwrap();
        let set = hetgraph_core::shard::ShardSet::open(Path::new(&dir)).unwrap();
        let g = load_graph(&file).unwrap();
        assert_eq!(set.num_edges() as usize, g.num_edges());
        assert_eq!(set.stream().collect::<Vec<_>>(), g.edges());
        // Plain file + --compact runs end to end...
        simulate(&argv(&[
            "--input",
            &file,
            "--app",
            "pagerank",
            "--algorithm",
            "random",
            "--policy",
            "default",
            "--compact",
        ]))
        .unwrap();
        // ...and so does the fully shard-fed pipeline.
        simulate(&argv(&[
            "--input",
            &dir,
            "--app",
            "pagerank",
            "--algorithm",
            "oblivious",
            "--policy",
            "default",
            "--compact",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_flag_errors_are_helpful() {
        // Growth families cannot stream.
        let err = generate(&argv(&[
            "--family",
            "ba",
            "--vertices",
            "100",
            "--shards",
            &tmp("ba_shards"),
        ]))
        .unwrap_err();
        assert!(err.0.contains("cannot stream"), "{err:?}");
        // A sink is required.
        let err = generate(&argv(&["--family", "powerlaw", "--vertices", "10"])).unwrap_err();
        assert!(err.0.contains("--out"), "{err:?}");
        // Shard input without --compact, and with a non-streaming algorithm.
        let dir = tmp("err_shards");
        std::fs::remove_dir_all(&dir).ok();
        generate(&argv(&[
            "--family",
            "gnm",
            "--vertices",
            "50",
            "--edges",
            "200",
            "--shards",
            &dir,
        ]))
        .unwrap();
        let err = simulate(&argv(&["--input", &dir, "--policy", "default"])).unwrap_err();
        assert!(err.0.contains("--compact"), "{err:?}");
        let err = simulate(&argv(&[
            "--input",
            &dir,
            "--policy",
            "default",
            "--algorithm",
            "hybrid",
            "--compact",
        ]))
        .unwrap_err();
        assert!(err.0.contains("shard stream"), "{err:?}");
        // Compact refuses mid-run migration.
        let err = simulate(&argv(&[
            "--input",
            &dir,
            "--policy",
            "default",
            "--algorithm",
            "random",
            "--compact",
            "--rebalance",
            "greedy",
        ]))
        .unwrap_err();
        assert!(err.0.contains("rebalance"), "{err:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(parse_cluster("nope").unwrap_err().0.contains("case1"));
        let err = parse_app("nope").unwrap_err();
        assert!(
            err.0.contains("pagerank") && err.0.contains("kcore"),
            "{err:?}"
        );
        assert!(parse_apps("").is_err());
        // `all` stays the six f64 apps; the reduced-precision PageRank is
        // reachable only by asking for it by name.
        assert_eq!(parse_apps("all").unwrap().len(), 6);
        assert!(parse_apps("all")
            .unwrap()
            .iter()
            .all(|a| a.name() != "pagerank_f32"));
        assert_eq!(parse_app("pagerank_f32").unwrap().name(), "pagerank_f32");
        assert_eq!(parse_apps("sssp,sssp").unwrap().len(), 1);
        assert!(parse_partitioner("nope").unwrap_err().0.contains("hybrid"));
        assert!(load_graph("/definitely/missing")
            .unwrap_err()
            .0
            .contains("cannot load"));
    }

    #[test]
    fn alpha_from_counts() {
        alpha(&argv(&["--vertices", "403394", "--edges", "3387388"])).unwrap();
    }

    #[test]
    fn serve_runs_with_defaults_scaled_down() {
        serve(&argv(&[
            "--requests",
            "60",
            "--tenants",
            "2",
            "--vertices",
            "500",
            "--seed",
            "5",
        ]))
        .unwrap();
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let err = serve(&argv(&["--requests", "0"])).unwrap_err();
        assert!(err.0.contains("--requests"), "{err:?}");
        let err = serve(&argv(&[
            "--requests",
            "10",
            "--tenants",
            "3",
            "--weights",
            "1,2",
            "--vertices",
            "100",
        ]))
        .unwrap_err();
        assert!(err.0.contains("entries"), "{err:?}");
        let err = serve(&argv(&[
            "--requests",
            "10",
            "--vertices",
            "100",
            "--max-batch",
            "0",
        ]))
        .unwrap_err();
        assert!(err.0.contains("--max-batch"), "{err:?}");
    }

    #[test]
    fn serve_trace_and_metrics_are_byte_identical_across_thread_counts() {
        // `.json` trace output is the sim-domain Chrome trace; like
        // `simulate`, it must not depend on host threading.
        let out = |threads: &str, tag: &str| {
            let trace = tmp(&format!("serve_{tag}.json"));
            let metrics = tmp(&format!("serve_m_{tag}.json"));
            serve(&argv(&[
                "--requests",
                "40",
                "--tenants",
                "2",
                "--vertices",
                "400",
                "--threads",
                threads,
                "--trace-out",
                &trace,
                "--metrics-out",
                &metrics,
            ]))
            .unwrap();
            (
                std::fs::read_to_string(trace).unwrap(),
                std::fs::read_to_string(metrics).unwrap(),
            )
        };
        let (trace1, metrics1) = out("1", "t1");
        let (trace4, metrics4) = out("4", "t4");
        assert_eq!(trace1, trace4, "serve trace must not depend on threads");
        assert_eq!(
            metrics1, metrics4,
            "serve metrics must not depend on threads"
        );
        assert!(trace1.contains("wave/"), "serve spans must reach the trace");
        assert!(metrics1.contains("serve/queue_depth"));
    }

    #[test]
    fn serve_jsonl_trace_feeds_the_offline_report() {
        let trace = tmp("serve_report.jsonl");
        serve(&argv(&[
            "--requests",
            "30",
            "--vertices",
            "400",
            "--trace-out",
            &trace,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        let analysis = hetgraph_engine::TraceAnalysis::from_jsonl(&text).unwrap();
        assert!(!analysis.render(3, None).is_empty());
    }
}
