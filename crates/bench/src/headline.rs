//! The abstract's aggregate claims, recomputed end-to-end.
//!
//! Paper: "a maximum speedup of 1.84x and 1.45x over a default system and
//! prior work, respectively. On average, it achieves 17.9% performance
//! improvement and 14.6% energy reduction as compared to prior
//! heterogeneity-aware work."

use hetgraph_cluster::Cluster;
use hetgraph_core::stats;
use hetgraph_partition::PartitionerKind;

use crate::cases::{energy_savings_over, profile_pool, run_matrix, speedups_over, CaseRow};
use crate::context::ExperimentContext;
use crate::output::{f3, pct, write_json};
use crate::policy::Policy;

/// Aggregate numbers mirrored against the paper's abstract.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Headline {
    /// Max speedup of CCR guidance over the default system (paper: 1.84x).
    pub max_speedup_vs_default: f64,
    /// Max speedup over prior work (paper: 1.45x).
    pub max_speedup_vs_prior: f64,
    /// Mean performance improvement over prior work (paper: 17.9 %).
    pub avg_improvement_vs_prior_pct: f64,
    /// Mean energy reduction vs prior work (paper: 14.6 %).
    pub avg_energy_reduction_vs_prior_pct: f64,
}

/// Recompute the headline over cases 2 and 3 (the heterogeneous local
/// clusters where prior work actually differs from the default; Case 1's
/// prior == default and would only dilute the comparison).
pub fn headline(ctx: &ExperimentContext) -> Headline {
    println!(
        "== Headline aggregates (cases 2 + 3), scale 1/{} ==\n",
        ctx.scale
    );
    let mut all_rows: Vec<CaseRow> = Vec::new();
    // The graph set is cluster-independent: the process-wide memo shares
    // one generation across both cases (and with the figure sweeps).
    let graphs = ctx.natural_graphs_shared();
    for cluster in [Cluster::case2(), Cluster::case3()] {
        let pool = profile_pool(&cluster, ctx);
        let mut rows = run_matrix(
            &cluster,
            &pool,
            &graphs,
            &PartitionerKind::ALL,
            &Policy::ALL,
            ctx.apps(),
            ctx.threads,
        );
        // Tag by cluster to keep (app, graph, partitioner) keys unique
        // across cases when aggregating.
        for r in &mut rows {
            r.graph = format!("{}::{}", cluster.machines()[0].name, r.graph);
        }
        all_rows.extend(rows);
    }

    let vs_default = speedups_over(&all_rows, Policy::Default, Policy::CcrGuided);
    let vs_prior = speedups_over(&all_rows, Policy::PriorWork, Policy::CcrGuided);
    let energy_vs_prior = energy_savings_over(&all_rows, Policy::PriorWork, Policy::CcrGuided);

    let result = Headline {
        max_speedup_vs_default: stats::fmax(vs_default.iter().copied()).unwrap_or(1.0),
        max_speedup_vs_prior: stats::fmax(vs_prior.iter().copied()).unwrap_or(1.0),
        avg_improvement_vs_prior_pct: 100.0 * (stats::geomean(&vs_prior) - 1.0),
        avg_energy_reduction_vs_prior_pct: 100.0 * stats::mean(&energy_vs_prior),
    };
    println!(
        "max speedup vs default: {}x (paper 1.84x)\n\
         max speedup vs prior:   {}x (paper 1.45x)\n\
         avg improvement vs prior: {} (paper 17.9%)\n\
         avg energy reduction vs prior: {} (paper 14.6%)",
        f3(result.max_speedup_vs_default),
        f3(result.max_speedup_vs_prior),
        pct(result.avg_improvement_vs_prior_pct),
        pct(result.avg_energy_reduction_vs_prior_pct),
    );
    write_json(ctx.out_dir.as_deref(), "headline", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_directions_match_paper() {
        let h = headline(&ExperimentContext::at_scale(2048));
        assert!(
            h.max_speedup_vs_default > 1.2,
            "vs default {}",
            h.max_speedup_vs_default
        );
        assert!(
            h.max_speedup_vs_prior > 1.0,
            "vs prior {}",
            h.max_speedup_vs_prior
        );
        assert!(h.avg_improvement_vs_prior_pct > 0.0);
        assert!(h.avg_energy_reduction_vs_prior_pct > 0.0);
    }
}
