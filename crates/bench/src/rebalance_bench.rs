//! Dynamic-rebalancing baseline (`BENCH_rebalance.json`).
//!
//! The tentpole scenario for mutable placement: a CCR-weighted static
//! partition is optimal only while machines keep their profiled speed.
//! This experiment runs PageRank on the frozen power-law fixture twice
//! per scenario — once with the placement pinned (the paper's static CCR
//! flow) and once with the greedy straggler-driven rebalancer allowed to
//! migrate edges between supersteps — and records both simulated
//! makespans:
//!
//! - **steady** — no perturbation. The CCR weights already balance the
//!   cluster, so the rebalancer should stand down (or at worst pay a
//!   negligible, amortized cost).
//! - **slowdown** — the most-loaded machine drops to a fraction of its
//!   nominal clock mid-run ([`SLOWDOWN_SCALE`] from superstep
//!   [`SLOWDOWN_FROM_STEP`], no recovery). Static placement eats the
//!   straggler every remaining step; migration pays a one-time transfer
//!   to shed load off it.
//!
//! Every number is simulated time, so rows are bit-reproducible for a
//! given `--scale` — no wall-clock normalization is needed. `check` gates
//! CI on the committed baseline: the slowdown scenario must keep beating
//! static placement ([`check`] for the exact rules).

use std::path::Path;
use std::time::Instant;

use hetgraph_apps::{AnyApp, PageRank};
use hetgraph_cluster::{Cluster, PerturbationSchedule};
use hetgraph_engine::{DistributedGraph, GreedyRebalance, SimEngine};
use hetgraph_gen::{PowerLawConfig, ProxySet};
use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};
use hetgraph_profile::CcrPool;
use serde::Value;

use crate::context::ExperimentContext;
use crate::output;

/// Clock multiplier of the perturbed machine in the slowdown scenario.
pub const SLOWDOWN_SCALE: f64 = 0.4;

/// Superstep at which the slowdown begins (it never recovers).
pub const SLOWDOWN_FROM_STEP: usize = 2;

/// One scenario's static-vs-rebalanced comparison (simulated seconds).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScenarioRow {
    /// Scenario key: `steady` or `slowdown`.
    pub scenario: String,
    /// Makespan with the placement pinned for the whole run.
    pub static_makespan_s: f64,
    /// Makespan with the greedy rebalancer active.
    pub rebalanced_makespan_s: f64,
    /// `static_makespan_s / rebalanced_makespan_s` (>1 = migration won).
    pub improvement: f64,
    /// Migration batches the policy committed.
    pub migrations: usize,
    /// Total edges migrated across all batches.
    pub edges_moved: usize,
    /// Total simulated seconds charged for the migrations.
    pub migration_cost_s: f64,
}

/// The `BENCH_rebalance.json` payload.
#[derive(Debug, serde::Serialize)]
pub struct RebalanceBench {
    /// Graph downscale factor the fixture was generated at.
    pub scale: u32,
    /// Vertices in the fixture.
    pub vertices: u32,
    /// Edges in the fixture.
    pub edges: usize,
    /// Simulated machines (Cluster::case2).
    pub machines: usize,
    /// Application under test.
    pub app: String,
    /// Machine index the slowdown scenario perturbs (the most-loaded one).
    pub slowdown_machine: usize,
    /// Clock multiplier of the perturbed machine.
    pub slowdown_scale: f64,
    /// Superstep the slowdown starts at.
    pub slowdown_from_step: usize,
    /// Scenario comparisons, `steady` first.
    pub rows: Vec<ScenarioRow>,
    /// Total experiment wall-clock, seconds.
    pub total_wall_s: f64,
}

/// Run one static-vs-rebalanced comparison under `schedule`.
fn scenario(
    name: &str,
    engine: &SimEngine<'_>,
    dist: &DistributedGraph<'_>,
    program: &PageRank,
    threads: usize,
) -> ScenarioRow {
    let static_report = engine.run_on_with_threads(dist, program, threads).report;
    // Rebalancing mutates placement, so it runs on its own copy-on-write
    // clone of the shared view (the original stays pinned).
    let mut rebal_dist = dist.clone();
    let mut policy = GreedyRebalance::new();
    let rebal_report = engine
        .run_rebalanced_on_with_threads(&mut rebal_dist, program, threads, &mut policy)
        .report;
    ScenarioRow {
        scenario: name.to_string(),
        static_makespan_s: static_report.makespan_s,
        rebalanced_makespan_s: rebal_report.makespan_s,
        improvement: static_report.makespan_s / rebal_report.makespan_s,
        migrations: policy.events().len(),
        edges_moved: policy.events().iter().map(|e| e.edges_moved).sum(),
        migration_cost_s: policy.events().iter().map(|e| e.cost_s).sum(),
    }
}

/// Run the rebalance baseline, print its table, and (with `--out`) write
/// `BENCH_rebalance.json`.
pub fn rebalance(ctx: &ExperimentContext) -> RebalanceBench {
    let t0 = Instant::now();
    let scale = ctx.scale;
    // Same fixture family and scale convention as the other baselines.
    let n = (1_000_000 / scale).max(4_000);

    println!("== rebalance baseline (scale {scale}) ==");
    let graph = PowerLawConfig::new(n, 2.1).generate(42);
    let edges = graph.num_edges();
    let cluster = Cluster::case2();
    let app = AnyApp::pagerank();
    // Static CCR flow, as in `hetgraph simulate --policy ccr`: proxy-
    // profile the cluster at a fixed small proxy scale (independent of
    // the fixture scale, so the weights are identical across scales),
    // then weight the partitioner by the measured CCRs.
    let proxy_scale = 640u32.max(scale);
    let pool = CcrPool::profile_with_threads(
        &cluster,
        &ProxySet::standard(proxy_scale),
        std::slice::from_ref(&app),
        ctx.threads,
    );
    let weights = MachineWeights::from_ccr(pool.ccr(app.name()).expect("just profiled").ratios());
    let assignment = RandomHash::new().partition(&graph, &weights);
    let dist = DistributedGraph::new_with_threads(&graph, &assignment, ctx.threads)
        .expect("assignment must cover the graph");
    // Slow the machine the static placement leans on hardest: that is
    // where a mid-run throttle hurts a pinned placement the most.
    let slowdown_machine = assignment
        .edges_per_machine()
        .iter()
        .enumerate()
        .max_by_key(|&(_, &e)| e)
        .map(|(i, _)| i)
        .expect("cluster has machines");
    println!(
        "fixture: power-law n={n} alpha=2.1 seed=42 ({edges} edges), case2, \
         ccr random_hash; slowdown: machine {slowdown_machine} at \
         {SLOWDOWN_SCALE}x clock from step {SLOWDOWN_FROM_STEP}"
    );

    let program = PageRank::new(10);
    let steady_engine = SimEngine::new(&cluster);
    let schedule = PerturbationSchedule::new().slowdown(
        slowdown_machine,
        SLOWDOWN_FROM_STEP,
        None,
        SLOWDOWN_SCALE,
    );
    let slow_engine = SimEngine::new(&cluster).with_perturbations(&schedule);

    let rows = vec![
        scenario("steady", &steady_engine, &dist, &program, ctx.threads),
        scenario("slowdown", &slow_engine, &dist, &program, ctx.threads),
    ];

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                output::f3(r.static_makespan_s),
                output::f3(r.rebalanced_makespan_s),
                format!("{:.3}x", r.improvement),
                r.migrations.to_string(),
                r.edges_moved.to_string(),
                output::f3(r.migration_cost_s),
            ]
        })
        .collect();
    output::print_table(
        &[
            "scenario",
            "static_s",
            "rebalanced_s",
            "improvement",
            "batches",
            "edges_moved",
            "migration_s",
        ],
        &cells,
    );

    let bench = RebalanceBench {
        scale,
        vertices: n,
        edges,
        machines: cluster.len(),
        app: app.name().to_string(),
        slowdown_machine,
        slowdown_scale: SLOWDOWN_SCALE,
        slowdown_from_step: SLOWDOWN_FROM_STEP,
        rows,
        total_wall_s: t0.elapsed().as_secs_f64(),
    };
    output::write_json_with_manifest(
        ctx.out_dir.as_deref(),
        "BENCH_rebalance",
        &bench,
        &output::RunManifest::collect(42, ctx.threads, scale, bench.total_wall_s),
    );
    bench
}

/// Fraction of the baseline's slowdown-scenario improvement a fresh run
/// must retain. Simulated ratios are exact at the baseline's scale; the
/// headroom only covers `--check --scale N` smoke runs at other scales.
pub const CHECK_TOLERANCE: f64 = 0.95;

/// How much the steady scenario may regress before the gate fails:
/// rebalancing must never cost more than 2% when nothing goes wrong.
pub const STEADY_FLOOR: f64 = 0.98;

/// Re-run the rebalance baseline and compare it against the committed
/// `BENCH_rebalance.json` at `baseline_path`, failing when:
///
/// - the fresh slowdown scenario does not beat static placement outright
///   (`improvement <= 1`), or committed no migration at all, or
/// - its improvement drops below [`CHECK_TOLERANCE`] of the baseline's, or
/// - the fresh steady scenario falls below [`STEADY_FLOOR`] (the
///   rebalancer hurt a healthy run).
///
/// All gated quantities are simulated-time ratios, so the gate is
/// host-speed independent by construction. The fresh run never writes
/// output, regardless of `ctx.out_dir`.
pub fn check(ctx: &ExperimentContext, baseline_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = serde_json::from_str(&text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    let mut fresh_ctx = ctx.clone();
    fresh_ctx.out_dir = None;
    let fresh = rebalance(&fresh_ctx);
    println!(
        "\n== rebalance bench check vs {} ==",
        baseline_path.display()
    );
    let failures = check_against(&fresh, &baseline)?;
    if failures.is_empty() {
        println!("rebalance bench check: OK (migration still beats static under slowdown)");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// The pure comparison core of [`check`]: fresh measurement vs parsed
/// baseline. `Err` means the baseline document is malformed; `Ok` carries
/// the (possibly empty) list of regression messages.
fn check_against(fresh: &RebalanceBench, baseline: &Value) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let base_slowdown = baseline_improvement(baseline, "slowdown")?;
    for row in &fresh.rows {
        match row.scenario.as_str() {
            "slowdown" => {
                if row.improvement <= 1.0 {
                    failures.push(format!(
                        "slowdown: rebalanced makespan {:.4}s does not beat static {:.4}s",
                        row.rebalanced_makespan_s, row.static_makespan_s
                    ));
                }
                if row.migrations == 0 {
                    failures.push("slowdown: the rebalancer committed no migration".to_string());
                }
                if row.improvement < CHECK_TOLERANCE * base_slowdown {
                    failures.push(format!(
                        "slowdown: improvement {:.3}x is below {CHECK_TOLERANCE} x \
                         baseline {base_slowdown:.3}x",
                        row.improvement
                    ));
                }
            }
            "steady" => {
                if row.improvement < STEADY_FLOOR {
                    failures.push(format!(
                        "steady: rebalancing cost a healthy run {:.1}% \
                         (improvement {:.3}x is below the {STEADY_FLOOR} floor)",
                        100.0 * (1.0 - row.improvement),
                        row.improvement
                    ));
                }
            }
            other => failures.push(format!("unknown fresh scenario {other:?}")),
        }
    }
    if !fresh.rows.iter().any(|r| r.scenario == "slowdown") {
        failures.push("fresh run has no slowdown scenario".to_string());
    }
    Ok(failures)
}

/// Extract one scenario's improvement ratio from a parsed baseline.
fn baseline_improvement(baseline: &Value, scenario: &str) -> Result<f64, String> {
    let rows = baseline
        .get("rows")
        .and_then(Value::as_seq)
        .ok_or("baseline is missing the rows array")?;
    for row in rows {
        if row.get("scenario").and_then(Value::as_str) == Some(scenario) {
            return row
                .get("improvement")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("baseline {scenario} row is missing improvement"));
        }
    }
    Err(format!("baseline has no {scenario} scenario"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_both_scenarios_and_slowdown_wins() {
        // Scale 32 is the smallest fixture where per-step compute is large
        // enough relative to the barrier for a migration to amortize.
        let ctx = ExperimentContext::at_scale(32);
        let bench = rebalance(&ctx);
        let names: Vec<&str> = bench.rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, ["steady", "slowdown"]);
        let slowdown = &bench.rows[1];
        assert!(slowdown.migrations > 0, "no migration under slowdown");
        assert!(
            slowdown.improvement > 1.0,
            "migration did not beat static: {slowdown:?}"
        );
        let steady = &bench.rows[0];
        assert!(
            steady.improvement >= STEADY_FLOOR,
            "rebalancing hurt a healthy run: {steady:?}"
        );
    }

    #[test]
    fn bench_is_deterministic_across_thread_budgets() {
        let r1 = rebalance(&ExperimentContext::at_scale(32).with_threads(1));
        let r4 = rebalance(&ExperimentContext::at_scale(32).with_threads(4));
        for (a, b) in r1.rows.iter().zip(&r4.rows) {
            assert_eq!(a.static_makespan_s, b.static_makespan_s, "{}", a.scenario);
            assert_eq!(
                a.rebalanced_makespan_s, b.rebalanced_makespan_s,
                "{}",
                a.scenario
            );
            assert_eq!(a.edges_moved, b.edges_moved, "{}", a.scenario);
        }
    }

    /// A fabricated measurement with a healthy slowdown win.
    fn fake_bench() -> RebalanceBench {
        RebalanceBench {
            scale: 1,
            vertices: 1_000_000,
            edges: 5_000_000,
            machines: 2,
            app: "pagerank".to_string(),
            slowdown_machine: 0,
            slowdown_scale: SLOWDOWN_SCALE,
            slowdown_from_step: SLOWDOWN_FROM_STEP,
            rows: vec![
                ScenarioRow {
                    scenario: "steady".to_string(),
                    static_makespan_s: 10.0,
                    rebalanced_makespan_s: 10.0,
                    improvement: 1.0,
                    migrations: 0,
                    edges_moved: 0,
                    migration_cost_s: 0.0,
                },
                ScenarioRow {
                    scenario: "slowdown".to_string(),
                    static_makespan_s: 20.0,
                    rebalanced_makespan_s: 16.0,
                    improvement: 1.25,
                    migrations: 2,
                    edges_moved: 100_000,
                    migration_cost_s: 0.05,
                },
            ],
            total_wall_s: 1.0,
        }
    }

    fn to_baseline(bench: &RebalanceBench) -> Value {
        serde_json::from_str(&serde_json::to_string_pretty(bench).unwrap()).unwrap()
    }

    #[test]
    fn check_accepts_a_run_against_its_own_baseline() {
        let bench = fake_bench();
        let failures = check_against(&bench, &to_baseline(&bench)).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_flags_every_regression_class() {
        let baseline = to_baseline(&fake_bench());
        let mut regressed = fake_bench();
        regressed.rows[0].improvement = 0.90; // rebalancer hurt steady run
        regressed.rows[1].improvement = 0.99; // slowdown loss
        regressed.rows[1].migrations = 0; // and it never migrated
        let failures = check_against(&regressed, &baseline).unwrap();
        assert_eq!(failures.len(), 4, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("does not beat static")));
        assert!(failures.iter().any(|f| f.contains("no migration")));
        assert!(failures.iter().any(|f| f.contains("below the")));
        // A small within-tolerance dip on slowdown passes.
        let mut dipped = fake_bench();
        dipped.rows[1].improvement = 1.20;
        assert!(check_against(&dipped, &baseline).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_malformed_baselines() {
        let bench = fake_bench();
        let err = check_against(&bench, &Value::Null).unwrap_err();
        assert!(err.contains("rows"), "{err}");
    }
}
