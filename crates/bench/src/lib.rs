//! # hetgraph-bench
//!
//! The evaluation harness: one experiment function per table/figure of the
//! paper, shared by the `exp_*` binaries, the integration tests, and the
//! Criterion micro-benchmarks.
//!
//! Every experiment takes an [`ExperimentContext`] carrying the graph
//! *scale* (1 = the paper's full-size graphs; the default 64 keeps runs
//! laptop-sized) and prints the same rows/series the paper reports, plus a
//! machine-readable JSON dump when an output directory is configured.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`tables::table1`] | Table I (machines) |
//! | [`tables::table2`] | Table II (graphs, fitted α) |
//! | [`tables::fig6`] | Fig 6 (power-law degree distribution) |
//! | [`accuracy::fig2`] | Fig 2 (estimated vs real speedup) |
//! | [`accuracy::fig8`] | Fig 8a/8b (CCR accuracy) |
//! | [`cases::fig9`] | Fig 9 (Case 1 runtimes) |
//! | [`cases::fig10`] | Fig 10 (Cases 2–3, runtime + energy) |
//! | [`cost_fig::fig11`] | Fig 11 (cost/perf Pareto) |
//! | [`headline::headline`] | the abstract's aggregate claims |
//! | [`ablation`] | beyond-paper sensitivity studies |
//! | [`partition_bench::partition`] | partition perf baseline (`BENCH_partition.json`) |
//! | [`engine_bench::engine`] | superstep-kernel perf baseline (`BENCH_engine.json`) |
//! | [`rebalance_bench::rebalance`] | static-vs-migration baseline (`BENCH_rebalance.json`) |
//! | [`scale_bench::scale`] | bounded-RSS scale run (`BENCH_scale.json`) |
//! | [`serve_bench::serve`] | query-serving baseline (`BENCH_serve.json`) |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod accuracy;
pub mod cases;
pub mod context;
pub mod cost_fig;
pub mod engine_bench;
pub mod headline;
pub mod output;
pub mod partition_bench;
pub mod policy;
pub mod rebalance_bench;
pub mod scale_bench;
pub mod serve_bench;
pub mod tables;

pub use context::ExperimentContext;
pub use policy::Policy;
