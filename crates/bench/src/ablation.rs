//! Sensitivity studies beyond the paper's figures.
//!
//! The paper makes several design choices without quantifying them; these
//! ablations fill the gaps DESIGN.md calls out:
//!
//! * [`proxy_size`] — how small can the proxy graphs get before CCR
//!   quality degrades? (The paper only says generation took 67 s total.)
//! * [`proxy_coverage`] — one proxy vs the three-α set: does covering the
//!   α range matter, or would any single power-law graph do?
//! * [`partitioner_quality`] — replication factor of all five partitioners
//!   across the Table II stand-ins (the classic PowerGraph/PowerLyra
//!   comparison the paper builds on).
//! * [`hybrid_threshold`] — Hybrid's high-degree threshold sweep.

use hetgraph_apps::{standard_apps, AnyApp};
use hetgraph_cluster::{catalog, Cluster};
use hetgraph_core::stats;
use hetgraph_gen::{ProxyGraph, ProxySet};
use hetgraph_partition::{
    Hybrid, MachineWeights, PartitionMetrics, Partitioner, PartitionerKind, RandomHash,
};
use hetgraph_profile::{AccuracyReport, CcrPool, FeedbackBalancer};

use crate::context::ExperimentContext;
use crate::output::{f3, pct, print_table, write_json};

/// CCR estimation error as a function of proxy graph size.
pub fn proxy_size(ctx: &ExperimentContext) -> Vec<(u32, f64)> {
    println!("== Ablation: proxy graph size vs CCR error ==\n");
    let shared = ctx.natural_graphs_shared();
    let real: Vec<_> = shared.iter().map(|(_, g)| g.clone()).collect();
    let machines = [
        catalog::c4_2xlarge(),
        catalog::c4_4xlarge(),
        catalog::c4_8xlarge(),
    ];
    let mut rows = Vec::new();
    // Proxy scales from tiny (1/8192 of full size = 390 vertices) to the
    // context's own scale.
    for scale in [8192u32, 2048, 512, ctx.scale.max(64)] {
        let report = AccuracyReport::evaluate(
            &catalog::c4_xlarge(),
            &machines,
            &standard_apps(),
            &ProxySet::standard(scale),
            &real,
        );
        rows.push((scale, report.proxy_error_pct()));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(s, e)| vec![format!("1/{s}"), format!("{}", 3_200_000u32 / s), pct(e)])
        .collect();
    print_table(&["proxy_scale", "proxy_vertices", "ccr_error"], &table);
    write_json(ctx.out_dir.as_deref(), "ablation_proxy_size", &rows);
    rows
}

/// One proxy vs the covering three-α set.
pub fn proxy_coverage(ctx: &ExperimentContext) -> Vec<(String, f64)> {
    println!("== Ablation: proxy α coverage vs CCR error ==\n");
    let shared = ctx.natural_graphs_shared();
    let real: Vec<_> = shared.iter().map(|(_, g)| g.clone()).collect();
    let machines = [
        catalog::c4_2xlarge(),
        catalog::c4_4xlarge(),
        catalog::c4_8xlarge(),
    ];
    let n = (3_200_000 / ctx.scale).max(2);
    let candidates: Vec<(String, ProxySet)> = vec![
        (
            "single_dense_1.95".into(),
            ProxySet::from_proxies(vec![ProxyGraph::new("one", n, 1.95, 1)]),
        ),
        (
            "single_mid_2.1".into(),
            ProxySet::from_proxies(vec![ProxyGraph::new("two", n, 2.10, 2)]),
        ),
        (
            "single_sparse_2.3".into(),
            ProxySet::from_proxies(vec![ProxyGraph::new("three", n, 2.30, 3)]),
        ),
        ("standard_set".into(), ProxySet::standard(ctx.scale)),
    ];
    let mut rows = Vec::new();
    for (name, set) in candidates {
        let report = AccuracyReport::evaluate(
            &catalog::c4_xlarge(),
            &machines,
            &standard_apps(),
            &set,
            &real,
        );
        rows.push((name, report.proxy_error_pct()));
    }
    let table: Vec<Vec<String>> = rows.iter().map(|(n, e)| vec![n.clone(), pct(*e)]).collect();
    print_table(&["proxy_set", "ccr_error"], &table);
    write_json(ctx.out_dir.as_deref(), "ablation_proxy_coverage", &rows);
    rows
}

/// Replication factor of every partitioner on every stand-in (uniform
/// weights, 4 machines — the classic ingress-quality comparison).
pub fn partitioner_quality(ctx: &ExperimentContext) -> Vec<(String, String, f64, f64)> {
    println!("== Ablation: partitioner replication factor & balance (4 machines) ==\n");
    let weights = MachineWeights::uniform(4);
    let mut rows = Vec::new();
    for (gname, graph) in ctx.natural_graphs_shared().iter() {
        for kind in PartitionerKind::ALL {
            let a = kind.build().partition(graph, &weights);
            let m = PartitionMetrics::compute(&a, &weights);
            rows.push((
                gname.clone(),
                kind.name().to_string(),
                m.replication_factor,
                m.max_normalized_load,
            ));
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(g, p, rf, bal)| vec![g.clone(), p.clone(), f3(*rf), f3(*bal)])
        .collect();
    print_table(
        &[
            "graph",
            "partitioner",
            "replication_factor",
            "max_norm_load",
        ],
        &table,
    );
    write_json(
        ctx.out_dir.as_deref(),
        "ablation_partitioner_quality",
        &rows,
    );
    rows
}

/// Hybrid's high-degree threshold sweep on the wiki stand-in (hubbiest).
pub fn hybrid_threshold(ctx: &ExperimentContext) -> Vec<(usize, f64)> {
    println!("== Ablation: Hybrid high-degree threshold ==\n");
    let graph = hetgraph_gen::NaturalGraph::Wiki.generate(ctx.scale);
    let weights = MachineWeights::uniform(4);
    let mut rows = Vec::new();
    for threshold in [0usize, 10, 30, 100, 300, 1000, usize::MAX] {
        let a = Hybrid::with_threshold(threshold).partition(&graph, &weights);
        rows.push((threshold, a.replication_factor()));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(t, rf)| {
            vec![
                if t == usize::MAX {
                    "inf".into()
                } else {
                    t.to_string()
                },
                f3(rf),
            ]
        })
        .collect();
    print_table(&["threshold", "replication_factor"], &table);
    write_json(ctx.out_dir.as_deref(), "ablation_hybrid_threshold", &rows);
    rows
}

/// How stale can a CCR pool get? Re-profile with a *different* proxy seed
/// set and compare pool-to-pool drift (the paper claims re-profiling is
/// only needed when machine types change; CCRs should be seed-stable).
pub fn ccr_stability(ctx: &ExperimentContext) -> f64 {
    println!("== Ablation: CCR stability across proxy regenerations ==\n");
    let cluster = Cluster::case2();
    let apps = standard_apps();
    let pool_a = CcrPool::profile(&cluster, &ProxySet::standard(ctx.scale), &apps);
    let alt: Vec<ProxyGraph> = ProxySet::standard(ctx.scale)
        .proxies()
        .iter()
        .map(|p| {
            ProxyGraph::new(
                p.name.clone(),
                p.num_vertices,
                p.alpha,
                p.seed ^ 0xdead_beef,
            )
        })
        .collect();
    let pool_b = CcrPool::profile(&cluster, &ProxySet::from_proxies(alt), &apps);
    let mut drifts = Vec::new();
    for app in apps {
        let a = pool_a.ccr(app.name()).expect("profiled").spread();
        let b = pool_b.ccr(app.name()).expect("profiled").spread();
        let drift = stats::relative_error(b, a);
        println!(
            "{}: spread {} vs {} (drift {})",
            app.name(),
            f3(a),
            f3(b),
            pct(100.0 * drift)
        );
        drifts.push(drift);
    }
    let mean_drift = stats::mean(&drifts);
    println!(
        "\nmean CCR drift across regenerations: {}",
        pct(100.0 * mean_drift)
    );
    write_json(
        ctx.out_dir.as_deref(),
        "ablation_ccr_stability",
        &mean_drift,
    );
    mean_drift
}

/// Static vs dynamic: how many Mizan-style migration epochs does each
/// starting point need to reach compute balance (imbalance ≤ 1.25)?
pub fn feedback_convergence(ctx: &ExperimentContext) -> Vec<(String, String, Option<usize>, f64)> {
    println!("== Ablation: migration epochs to balance, by initial weights ==\n");
    let cluster = Cluster::case2();
    let pool = CcrPool::profile(&cluster, &ctx.proxies(), &standard_apps());
    let graph = hetgraph_gen::NaturalGraph::Citation.generate(ctx.scale);
    let balancer = FeedbackBalancer::default();
    let mut rows = Vec::new();
    for app in [AnyApp::pagerank(), AnyApp::connected_components()] {
        let starts: Vec<(String, MachineWeights)> = vec![
            ("default".into(), MachineWeights::uniform(cluster.len())),
            (
                "prior_work".into(),
                MachineWeights::from_thread_counts(&cluster),
            ),
            (
                "ccr_guided".into(),
                MachineWeights::from_ccr(pool.ccr(app.name()).expect("profiled").ratios()),
            ),
        ];
        for (name, w) in starts {
            let history = balancer.run(&cluster, &graph, &app, &RandomHash::new(), w);
            let epochs = FeedbackBalancer::epochs_to_balance(&history, 1.25);
            let final_mk = history.last().expect("non-empty").makespan_s;
            rows.push((app.name().to_string(), name, epochs, final_mk));
        }
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(app, start, epochs, mk)| {
            vec![
                app.clone(),
                start.clone(),
                epochs.map_or("never".into(), |e| e.to_string()),
                f3(*mk),
            ]
        })
        .collect();
    print_table(
        &[
            "app",
            "initial_weights",
            "epochs_to_balance",
            "final_makespan_s",
        ],
        &table,
    );
    println!(
        "\nReading: a good static estimate (CCR) removes the need for dynamic\n\
         migration epochs — the paper's argument against Mizan-style systems."
    );
    write_json(ctx.out_dir.as_deref(), "ablation_feedback", &rows);
    rows
}

/// Frequency sweep: how does the CCR-vs-prior gap grow as the tiny node's
/// clock drops (projecting ever-wimpier future nodes, paper Section V-B-3)?
pub fn frequency_sweep(ctx: &ExperimentContext) -> Vec<(f64, f64, f64)> {
    println!("== Ablation: tiny-node frequency sweep (Case 3 projection) ==\n");
    let graph = hetgraph_gen::NaturalGraph::Citation.generate(ctx.scale);
    let mut rows = Vec::new();
    for freq in [2.5f64, 2.1, 1.8, 1.5, 1.2] {
        let tiny = catalog::tiny_arm().at_frequency(freq, format!("tiny_{freq}"));
        let cluster = Cluster::new(vec![tiny, catalog::xeon_l()]);
        let pool = CcrPool::profile(&cluster, &ctx.proxies(), &[AnyApp::pagerank()]);
        let engine = hetgraph_engine::SimEngine::new(&cluster);
        let pagerank = AnyApp::pagerank();
        let mk = |w: &MachineWeights| {
            let a = RandomHash::new().partition(&graph, w);
            pagerank.run(&engine, &graph, &a).makespan_s
        };
        let t_default = mk(&MachineWeights::uniform(2));
        let t_prior = mk(&MachineWeights::from_thread_counts(&cluster));
        let t_ccr = mk(&MachineWeights::from_ccr(
            pool.ccr("pagerank").expect("profiled").ratios(),
        ));
        rows.push((freq, t_default / t_prior, t_default / t_ccr));
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|&(f, sp, sc)| vec![format!("{f:.1} GHz"), f3(sp), f3(sc)])
        .collect();
    print_table(&["tiny_freq", "prior_speedup", "ccr_speedup"], &table);
    println!(
        "\nReading: the wimpier the node, the further real capability drifts\n\
         from thread counts, and the larger CCR guidance's edge over prior work."
    );
    write_json(ctx.out_dir.as_deref(), "ablation_frequency_sweep", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioner_quality_orders_sensibly() {
        let rows = partitioner_quality(&ExperimentContext::at_scale(2048));
        // Random hash must have the worst (highest) replication factor on
        // at least one graph relative to oblivious.
        let rf = |graph: &str, part: &str| {
            rows.iter()
                .find(|(g, p, _, _)| g == graph && p == part)
                .map(|&(_, _, rf, _)| rf)
                .expect("row")
        };
        assert!(rf("social_network", "oblivious") < rf("social_network", "random"));
    }

    #[test]
    fn hybrid_threshold_extremes() {
        let rows = hybrid_threshold(&ExperimentContext::at_scale(2048));
        assert_eq!(rows.len(), 7);
        // All thresholds produce valid replication factors >= 1.
        assert!(rows.iter().all(|&(_, rf)| rf >= 1.0));
    }

    #[test]
    fn ccr_is_stable_across_seeds() {
        let drift = ccr_stability(&ExperimentContext::at_scale(4096));
        assert!(drift < 0.15, "CCR drift {drift} too high");
    }

    #[test]
    fn frequency_sweep_gap_grows_as_node_wimpifies() {
        let rows = frequency_sweep(&ExperimentContext::at_scale(2048));
        assert_eq!(rows.len(), 5);
        // At every frequency the CCR speedup should at least match prior.
        for &(f, prior, ccr) in &rows {
            assert!(
                ccr >= prior * 0.97,
                "at {f} GHz: ccr {ccr} vs prior {prior}"
            );
        }
        // And the gap at the wimpiest setting should exceed the gap at the
        // fastest setting.
        let gap_fast = rows.first().unwrap().2 - rows.first().unwrap().1;
        let gap_wimpy = rows.last().unwrap().2 - rows.last().unwrap().1;
        assert!(
            gap_wimpy >= gap_fast,
            "gap should grow: fast {gap_fast} vs wimpy {gap_wimpy}"
        );
    }

    #[test]
    fn feedback_ablation_runs() {
        let rows = feedback_convergence(&ExperimentContext::at_scale(2048));
        assert_eq!(rows.len(), 6);
        // CCR-guided starts balanced (epoch 0) for at least one app.
        assert!(rows
            .iter()
            .any(|(_, start, epochs, _)| start == "ccr_guided" && *epochs == Some(0)));
    }
}
