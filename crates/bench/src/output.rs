//! Plain-text table printing and JSON result dumping.

use std::path::Path;

/// Print a fixed-width table: a header row and data rows.
///
/// # Panics
/// Panics if any row's length differs from the header's.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.to_vec());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row.iter().map(|s| s.as_str()).collect());
    }
}

/// Serialize `value` as pretty JSON into `dir/name.json` (creating the
/// directory), if `dir` is provided. Errors are reported, not fatal — a
/// read-only filesystem must not kill an experiment run.
pub fn write_json<T: serde::Serialize>(dir: Option<&Path>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Provenance sidecar written next to every `BENCH_*.json` payload:
/// enough to reproduce — or discount — a number later (which commit,
/// which fixture seed, how many threads, how long, how much memory).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RunManifest {
    /// Commit SHA from `.git/HEAD` (or `GITHUB_SHA` in CI); `None` when
    /// neither is discoverable.
    pub git_sha: Option<String>,
    /// Fixture RNG seed the benchmark's graphs were generated from.
    pub seed: u64,
    /// Host thread budget the run used.
    pub threads: usize,
    /// Graph downscale factor of the run's context.
    pub scale: u32,
    /// End-to-end host wall-clock of the phase, seconds.
    pub wall_s: f64,
    /// Peak resident set (`VmHWM` from `/proc/self/status`), bytes;
    /// `None` on platforms without procfs.
    pub peak_rss_bytes: Option<u64>,
}

impl RunManifest {
    /// Collect the manifest for a finished phase: reads the git SHA and
    /// peak RSS from the environment, takes the rest from the caller.
    pub fn collect(seed: u64, threads: usize, scale: u32, wall_s: f64) -> Self {
        RunManifest {
            git_sha: git_sha(),
            seed,
            threads,
            scale,
            wall_s,
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// Write a `BENCH_*` payload plus its provenance sidecar
/// (`{name}.manifest.json`), under [`write_json`]'s non-fatal contract.
pub fn write_json_with_manifest<T: serde::Serialize>(
    dir: Option<&Path>,
    name: &str,
    value: &T,
    manifest: &RunManifest,
) {
    write_json(dir, name, value);
    write_json(dir, &format!("{name}.manifest"), manifest);
}

/// The current commit SHA without shelling out: walk up from the working
/// directory to the first `.git/HEAD`, dereference one level of `ref:`
/// indirection (consulting `packed-refs` when the loose ref is absent),
/// and fall back to `GITHUB_SHA`.
fn git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok();
    while let Some(d) = dir {
        let git = d.join(".git");
        if let Ok(text) = std::fs::read_to_string(git.join("HEAD")) {
            let text = text.trim();
            let Some(refname) = text.strip_prefix("ref: ") else {
                return Some(text.to_string()); // detached HEAD: a bare SHA
            };
            if let Ok(sha) = std::fs::read_to_string(git.join(refname)) {
                return Some(sha.trim().to_string());
            }
            if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
                for line in packed.lines().filter(|l| !l.starts_with(['#', '^'])) {
                    if let Some((sha, name)) = line.split_once(' ') {
                        if name.trim() == refname {
                            return Some(sha.to_string());
                        }
                    }
                }
            }
            break;
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    std::env::var("GITHUB_SHA").ok().filter(|s| !s.is_empty())
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
///
/// Public so the scale benchmark can snapshot the high-water mark after
/// each representation's pipeline, not just at manifest time.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Format a float with 3 decimals (the tables' standard cell format).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(12.34), "12.3%");
    }

    #[test]
    fn print_table_accepts_consistent_rows() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn print_table_rejects_ragged_rows() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("hetgraph_bench_test");
        write_json(Some(dir.as_path()), "sample", &vec![1, 2, 3]);
        let read = std::fs::read_to_string(dir.join("sample.json")).unwrap();
        assert!(read.contains('2'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_none_is_noop() {
        write_json(None, "x", &1);
    }

    #[test]
    fn run_manifest_reads_the_environment() {
        let m = RunManifest::collect(42, 8, 64, 1.5);
        assert_eq!((m.seed, m.threads, m.scale), (42, 8, 64));
        assert_eq!(m.wall_s, 1.5);
        // This test runs inside the repo on Linux: both probes must hit.
        let sha = m.git_sha.as_deref().expect("repo has a .git/HEAD");
        assert_eq!(sha.len(), 40, "full hex SHA, got {sha:?}");
        assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "{sha:?}");
        let rss = m.peak_rss_bytes.expect("procfs has VmHWM");
        assert!(rss > 1024 * 1024, "peak RSS {rss} implausibly small");
    }

    #[test]
    fn manifest_sidecar_lands_next_to_the_payload() {
        let dir = std::env::temp_dir().join("hetgraph_manifest_test");
        let m = RunManifest::collect(7, 2, 128, 0.25);
        write_json_with_manifest(Some(dir.as_path()), "BENCH_sample", &vec![1], &m);
        let side = std::fs::read_to_string(dir.join("BENCH_sample.manifest.json")).unwrap();
        let v = serde_json::from_str(&side).unwrap();
        assert_eq!(v.get("seed").and_then(|x| x.as_u64()), Some(7));
        assert_eq!(v.get("threads").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("scale").and_then(|x| x.as_u64()), Some(128));
        assert_eq!(v.get("wall_s").and_then(|x| x.as_f64()), Some(0.25));
        assert_eq!(
            v.get("git_sha").and_then(|x| x.as_str()),
            m.git_sha.as_deref()
        );
        assert!(dir.join("BENCH_sample.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
