//! Plain-text table printing and JSON result dumping.

use std::path::Path;

/// Print a fixed-width table: a header row and data rows.
///
/// # Panics
/// Panics if any row's length differs from the header's.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(header.to_vec());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row.iter().map(|s| s.as_str()).collect());
    }
}

/// Serialize `value` as pretty JSON into `dir/name.json` (creating the
/// directory), if `dir` is provided. Errors are reported, not fatal — a
/// read-only filesystem must not kill an experiment run.
pub fn write_json<T: serde::Serialize>(dir: Option<&Path>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[wrote {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a float with 3 decimals (the tables' standard cell format).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(12.34), "12.3%");
    }

    #[test]
    fn print_table_accepts_consistent_rows() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn print_table_rejects_ragged_rows() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("hetgraph_bench_test");
        write_json(Some(dir.as_path()), "sample", &vec![1, 2, 3]);
        let read = std::fs::read_to_string(dir.join("sample.json")).unwrap();
        assert!(read.contains('2'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_json_none_is_noop() {
        write_json(None, "x", &1);
    }
}
