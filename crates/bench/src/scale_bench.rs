//! The bounded-RSS scale benchmark behind `exp_scale` / `BENCH_scale.json`.
//!
//! Runs the full gen → partition → build → simulate pipeline twice over
//! the same edge set — once through the compressed streaming substrate
//! (shard directory → [`StreamPartitioner`] → [`CompactDistGraph`]) and
//! once through the plain in-memory path (`Graph` →
//! [`DistributedGraph`]) — and reports, per representation, the phase
//! walls, simulated edges/sec, the **resident structure bytes per edge**
//! (the audited quantity), and the process `VmHWM` snapshot.
//!
//! The fixture is a production-target R-MAT spec with the social-network
//! stand-in's skew character but 500M full-scale edges, so `--scale 10`
//! is the ~50M-edge run ROADMAP item 2 asks for. The committed
//! `BENCH_scale.json` is generated at that scale by `scripts/bench.sh`.
//!
//! ## What the `--check` gate compares
//!
//! Wall-clock rates are host-dependent and are *not* gated. The gate is
//! on memory, which is stable across hosts for a fixed (spec, seed,
//! scale):
//!
//! - the compact representation's resident bytes/edge must stay within
//!   the absolute [`RSS_BUDGET_BYTES_PER_EDGE`] budget,
//! - neither the compact bytes/edge nor its peak-RSS snapshot may
//!   regress more than 15 % over the committed baseline, and
//! - both pipelines must produce bitwise-identical `SimReport`s (the
//!   correctness contract that makes the memory comparison meaningful).
//!
//! `VmHWM` is a process-lifetime high-water mark, so the compact
//! pipeline runs *first*: its snapshot is unpolluted by the plain
//! structures, while the plain row's snapshot is an upper bound that
//! includes everything before it. Transient build buffers (the stream
//! partitioner's assignment, the varint fill lanes) exceed the 12 B/edge
//! structure budget while they are alive — the budget audits what stays
//! resident for the kernel, which is what bounds the largest graph a
//! host can *simulate*, and the manifest records the honest process peak
//! alongside it.
//!
//! [`StreamPartitioner`]: hetgraph_partition::StreamPartitioner

use std::path::{Path, PathBuf};
use std::time::Instant;

use hetgraph_apps::AnyApp;
use hetgraph_cluster::Cluster;
use hetgraph_engine::{CompactDistGraph, DistributedGraph, SimEngine, SimReport};
use hetgraph_gen::{GraphSpec, NaturalGraph, StreamingGenerator};
use hetgraph_partition::{MachineWeights, PartitionerKind};
use serde::Value;

use crate::context::ExperimentContext;
use crate::output::{self, f3, print_table};

/// Absolute resident-structure budget for the compact representation,
/// bytes per directed edge (vs ~40+ for the plain edge list + two
/// `usize`-offset CSRs + machine lanes it replaces).
pub const RSS_BUDGET_BYTES_PER_EDGE: f64 = 12.0;

/// Largest factor over the committed baseline the check accepts for the
/// compact bytes/edge and peak-RSS snapshot (>15 % regressions fail).
pub const CHECK_RSS_TOLERANCE: f64 = 1.15;

/// The scale experiment's fixture spec: the social-network stand-in's
/// R-MAT character (heavy skew, celebrity hubs) blown up to the
/// ROADMAP's production target of 500M edges at full scale, average
/// degree 20. `--scale 10` therefore generates the ~50M-edge run the
/// acceptance gate commits; the Table II specs stay untouched.
pub fn scale_target_spec() -> GraphSpec {
    GraphSpec {
        name: "target_social".to_string(),
        vertices: 25_000_000,
        edges: 500_000_000,
        probabilities: (0.57, 0.19, 0.19, 0.05),
        noise: 0.10,
        seed: 0xA3A2_0005,
    }
}

/// One representation's trip through the pipeline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScaleRow {
    /// `"compact"` (shard-fed, compressed) or `"plain"` (in-memory).
    pub repr: String,
    /// Generation wall: shard emission (compact) or in-memory build (plain).
    pub gen_s: f64,
    /// Partition wall: one streaming pass (compact) or the graph path (plain).
    pub partition_s: f64,
    /// Distributed-view construction wall.
    pub build_s: f64,
    /// PageRank simulation wall (single rep; informational, never gated).
    pub sim_s: f64,
    /// `edges / sim_s` — informational, never gated.
    pub sim_edges_per_sec: f64,
    /// Bytes of every O(V)+O(E) structure resident during the simulate
    /// phase (structure-derived, host-independent — the gated quantity).
    pub resident_bytes: usize,
    /// `resident_bytes / edges`.
    pub resident_bytes_per_edge: f64,
    /// `VmHWM` snapshot after this representation's pipeline finished.
    pub peak_rss_bytes: Option<u64>,
}

/// The decode-overhead measurement the tentpole asks for: the same
/// partitioned graph simulated through both adjacency representations,
/// on the ~5M-edge wiki fixture (at `--scale 10`; proportionally smaller
/// in test runs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FixtureComparison {
    /// Fixture graph name (always the wiki stand-in).
    pub name: String,
    /// Downscale factor the fixture was generated at.
    pub fixture_scale: u32,
    /// Directed edge count of the fixture.
    pub edges: usize,
    /// Best-of-reps plain-CSR PageRank wall.
    pub plain_sim_s: f64,
    /// Best-of-reps compact (decode-on-iterate) PageRank wall.
    pub compact_sim_s: f64,
    /// `compact_sim_s / plain_sim_s` — >1 means decode overhead costs
    /// more than the smaller cache footprint pays back on this host.
    pub compact_over_plain: f64,
    /// Whether the two representations' reports were bitwise identical.
    pub identical: bool,
}

/// The full `BENCH_scale.json` payload.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScaleBench {
    /// Downscale factor of [`scale_target_spec`] this run used.
    pub scale: u32,
    /// Vertex count at that scale.
    pub vertices: u32,
    /// Directed edge count at that scale.
    pub edges: usize,
    /// Machines in the partition (Case 2 cluster).
    pub machines: usize,
    /// One row per representation, compact first.
    pub rows: Vec<ScaleRow>,
    /// Whether the compact and plain pipelines produced bitwise-identical
    /// `SimReport`s.
    pub reports_identical: bool,
    /// The decode-overhead micro-comparison.
    pub fixture: FixtureComparison,
    /// End-to-end host wall of the whole benchmark.
    pub total_wall_s: f64,
}

/// Run the scale benchmark at `ctx.scale` and (with `--out`) write
/// `BENCH_scale.json` + its `RunManifest` sidecar.
///
/// # Panics
/// Panics on shard I/O failure or if the streamed and in-memory
/// pipelines disagree on the edge set (both would be bugs, not
/// environment conditions).
pub fn scale(ctx: &ExperimentContext) -> ScaleBench {
    let t0 = Instant::now();
    let spec = scale_target_spec();
    let cluster = Cluster::case2();
    let weights = MachineWeights::uniform(cluster.len());
    let engine = SimEngine::new(&cluster);
    let app = AnyApp::pagerank();
    let config = spec.scaled_config(ctx.scale);
    println!(
        "== exp_scale: {} at 1/{} ({} vertices, {} edges requested) ==\n",
        spec.name, ctx.scale, config.num_vertices, config.num_edges
    );

    // -- Compact pipeline: shards -> stream partition -> compact view. --
    // Runs first so its VmHWM snapshot excludes the plain structures.
    let shard_dir = scratch_shard_dir(ctx.scale);
    let t = Instant::now();
    let set = config
        .generate_shards(spec.seed, &shard_dir)
        .expect("shard emission to the scratch directory");
    let c_gen = t.elapsed().as_secs_f64();
    let edges = set.num_edges() as usize;

    let t = Instant::now();
    let streamer = PartitionerKind::Oblivious
        .build_stream()
        .expect("oblivious partitions edge-at-a-time");
    let assignment = streamer.partition_stream(set.num_vertices(), &weights, &mut set.stream());
    let c_part = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let compact =
        CompactDistGraph::from_edge_stream(set.num_vertices(), &assignment, || set.stream())
            .expect("stream edge count matches the assignment");
    let c_build = t.elapsed().as_secs_f64();
    // From here on the compact view owns everything the kernel reads.
    drop(assignment);
    std::fs::remove_dir_all(&shard_dir).ok();

    let t = Instant::now();
    let compact_report = app.run_compact_on_with_threads(&engine, &compact, ctx.threads);
    let c_sim = t.elapsed().as_secs_f64();
    let c_resident = compact.resident_bytes();
    let c_peak = output::peak_rss_bytes();
    drop(compact);

    // -- Plain pipeline: in-memory graph -> graph-path partition. --
    let t = Instant::now();
    let graph = config.generate(spec.seed);
    let p_gen = t.elapsed().as_secs_f64();
    assert_eq!(graph.num_edges(), edges, "stream and in-memory gen drifted");

    let t = Instant::now();
    let assignment = PartitionerKind::Oblivious
        .build()
        .partition(&graph, &weights);
    let p_part = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let dist = DistributedGraph::new_with_threads(&graph, &assignment, ctx.threads)
        .expect("assignment must cover the graph");
    let p_build = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let plain_report = app.run_on_with_threads(&engine, &dist, ctx.threads);
    let p_sim = t.elapsed().as_secs_f64();
    let p_resident = dist.resident_bytes();
    let p_peak = output::peak_rss_bytes();
    let reports_identical = compact_report == plain_report;
    drop(dist);
    drop(graph);

    let rows = vec![
        row(
            "compact",
            edges,
            [c_gen, c_part, c_build, c_sim],
            c_resident,
            c_peak,
        ),
        row(
            "plain",
            edges,
            [p_gen, p_part, p_build, p_sim],
            p_resident,
            p_peak,
        ),
    ];
    let fixture = fixture_comparison(ctx, &cluster, &engine, &app);

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.repr.clone(),
                f3(r.gen_s),
                f3(r.partition_s),
                f3(r.build_s),
                f3(r.sim_s),
                format!("{:.0}", r.sim_edges_per_sec),
                format!("{:.2}", r.resident_bytes_per_edge),
                r.peak_rss_bytes
                    .map_or("n/a".to_string(), |b| format!("{}", b / (1024 * 1024))),
            ]
        })
        .collect();
    print_table(
        &[
            "repr",
            "gen_s",
            "partition_s",
            "build_s",
            "sim_s",
            "sim_edges/s",
            "bytes/edge",
            "peak_rss_mib",
        ],
        &cells,
    );
    println!(
        "\nreports identical: {reports_identical} | decode overhead on {} ({} edges): \
         compact/plain sim = {}",
        fixture.name,
        fixture.edges,
        f3(fixture.compact_over_plain),
    );

    let bench = ScaleBench {
        scale: ctx.scale,
        vertices: set.num_vertices(),
        edges,
        machines: cluster.len(),
        rows,
        reports_identical,
        fixture,
        total_wall_s: t0.elapsed().as_secs_f64(),
    };
    output::write_json_with_manifest(
        ctx.out_dir.as_deref(),
        "BENCH_scale",
        &bench,
        &output::RunManifest::collect(spec.seed, ctx.threads, ctx.scale, bench.total_wall_s),
    );
    bench
}

fn row(
    repr: &str,
    edges: usize,
    // gen, partition, build, sim — pipeline order.
    phases_s: [f64; 4],
    resident_bytes: usize,
    peak_rss_bytes: Option<u64>,
) -> ScaleRow {
    let [gen_s, partition_s, build_s, sim_s] = phases_s;
    ScaleRow {
        repr: repr.to_string(),
        gen_s,
        partition_s,
        build_s,
        sim_s,
        sim_edges_per_sec: edges as f64 / sim_s.max(1e-9),
        resident_bytes,
        resident_bytes_per_edge: resident_bytes as f64 / edges.max(1) as f64,
        peak_rss_bytes,
    }
}

/// The decode-overhead comparison: PageRank over one partitioned graph
/// through both adjacency representations, best of two reps each. The
/// fixture is the wiki stand-in at `ctx.scale / 10` (so the committed
/// `--scale 10` run measures the full ~5M-edge headline fixture while
/// test contexts stay tiny).
fn fixture_comparison(
    ctx: &ExperimentContext,
    cluster: &Cluster,
    engine: &SimEngine<'_>,
    app: &AnyApp,
) -> FixtureComparison {
    let fixture_scale = (ctx.scale / 10).max(1);
    let graph = NaturalGraph::Wiki.generate(fixture_scale);
    let weights = MachineWeights::uniform(cluster.len());
    let assignment = PartitionerKind::Oblivious
        .build()
        .partition(&graph, &weights);
    let dist = DistributedGraph::new_with_threads(&graph, &assignment, ctx.threads)
        .expect("assignment must cover the graph");
    let compact = CompactDistGraph::from_dist(&dist);
    let mut plain_s = f64::INFINITY;
    let mut compact_s = f64::INFINITY;
    let mut plain_report: Option<SimReport> = None;
    let mut compact_report: Option<SimReport> = None;
    for _ in 0..2 {
        let t = Instant::now();
        plain_report = Some(app.run_on_with_threads(engine, &dist, ctx.threads));
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        compact_report = Some(app.run_compact_on_with_threads(engine, &compact, ctx.threads));
        compact_s = compact_s.min(t.elapsed().as_secs_f64());
    }
    FixtureComparison {
        name: "wiki".to_string(),
        fixture_scale,
        edges: graph.num_edges(),
        plain_sim_s: plain_s,
        compact_sim_s: compact_s,
        compact_over_plain: compact_s / plain_s.max(1e-9),
        identical: plain_report == compact_report,
    }
}

/// Scratch shard directory for one run; deleted before the simulate
/// phase (the shards have served their three replay passes by then).
fn scratch_shard_dir(scale: u32) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hetgraph_scale_shards_{}_{scale}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Re-run the benchmark and compare it against the committed
/// `BENCH_scale.json` at `baseline_path`, failing on memory regressions.
///
/// The fresh run adopts the *baseline's* scale (RSS comparisons are only
/// meaningful at matching fixture size) and never writes output. See the
/// module docs for the gate rules; throughput is informational only.
pub fn check(ctx: &ExperimentContext, baseline_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = serde_json::from_str(&text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    let base_scale = baseline
        .get("scale")
        .and_then(Value::as_u64)
        .ok_or("baseline is missing scale")? as u32;
    let mut fresh_ctx = ctx.clone();
    fresh_ctx.out_dir = None;
    fresh_ctx.scale = base_scale;
    let fresh = scale(&fresh_ctx);
    println!("\n== scale bench check vs {} ==", baseline_path.display());
    let failures = check_against(&fresh, &baseline)?;
    if failures.is_empty() {
        println!(
            "scale bench check: OK (compact {:.2} B/edge within the {RSS_BUDGET_BYTES_PER_EDGE} \
             budget and {:.0}% of baseline)",
            compact_row(&fresh).resident_bytes_per_edge,
            100.0 * (CHECK_RSS_TOLERANCE - 1.0),
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn compact_row(bench: &ScaleBench) -> &ScaleRow {
    bench
        .rows
        .iter()
        .find(|r| r.repr == "compact")
        .expect("scale() always emits a compact row")
}

/// The pure comparison core of [`check`]: fresh measurement vs parsed
/// baseline. `Err` means the baseline document is malformed; `Ok`
/// carries the (possibly empty) list of regression messages.
fn check_against(fresh: &ScaleBench, baseline: &Value) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    if !fresh.reports_identical {
        failures.push("compact and plain pipelines produced different SimReports".to_string());
    }
    if !fresh.fixture.identical {
        failures.push("fixture comparison reports diverged".to_string());
    }
    let compact = compact_row(fresh);
    if compact.resident_bytes_per_edge > RSS_BUDGET_BYTES_PER_EDGE {
        failures.push(format!(
            "compact resident structures at {:.2} bytes/edge exceed the \
             {RSS_BUDGET_BYTES_PER_EDGE} budget",
            compact.resident_bytes_per_edge
        ));
    }
    let base = baseline_compact_row(baseline)?;
    if compact.resident_bytes_per_edge > CHECK_RSS_TOLERANCE * base.bytes_per_edge {
        failures.push(format!(
            "compact bytes/edge {:.2} regressed more than {:.0}% over baseline {:.2}",
            compact.resident_bytes_per_edge,
            100.0 * (CHECK_RSS_TOLERANCE - 1.0),
            base.bytes_per_edge
        ));
    }
    if let (Some(fresh_peak), Some(base_peak)) = (compact.peak_rss_bytes, base.peak_rss_bytes) {
        if fresh_peak as f64 > CHECK_RSS_TOLERANCE * base_peak as f64 {
            failures.push(format!(
                "compact-phase peak RSS {fresh_peak} regressed more than {:.0}% over \
                 baseline {base_peak}",
                100.0 * (CHECK_RSS_TOLERANCE - 1.0)
            ));
        }
    }
    Ok(failures)
}

struct BaselineCompact {
    bytes_per_edge: f64,
    peak_rss_bytes: Option<u64>,
}

/// Extract the compact row's gated quantities from a parsed baseline.
fn baseline_compact_row(baseline: &Value) -> Result<BaselineCompact, String> {
    let rows = baseline
        .get("rows")
        .and_then(Value::as_seq)
        .ok_or("baseline is missing the rows array")?;
    let compact = rows
        .iter()
        .find(|r| r.get("repr").and_then(Value::as_str) == Some("compact"))
        .ok_or("baseline has no compact row")?;
    Ok(BaselineCompact {
        bytes_per_edge: compact
            .get("resident_bytes_per_edge")
            .and_then(Value::as_f64)
            .ok_or("baseline compact row is missing resident_bytes_per_edge")?,
        peak_rss_bytes: compact.get("peak_rss_bytes").and_then(Value::as_u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        // 1/20000 of the 500M-edge target: 1250 vertices, 25000 edges.
        ExperimentContext::at_scale(20_000).with_threads(1)
    }

    #[test]
    fn both_pipelines_agree_and_compact_is_smaller() {
        let bench = scale(&tiny_ctx());
        assert_eq!(bench.rows.len(), 2);
        assert_eq!(bench.rows[0].repr, "compact");
        assert_eq!(bench.rows[1].repr, "plain");
        assert!(bench.reports_identical, "SimReports must be bit-identical");
        assert!(bench.fixture.identical, "fixture reports must match");
        assert!(bench.edges > 10_000, "fixture unexpectedly small");
        let (c, p) = (&bench.rows[0], &bench.rows[1]);
        assert!(
            c.resident_bytes < p.resident_bytes / 2,
            "compact {} vs plain {}: compression should at least halve residency",
            c.resident_bytes,
            p.resident_bytes
        );
        assert!(
            c.resident_bytes_per_edge <= RSS_BUDGET_BYTES_PER_EDGE,
            "compact {:.2} B/edge blows the {RSS_BUDGET_BYTES_PER_EDGE} budget",
            c.resident_bytes_per_edge
        );
    }

    fn fake_bench() -> ScaleBench {
        let mk = |repr: &str, resident: usize| ScaleRow {
            repr: repr.to_string(),
            gen_s: 1.0,
            partition_s: 1.0,
            build_s: 1.0,
            sim_s: 1.0,
            sim_edges_per_sec: 1.0e6,
            resident_bytes: resident,
            resident_bytes_per_edge: resident as f64 / 1.0e6,
            peak_rss_bytes: Some(100 * 1024 * 1024),
        };
        ScaleBench {
            scale: 10,
            vertices: 50_000,
            edges: 1_000_000,
            machines: 2,
            rows: vec![mk("compact", 10_000_000), mk("plain", 40_000_000)],
            reports_identical: true,
            fixture: FixtureComparison {
                name: "wiki".to_string(),
                fixture_scale: 1,
                edges: 5_000_000,
                plain_sim_s: 1.0,
                compact_sim_s: 1.2,
                compact_over_plain: 1.2,
                identical: true,
            },
            total_wall_s: 10.0,
        }
    }

    fn to_baseline(bench: &ScaleBench) -> Value {
        serde_json::from_str(&serde_json::to_string_pretty(bench).unwrap()).unwrap()
    }

    #[test]
    fn check_accepts_a_run_against_its_own_baseline() {
        let bench = fake_bench();
        let failures = check_against(&bench, &to_baseline(&bench)).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_flags_budget_and_regressions() {
        let baseline = to_baseline(&fake_bench());
        let mut bad = fake_bench();
        bad.rows[0].resident_bytes_per_edge = 13.0; // over the absolute budget AND +30%
        bad.rows[0].peak_rss_bytes = Some(200 * 1024 * 1024); // +100%
        bad.reports_identical = false;
        bad.fixture.identical = false;
        let failures = check_against(&bad, &baseline).unwrap();
        assert_eq!(failures.len(), 5, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("budget")));
        assert!(failures.iter().any(|f| f.contains("bytes/edge")));
        assert!(failures.iter().any(|f| f.contains("peak RSS")));
        assert!(failures.iter().any(|f| f.contains("SimReports")));
        assert!(failures.iter().any(|f| f.contains("fixture")));
        // Within tolerance: 10% growth passes both relative gates.
        let mut noisy = fake_bench();
        noisy.rows[0].resident_bytes_per_edge *= 1.10;
        noisy.rows[0].peak_rss_bytes = Some(110 * 1024 * 1024);
        assert!(check_against(&noisy, &baseline).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_malformed_baselines() {
        let bench = fake_bench();
        assert!(check_against(&bench, &Value::Null)
            .unwrap_err()
            .contains("rows"));
        let no_compact = serde_json::from_str("{\"rows\": []}").unwrap();
        assert!(check_against(&bench, &no_compact)
            .unwrap_err()
            .contains("compact"));
    }

    #[test]
    fn target_spec_matches_the_roadmap_scale() {
        let spec = scale_target_spec();
        assert_eq!(spec.edges, 500_000_000);
        assert_eq!(spec.scaled_edges(10), 50_000_000, "scale-10 is the 50M run");
        assert!((spec.avg_degree() - 20.0).abs() < 1e-9);
    }
}
