//! Regenerates Fig 10: Cases 2-3 runtime + energy.
//!
//! Usage: `exp_fig10 [--scale N] [--out DIR] [--threads N] [--case 2|3]`
//! (default: both cases)

fn main() {
    let (ctx, rest) = hetgraph_bench::ExperimentContext::from_args_with(&["--case"]);
    let case = rest
        .iter()
        .position(|a| a == "--case")
        .and_then(|i| rest.get(i + 1))
        .map(|s| match s.parse::<u32>() {
            Ok(c @ (2 | 3)) => c,
            _ => {
                eprintln!("error: --case must be 2 or 3, got {s:?}");
                std::process::exit(2);
            }
        });
    match case {
        Some(c) => {
            hetgraph_bench::cases::fig10(&ctx, c);
        }
        None => {
            hetgraph_bench::cases::fig10(&ctx, 2);
            println!();
            hetgraph_bench::cases::fig10(&ctx, 3);
        }
    }
}
