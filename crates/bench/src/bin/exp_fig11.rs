//! Regenerates Fig 11: the cost/performance Pareto study.

fn main() {
    let ctx = hetgraph_bench::ExperimentContext::from_args();
    hetgraph_bench::cost_fig::fig11(&ctx);
}
