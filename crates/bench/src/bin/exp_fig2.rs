//! Regenerates Fig 2: estimated vs real speedup across c4 machines.

fn main() {
    let ctx = hetgraph_bench::ExperimentContext::from_args();
    hetgraph_bench::accuracy::fig2(&ctx);
}
