//! Regenerates Fig 6: the power-law degree distribution.

fn main() {
    let ctx = hetgraph_bench::ExperimentContext::from_args();
    hetgraph_bench::tables::fig6(&ctx);
}
