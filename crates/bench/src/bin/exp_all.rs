//! Runs every experiment in paper order (the one-shot reproduction).
//!
//! Usage: `exp_all [--scale N] [--out DIR] [--threads N] [--trace-dir DIR]
//! [--metrics-dir DIR]`
//!
//! With `--out DIR` this additionally emits `BENCH_sweep.json`: host
//! wall-clock per experiment phase at the configured thread count, plus a
//! single-thread re-run of the headline phase as the speedup-vs-serial
//! reference, so later PRs have a perf trajectory to regress against.
//!
//! With `--trace-dir DIR` a final phase writes Chrome `trace_event` files
//! for representative cells (profiling, partitioning, and the superstep
//! timeline on every case cluster) — open them in chrome://tracing or
//! ui.perfetto.dev. With `--metrics-dir DIR` the same phase writes each
//! case's sim-domain metrics snapshot as JSON and Prometheus text
//! exposition (`hetgraph report --metrics` ingests the JSON form).

use std::time::Instant;

use hetgraph_bench::ExperimentContext;

/// Host wall-clock of one experiment phase.
#[derive(serde::Serialize)]
struct PhaseTiming {
    phase: String,
    wall_s: f64,
}

/// The `BENCH_sweep.json` payload.
#[derive(serde::Serialize)]
struct BenchSweep {
    threads: usize,
    total_wall_s: f64,
    phases: Vec<PhaseTiming>,
    headline_wall_s: f64,
    headline_serial_wall_s: f64,
    headline_speedup_vs_serial: f64,
}

fn timed(phases: &mut Vec<PhaseTiming>, phase: &str, f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    let wall_s = t.elapsed().as_secs_f64();
    phases.push(PhaseTiming {
        phase: phase.to_string(),
        wall_s,
    });
    println!();
    wall_s
}

fn main() {
    let ctx = ExperimentContext::from_args();
    let mut phases = Vec::new();
    let t0 = Instant::now();

    timed(&mut phases, "table1", || {
        hetgraph_bench::tables::table1(&ctx);
    });
    timed(&mut phases, "table2", || {
        hetgraph_bench::tables::table2(&ctx);
    });
    timed(&mut phases, "fig2", || {
        hetgraph_bench::accuracy::fig2(&ctx);
    });
    timed(&mut phases, "fig6", || {
        hetgraph_bench::tables::fig6(&ctx);
    });
    timed(&mut phases, "fig8a", || {
        hetgraph_bench::accuracy::fig8(&ctx, "a");
    });
    timed(&mut phases, "fig8b", || {
        hetgraph_bench::accuracy::fig8(&ctx, "b");
    });
    timed(&mut phases, "fig9", || {
        hetgraph_bench::cases::fig9(&ctx);
    });
    timed(&mut phases, "fig10_case2", || {
        hetgraph_bench::cases::fig10(&ctx, 2);
    });
    timed(&mut phases, "fig10_case3", || {
        hetgraph_bench::cases::fig10(&ctx, 3);
    });
    timed(&mut phases, "fig11", || {
        hetgraph_bench::cost_fig::fig11(&ctx);
    });
    let headline_wall_s = timed(&mut phases, "headline", || {
        hetgraph_bench::headline::headline(&ctx);
    });
    timed(&mut phases, "ablation_proxy_size", || {
        hetgraph_bench::ablation::proxy_size(&ctx);
    });
    timed(&mut phases, "ablation_proxy_coverage", || {
        hetgraph_bench::ablation::proxy_coverage(&ctx);
    });
    timed(&mut phases, "ablation_partitioners", || {
        hetgraph_bench::ablation::partitioner_quality(&ctx);
    });
    timed(&mut phases, "ablation_threshold", || {
        hetgraph_bench::ablation::hybrid_threshold(&ctx);
    });
    timed(&mut phases, "ablation_stability", || {
        hetgraph_bench::ablation::ccr_stability(&ctx);
    });
    timed(&mut phases, "ablation_feedback", || {
        hetgraph_bench::ablation::feedback_convergence(&ctx);
    });
    timed(&mut phases, "ablation_frequency", || {
        hetgraph_bench::ablation::frequency_sweep(&ctx);
    });
    timed(&mut phases, "partition_bench", || {
        hetgraph_bench::partition_bench::partition(&ctx);
    });
    if ctx.trace_dir.is_some() || ctx.metrics_dir.is_some() {
        timed(&mut phases, "traces", || {
            hetgraph_bench::cases::write_traces(&ctx);
        });
    }

    if ctx.out_dir.is_some() {
        // Serial reference for the speedup column. The headline phase is
        // the representative sweep (cases 2 + 3, full matrix); its rows
        // are identical at any thread count, so only wall-clock differs.
        let headline_serial_wall_s = if ctx.threads > 1 {
            let mut serial = ctx.clone().with_threads(1);
            serial.out_dir = None; // reference run: don't rewrite results
            let t = Instant::now();
            hetgraph_bench::headline::headline(&serial);
            println!();
            t.elapsed().as_secs_f64()
        } else {
            headline_wall_s
        };
        let sweep = BenchSweep {
            threads: ctx.threads,
            total_wall_s: t0.elapsed().as_secs_f64(),
            phases,
            headline_wall_s,
            headline_serial_wall_s,
            headline_speedup_vs_serial: headline_serial_wall_s / headline_wall_s,
        };
        let manifest = hetgraph_bench::output::RunManifest::collect(
            42,
            ctx.threads,
            ctx.scale,
            sweep.total_wall_s,
        );
        hetgraph_bench::output::write_json_with_manifest(
            ctx.out_dir.as_deref(),
            "BENCH_sweep",
            &sweep,
            &manifest,
        );
    }
}
