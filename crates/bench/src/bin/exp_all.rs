//! Runs every experiment in paper order (the one-shot reproduction).

fn main() {
    let (ctx, _) = hetgraph_bench::ExperimentContext::from_args();
    hetgraph_bench::tables::table1(&ctx);
    println!();
    hetgraph_bench::tables::table2(&ctx);
    println!();
    hetgraph_bench::accuracy::fig2(&ctx);
    println!();
    hetgraph_bench::tables::fig6(&ctx);
    println!();
    hetgraph_bench::accuracy::fig8(&ctx, "a");
    println!();
    hetgraph_bench::accuracy::fig8(&ctx, "b");
    println!();
    hetgraph_bench::cases::fig9(&ctx);
    println!();
    hetgraph_bench::cases::fig10(&ctx, 2);
    println!();
    hetgraph_bench::cases::fig10(&ctx, 3);
    println!();
    hetgraph_bench::cost_fig::fig11(&ctx);
    println!();
    hetgraph_bench::headline::headline(&ctx);
    println!();
    hetgraph_bench::ablation::proxy_size(&ctx);
    println!();
    hetgraph_bench::ablation::proxy_coverage(&ctx);
    println!();
    hetgraph_bench::ablation::partitioner_quality(&ctx);
    println!();
    hetgraph_bench::ablation::hybrid_threshold(&ctx);
    println!();
    hetgraph_bench::ablation::ccr_stability(&ctx);
    println!();
    hetgraph_bench::ablation::feedback_convergence(&ctx);
    println!();
    hetgraph_bench::ablation::frequency_sweep(&ctx);
}
