//! Regenerates Fig 8a/8b: CCR estimation accuracy.
//!
//! Usage: `exp_fig8 [--scale N] [--out DIR] [--threads N] [--part a|b]`
//! (default: both parts)

fn main() {
    let (ctx, rest) = hetgraph_bench::ExperimentContext::from_args_with(&["--part"]);
    let part = rest
        .iter()
        .position(|a| a == "--part")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str());
    match part {
        Some(p) => {
            hetgraph_bench::accuracy::fig8(&ctx, p);
        }
        None => {
            hetgraph_bench::accuracy::fig8(&ctx, "a");
            println!();
            hetgraph_bench::accuracy::fig8(&ctx, "b");
        }
    }
}
