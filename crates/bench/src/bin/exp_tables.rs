//! Regenerates Table I, Table II, and Fig 6.
//!
//! Usage: `exp_tables [--scale N] [--out DIR] [--threads N] [--table 1|2|6]`

fn main() {
    let (ctx, rest) = hetgraph_bench::ExperimentContext::from_args_with(&["--table"]);
    let which = rest
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str());
    match which {
        Some("1") => {
            hetgraph_bench::tables::table1(&ctx);
        }
        Some("2") => {
            hetgraph_bench::tables::table2(&ctx);
        }
        Some("6") => {
            hetgraph_bench::tables::fig6(&ctx);
        }
        Some(other) => {
            eprintln!("error: unknown table {other:?}; expected 1, 2, or 6");
            std::process::exit(2);
        }
        None => {
            hetgraph_bench::tables::table1(&ctx);
            println!();
            hetgraph_bench::tables::table2(&ctx);
            println!();
            hetgraph_bench::tables::fig6(&ctx);
        }
    }
}
