//! Recomputes the abstract's aggregate claims.

fn main() {
    let (ctx, _) = hetgraph_bench::ExperimentContext::from_args();
    hetgraph_bench::headline::headline(&ctx);
}
