//! Recomputes the abstract's aggregate claims.
//!
//! Usage: `exp_headline [--scale N] [--out DIR] [--threads N]`

fn main() {
    let ctx = hetgraph_bench::ExperimentContext::from_args();
    let t = std::time::Instant::now();
    hetgraph_bench::headline::headline(&ctx);
    println!(
        "\n[host wall-clock: {:.2}s on {} thread{}]",
        t.elapsed().as_secs_f64(),
        ctx.threads,
        if ctx.threads == 1 { "" } else { "s" }
    );
}
