//! Runs the beyond-paper ablation studies.
//!
//! Usage: `exp_ablation [--scale N] [--out DIR] [--threads N]
//!         [--study proxy_size|proxy_coverage|partitioners|threshold|stability|feedback|frequency]`

const STUDIES: [&str; 7] = [
    "proxy_size",
    "proxy_coverage",
    "partitioners",
    "threshold",
    "stability",
    "feedback",
    "frequency",
];

fn main() {
    let (ctx, rest) = hetgraph_bench::ExperimentContext::from_args_with(&["--study"]);
    let study = rest
        .iter()
        .position(|a| a == "--study")
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str());
    if let Some(s) = study {
        if !STUDIES.contains(&s) {
            eprintln!(
                "error: unknown study {s:?}; expected one of {}",
                STUDIES.join(", ")
            );
            std::process::exit(2);
        }
    }
    let run_all = study.is_none();
    if run_all || study == Some("proxy_size") {
        hetgraph_bench::ablation::proxy_size(&ctx);
        println!();
    }
    if run_all || study == Some("proxy_coverage") {
        hetgraph_bench::ablation::proxy_coverage(&ctx);
        println!();
    }
    if run_all || study == Some("partitioners") {
        hetgraph_bench::ablation::partitioner_quality(&ctx);
        println!();
    }
    if run_all || study == Some("threshold") {
        hetgraph_bench::ablation::hybrid_threshold(&ctx);
        println!();
    }
    if run_all || study == Some("stability") {
        hetgraph_bench::ablation::ccr_stability(&ctx);
        println!();
    }
    if run_all || study == Some("feedback") {
        hetgraph_bench::ablation::feedback_convergence(&ctx);
        println!();
    }
    if run_all || study == Some("frequency") {
        hetgraph_bench::ablation::frequency_sweep(&ctx);
    }
}
