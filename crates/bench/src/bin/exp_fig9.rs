//! Regenerates Fig 9: Case 1 runtime comparison.

fn main() {
    let ctx = hetgraph_bench::ExperimentContext::from_args();
    hetgraph_bench::cases::fig9(&ctx);
}
