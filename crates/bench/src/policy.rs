//! The three load-balancing policies compared throughout the evaluation.

use hetgraph_cluster::Cluster;
use hetgraph_partition::MachineWeights;
use hetgraph_profile::CcrPool;

/// Which capability estimate drives the partitioner's weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Policy {
    /// Uniform split — the default PowerGraph behaviour.
    Default,
    /// Thread-count weights — LeBeane et al. (prior work).
    PriorWork,
    /// Proxy-profiled CCR weights — this paper.
    CcrGuided,
}

impl Policy {
    /// All three, in presentation order.
    pub const ALL: [Policy; 3] = [Policy::Default, Policy::PriorWork, Policy::CcrGuided];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Default => "default",
            Policy::PriorWork => "prior_work",
            Policy::CcrGuided => "ccr_guided",
        }
    }

    /// The machine weights this policy would feed the partitioner for
    /// `app` on `cluster`.
    ///
    /// # Panics
    /// Panics if `CcrGuided` is requested for an application missing from
    /// the pool (profiling must precede partitioning, as in the paper's
    /// flow of Fig 7b).
    pub fn weights(self, cluster: &Cluster, pool: &CcrPool, app: &str) -> MachineWeights {
        match self {
            Policy::Default => MachineWeights::uniform(cluster.len()),
            Policy::PriorWork => MachineWeights::from_thread_counts(cluster),
            Policy::CcrGuided => {
                let ccr = pool
                    .ccr(app)
                    .unwrap_or_else(|| panic!("no CCR profiled for application {app:?}"));
                MachineWeights::from_ccr(ccr.ratios())
            }
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_profile::CcrSet;

    #[test]
    fn default_is_uniform() {
        let c = Cluster::case2();
        let w = Policy::Default.weights(&c, &CcrPool::new(), "x");
        assert_eq!(w.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn prior_uses_thread_counts() {
        let c = Cluster::case2(); // 2 vs 10 computing threads
        let w = Policy::PriorWork.weights(&c, &CcrPool::new(), "x");
        assert!((w.as_slice()[1] / w.as_slice()[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ccr_uses_pool() {
        let c = Cluster::case2();
        let mut pool = CcrPool::new();
        pool.insert(CcrSet::from_ratios("pagerank", vec![1.0, 3.5]));
        let w = Policy::CcrGuided.weights(&c, &pool, "pagerank");
        assert!((w.as_slice()[1] / w.as_slice()[0] - 3.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no CCR profiled")]
    fn missing_ccr_panics() {
        Policy::CcrGuided.weights(&Cluster::case2(), &CcrPool::new(), "nope");
    }

    #[test]
    fn names_distinct() {
        let names: std::collections::HashSet<_> = Policy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 3);
        assert_eq!(Policy::CcrGuided.to_string(), "ccr_guided");
    }
}
