//! Query-serving baseline (`BENCH_serve.json`).
//!
//! The tentpole scenario for the serving layer: an open-loop stream of
//! per-source SSSP, personalized-PageRank, and k-core membership queries
//! from two weighted tenants is served over one shared CCR-free hybrid
//! partition of the power-law fixture, with batched multi-source waves,
//! bounded-queue admission control, and stride weighted fair scheduling
//! (`hetgraph_serve`). Every latency is *simulated* seconds — arrival
//! times come from the seeded load generator and waves advance the clock
//! by their kernel makespans — so the measured p50/p99/throughput are
//! bit-reproducible on any host.
//!
//! The experiment runs the identical stream at 1, 2, and 4 host threads
//! and records each run's composition digest (batch membership + every
//! response value): the three must agree, which is the "deterministic
//! batch composition" leg of the serve perf gate. `check` gates CI on
//! the committed baseline: p99 latency must not regress past
//! [`CHECK_P99_TOLERANCE`], throughput must not drop past
//! [`CHECK_THROUGHPUT_TOLERANCE`], and (at the baseline's scale) the
//! digest must match bit-for-bit (see [`check`] for the exact rules).

use std::path::Path;
use std::time::Instant;

use hetgraph_cluster::Cluster;
use hetgraph_engine::DistributedGraph;
use hetgraph_gen::PowerLawConfig;
use hetgraph_partition::{MachineWeights, PartitionerKind};
use hetgraph_serve::{LoadGenConfig, ServeConfig, Server};
use serde::Value;

use crate::context::ExperimentContext;
use crate::output;

/// Requests in the served stream at `--scale 1` (the committed gate
/// requires at least 2000); smoke runs at other scales shrink the
/// stream proportionally, floored at [`MIN_REQUESTS`].
pub const REQUESTS: usize = 2500;

/// Request-count floor for downscaled smoke runs.
pub const MIN_REQUESTS: usize = 250;

/// Tenant scheduling weights (tenant 0 gets 2x the lanes under backlog).
pub const TENANT_WEIGHTS: [u32; 2] = [2, 1];

/// Mean simulated inter-arrival gap, seconds. Tuned so the batcher sees
/// real backlog (multi-lane waves) without pushing the bounded queue
/// into steady-state shedding at the committed scale.
pub const MEAN_INTERARRIVAL_S: f64 = 0.006;

/// Host thread counts the digest must agree across.
pub const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// The `BENCH_serve.json` payload.
#[derive(Debug, serde::Serialize)]
pub struct ServeBench {
    /// Graph downscale factor the fixture was generated at.
    pub scale: u32,
    /// Vertices in the fixture.
    pub vertices: u32,
    /// Edges in the fixture.
    pub edges: usize,
    /// Simulated machines (Cluster::case2).
    pub machines: usize,
    /// Requests offered by the load generator.
    pub requests: usize,
    /// Tenant scheduling weights (length = tenant count).
    pub tenant_weights: Vec<u32>,
    /// Mean simulated inter-arrival gap, seconds.
    pub mean_interarrival_s: f64,
    /// Batch window held open after an idle arrival, simulated seconds.
    pub batch_window_s: f64,
    /// Lane cap per wave.
    pub max_batch: usize,
    /// Per-tenant admission-control depth budget.
    pub queue_budget: usize,
    /// Requests served (offered minus shed).
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Superstep waves executed.
    pub waves: usize,
    /// Mean requests per wave.
    pub mean_batch: f64,
    /// Per-tenant served counts.
    pub per_tenant_served: Vec<u64>,
    /// Simulated end-to-end duration, seconds.
    pub sim_duration_s: f64,
    /// Median served latency, simulated seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile served latency, simulated seconds.
    pub p99_latency_s: f64,
    /// Mean served latency, simulated seconds.
    pub mean_latency_s: f64,
    /// Served requests per simulated second.
    pub throughput_rps: f64,
    /// Batch-composition digest (hex), identical across the thread sweep.
    pub composition_digest: String,
    /// The digest observed at each [`THREAD_SWEEP`] entry, in order.
    pub thread_digests: Vec<String>,
    /// Total experiment wall-clock, seconds.
    pub total_wall_s: f64,
}

/// Run the serving baseline, print its table, and (with `--out`) write
/// `BENCH_serve.json`.
pub fn serve(ctx: &ExperimentContext) -> ServeBench {
    let t0 = Instant::now();
    let scale = ctx.scale;
    // The serving corpus: latency is the object of study, not graph
    // scale, so the fixture stays wave-sized (seconds per run, not
    // minutes) even at --scale 1.
    let n = (40_000 / scale).max(4_000);
    let requests = (REQUESTS / scale as usize).max(MIN_REQUESTS);

    println!("== serve baseline (scale {scale}) ==");
    let graph = PowerLawConfig::new(n, 2.1).generate(42);
    let edges = graph.num_edges();
    let cluster = Cluster::case2();
    // Thread-count machine weights: the serving layer starts answering
    // immediately instead of amortizing a profiling pass (the CLI's
    // `hetgraph serve` makes the same trade).
    let weights = MachineWeights::from_thread_counts(&cluster);
    let assignment = PartitionerKind::Hybrid.build().partition(&graph, &weights);
    let dist = DistributedGraph::new_with_threads(&graph, &assignment, ctx.threads)
        .expect("assignment must cover the graph");

    let load = LoadGenConfig::standard(42, requests, MEAN_INTERARRIVAL_S);
    let stream = load.generate(graph.num_vertices());
    let mut cfg = ServeConfig::standard(TENANT_WEIGHTS.len());
    cfg.tenant_weights = TENANT_WEIGHTS.to_vec();
    println!(
        "fixture: power-law n={n} alpha=2.1 seed=42 ({edges} edges), case2, \
         hybrid; {requests} requests, {} tenants weighted {:?}, mean gap \
         {MEAN_INTERARRIVAL_S}s, window {}s, max batch {}, budget {}",
        TENANT_WEIGHTS.len(),
        TENANT_WEIGHTS,
        cfg.batch_window_s,
        cfg.max_batch,
        cfg.queue_budget,
    );

    // The thread sweep: identical stream and placement at 1/2/4 host
    // threads. The last run's report is the recorded measurement; the
    // digests of all three are recorded for the determinism gate.
    let server = Server::new(&cluster);
    let mut thread_digests = Vec::new();
    let mut report = None;
    for &threads in &THREAD_SWEEP {
        cfg.threads = threads;
        let r = server.serve(&dist, &cfg, &stream);
        thread_digests.push(format!("{:016x}", r.composition_digest));
        report = Some(r);
    }
    let report = report.expect("thread sweep is nonempty");

    let bench = ServeBench {
        scale,
        vertices: n,
        edges,
        machines: cluster.len(),
        requests,
        tenant_weights: TENANT_WEIGHTS.to_vec(),
        mean_interarrival_s: MEAN_INTERARRIVAL_S,
        batch_window_s: cfg.batch_window_s,
        max_batch: cfg.max_batch,
        queue_budget: cfg.queue_budget,
        served: report.served(),
        shed: report.shed.len(),
        waves: report.waves.len(),
        mean_batch: if report.waves.is_empty() {
            0.0
        } else {
            report.served() as f64 / report.waves.len() as f64
        },
        per_tenant_served: report.per_tenant_served.clone(),
        sim_duration_s: report.sim_duration_s,
        p50_latency_s: report.latency_quantile_s(0.5).unwrap_or(0.0),
        p99_latency_s: report.latency_quantile_s(0.99).unwrap_or(0.0),
        mean_latency_s: report.mean_latency_s().unwrap_or(0.0),
        throughput_rps: report.throughput_rps(),
        composition_digest: format!("{:016x}", report.composition_digest),
        thread_digests,
        total_wall_s: t0.elapsed().as_secs_f64(),
    };

    output::print_table(
        &[
            "served", "shed", "waves", "batch", "p50_ms", "p99_ms", "mean_ms", "rps", "sim_s",
        ],
        &[vec![
            bench.served.to_string(),
            bench.shed.to_string(),
            bench.waves.to_string(),
            format!("{:.2}", bench.mean_batch),
            output::f3(bench.p50_latency_s * 1e3),
            output::f3(bench.p99_latency_s * 1e3),
            output::f3(bench.mean_latency_s * 1e3),
            output::f3(bench.throughput_rps),
            output::f3(bench.sim_duration_s),
        ]],
    );
    println!(
        "per-tenant served: {:?}; digest {} at threads {:?}",
        bench.per_tenant_served, bench.composition_digest, THREAD_SWEEP
    );

    output::write_json_with_manifest(
        ctx.out_dir.as_deref(),
        "BENCH_serve",
        &bench,
        &output::RunManifest::collect(42, ctx.threads, scale, bench.total_wall_s),
    );
    bench
}

/// Allowed p99 latency growth before the gate fails: a fresh run's
/// simulated p99 may be at most this multiple of the baseline's.
pub const CHECK_P99_TOLERANCE: f64 = 1.15;

/// Allowed throughput loss before the gate fails: a fresh run must keep
/// at least `baseline / CHECK_THROUGHPUT_TOLERANCE` served requests per
/// simulated second.
pub const CHECK_THROUGHPUT_TOLERANCE: f64 = 1.15;

/// Re-run the serving baseline and compare it against the committed
/// `BENCH_serve.json` at `baseline_path`, failing when:
///
/// - the composition digest differs across the 1/2/4-thread sweep
///   (nondeterministic batch composition), or
/// - fresh simulated p99 latency exceeds [`CHECK_P99_TOLERANCE`] times
///   the baseline's, or
/// - fresh simulated throughput falls below the baseline's divided by
///   [`CHECK_THROUGHPUT_TOLERANCE`], or
/// - the fresh run sheds requests where the baseline shed none, or
/// - (only when the fresh scale equals the baseline's) the digest does
///   not match the baseline bit-for-bit.
///
/// All gated quantities are simulated-time, so the gate is host-speed
/// independent by construction. The fresh run never writes output,
/// regardless of `ctx.out_dir`.
pub fn check(ctx: &ExperimentContext, baseline_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = serde_json::from_str(&text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    let mut fresh_ctx = ctx.clone();
    fresh_ctx.out_dir = None;
    let fresh = serve(&fresh_ctx);
    println!("\n== serve bench check vs {} ==", baseline_path.display());
    let failures = check_against(&fresh, &baseline)?;
    if failures.is_empty() {
        println!("serve bench check: OK (latency, throughput, and composition hold)");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// The pure comparison core of [`check`]: fresh measurement vs parsed
/// baseline. `Err` means the baseline document is malformed; `Ok`
/// carries the (possibly empty) list of regression messages.
fn check_against(fresh: &ServeBench, baseline: &Value) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let base_p99 = baseline_f64(baseline, "p99_latency_s")?;
    let base_rps = baseline_f64(baseline, "throughput_rps")?;
    let base_shed = baseline_f64(baseline, "shed")?;
    let base_scale = baseline_f64(baseline, "scale")?;
    let base_digest = baseline
        .get("composition_digest")
        .and_then(Value::as_str)
        .ok_or("baseline is missing composition_digest")?;

    if fresh
        .thread_digests
        .iter()
        .any(|d| d != &fresh.composition_digest)
    {
        failures.push(format!(
            "nondeterministic batch composition: digests {:?} across threads {THREAD_SWEEP:?}",
            fresh.thread_digests
        ));
    }
    if fresh.p99_latency_s > CHECK_P99_TOLERANCE * base_p99 {
        failures.push(format!(
            "p99 latency {:.4}s exceeds {CHECK_P99_TOLERANCE} x baseline {base_p99:.4}s",
            fresh.p99_latency_s
        ));
    }
    if fresh.throughput_rps < base_rps / CHECK_THROUGHPUT_TOLERANCE {
        failures.push(format!(
            "throughput {:.1} rps is below baseline {base_rps:.1} / {CHECK_THROUGHPUT_TOLERANCE}",
            fresh.throughput_rps
        ));
    }
    if base_shed == 0.0 && fresh.shed > 0 {
        failures.push(format!(
            "fresh run shed {} requests where the baseline shed none",
            fresh.shed
        ));
    }
    // The digest depends on the fixture, so it is only comparable when
    // the fresh run used the baseline's scale (CI does; `--check
    // --scale N` smoke runs at other scales skip this leg).
    if fresh.scale as f64 == base_scale && fresh.composition_digest != base_digest {
        failures.push(format!(
            "composition digest {} does not match baseline {base_digest} at scale {}",
            fresh.composition_digest, fresh.scale
        ));
    }
    Ok(failures)
}

/// Extract one numeric field from a parsed baseline.
fn baseline_f64(baseline: &Value, field: &str) -> Result<f64, String> {
    baseline
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("baseline is missing {field}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_serves_the_stream_with_multi_lane_waves() {
        let bench = serve(&ExperimentContext::at_scale(10));
        assert_eq!(bench.served + bench.shed, bench.requests);
        assert!(bench.served >= bench.requests * 9 / 10, "{bench:?}");
        assert!(bench.waves > 0 && bench.mean_batch > 1.0, "{bench:?}");
        assert!(bench.p99_latency_s >= bench.p50_latency_s);
        assert!(bench.throughput_rps > 0.0);
        // The thread sweep agreed.
        assert!(bench
            .thread_digests
            .iter()
            .all(|d| d == &bench.composition_digest));
        // Weighted fairness reaches the tenant counters.
        assert_eq!(
            bench.per_tenant_served.iter().sum::<u64>(),
            bench.served as u64
        );
    }

    /// A fabricated healthy measurement.
    fn fake_bench() -> ServeBench {
        ServeBench {
            scale: 1,
            vertices: 40_000,
            edges: 160_000,
            machines: 2,
            requests: REQUESTS,
            tenant_weights: TENANT_WEIGHTS.to_vec(),
            mean_interarrival_s: MEAN_INTERARRIVAL_S,
            batch_window_s: 0.05,
            max_batch: 16,
            queue_budget: 64,
            served: REQUESTS,
            shed: 0,
            waves: 300,
            mean_batch: 8.3,
            per_tenant_served: vec![1250, 1250],
            sim_duration_s: 12.0,
            p50_latency_s: 0.040,
            p99_latency_s: 0.100,
            mean_latency_s: 0.045,
            throughput_rps: 208.0,
            composition_digest: "00deadbeef00cafe".to_string(),
            thread_digests: vec!["00deadbeef00cafe".to_string(); 3],
            total_wall_s: 1.0,
        }
    }

    fn to_baseline(bench: &ServeBench) -> Value {
        serde_json::from_str(&serde_json::to_string_pretty(bench).unwrap()).unwrap()
    }

    #[test]
    fn check_accepts_a_run_against_its_own_baseline() {
        let bench = fake_bench();
        let failures = check_against(&bench, &to_baseline(&bench)).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_flags_every_regression_class() {
        let baseline = to_baseline(&fake_bench());
        let mut regressed = fake_bench();
        regressed.p99_latency_s = 0.200; // p99 blew past tolerance
        regressed.throughput_rps = 100.0; // throughput collapsed
        regressed.shed = 7; // it started shedding
        regressed.composition_digest = "ffff000011112222".to_string(); // drifted
        regressed.thread_digests[2] = "1234123412341234".to_string(); // and raced
        let failures = check_against(&regressed, &baseline).unwrap();
        assert_eq!(failures.len(), 5, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("p99")));
        assert!(failures.iter().any(|f| f.contains("throughput")));
        assert!(failures.iter().any(|f| f.contains("shed")));
        assert!(failures
            .iter()
            .any(|f| f.contains("does not match baseline")));
        assert!(failures.iter().any(|f| f.contains("nondeterministic")));
    }

    #[test]
    fn check_tolerates_small_dips_and_other_scales() {
        let baseline = to_baseline(&fake_bench());
        let mut dipped = fake_bench();
        dipped.p99_latency_s = 0.110; // within 1.15x
        dipped.throughput_rps = 190.0; // within /1.15
        assert!(check_against(&dipped, &baseline).unwrap().is_empty());
        // A different scale skips the digest leg entirely.
        let mut other_scale = fake_bench();
        other_scale.scale = 10;
        other_scale.composition_digest = "ffff000011112222".to_string();
        other_scale.thread_digests = vec!["ffff000011112222".to_string(); 3];
        assert!(check_against(&other_scale, &baseline).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_malformed_baselines() {
        let bench = fake_bench();
        let err = check_against(&bench, &Value::Null).unwrap_err();
        assert!(err.contains("p99"), "{err}");
    }
}
