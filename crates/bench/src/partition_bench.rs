//! Partition perf baseline (`BENCH_partition.json`).
//!
//! Two measurements, both on frozen power-law fixtures (`generate(42)`):
//!
//! 1. **Throughput sweep** — single-threaded ingest rate (edges/sec) of
//!    every [`PartitionerKind`] at P ∈ {4, 16, 48} machines, spanning the
//!    u16/u16/u64 replica-mask monomorphizations of the streaming fast
//!    path.
//! 2. **Oblivious speedup** — the streaming fast path against a vendored
//!    copy of the seed's O(E·P·3) greedy loop ([`seed_oblivious`]) on a
//!    ≥1M-edge fixture at P=16, interleaved min-of-N, asserting the two
//!    produce byte-identical assignments (the fast path is an
//!    optimization, not an approximation).
//!
//! Fixture sizes scale with [`ExperimentContext::scale`] like every other
//! experiment; the committed `BENCH_partition.json` is generated at
//! `--scale 1` (see `scripts/bench.sh`).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use hetgraph_core::rng::hash64;
use hetgraph_core::Graph;
use hetgraph_gen::PowerLawConfig;
use hetgraph_partition::{
    MachineWeights, Oblivious, PartitionAssignment, Partitioner, PartitionerKind,
};
use serde::Value;

use crate::context::ExperimentContext;
use crate::output;

/// Machine counts swept by the throughput measurement: one per
/// replica-mask width class of the streaming partitioners (u16 / u16 /
/// u64).
pub const MACHINE_COUNTS: [usize; 3] = [4, 16, 48];

/// One partitioner × machine-count throughput measurement.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ThroughputRow {
    /// Partitioner name ([`PartitionerKind::name`]).
    pub partitioner: String,
    /// Number of machines partitioned across.
    pub machines: usize,
    /// Best-of-`reps` wall-clock of one full ingest, seconds.
    pub wall_s: f64,
    /// Edges ingested per second at `wall_s`.
    pub edges_per_sec: f64,
}

/// The seed-vs-fast-path Oblivious comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ObliviousSpeedup {
    /// Vertices in the headline fixture.
    pub vertices: u32,
    /// Edges in the headline fixture (must be ≥ 1M at scale 1).
    pub edges: usize,
    /// Machines (16: the u16 replica-mask class).
    pub machines: usize,
    /// Interleaved repetitions; both columns are min-of-`reps`.
    pub reps: usize,
    /// Best wall-clock of the vendored seed implementation, seconds.
    pub seed_wall_s: f64,
    /// Best wall-clock of the streaming fast path, seconds.
    pub fast_wall_s: f64,
    /// `seed_wall_s / fast_wall_s`.
    pub speedup: f64,
    /// Whether every rep produced byte-identical `edge_machines()`.
    pub assignments_identical: bool,
}

/// The `BENCH_partition.json` payload.
#[derive(Debug, serde::Serialize)]
pub struct PartitionBench {
    /// Graph downscale factor the fixtures were generated at.
    pub scale: u32,
    /// Vertices in the throughput fixture.
    pub throughput_vertices: u32,
    /// Edges in the throughput fixture.
    pub throughput_edges: usize,
    /// Per-partitioner ingest rates.
    pub throughput: Vec<ThroughputRow>,
    /// The seed-vs-fast Oblivious comparison.
    pub oblivious_speedup: ObliviousSpeedup,
    /// Total experiment wall-clock, seconds.
    pub total_wall_s: f64,
}

/// The seed's Oblivious greedy loop, vendored verbatim as the live
/// baseline for [`ObliviousSpeedup`]: per edge it rescans all P machines
/// three times (normalized-load bounds, then scoring) with two divisions
/// per machine per scan. The library implementation in
/// `hetgraph-partition` keeps normalized loads and balance terms
/// incrementally and must stay byte-identical to this loop — the
/// speedup measurement asserts that on every rep.
#[allow(clippy::needless_range_loop)] // vendored loop shape is the baseline
fn seed_oblivious(graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
    let p = weights.len();
    let n = graph.num_vertices() as usize;
    let mut replicas = vec![0u64; n]; // running replica sets
    let mut loads = vec![0f64; p]; // raw edge counts per machine
    let mut assignment = Vec::with_capacity(graph.num_edges());

    for e in graph.edges() {
        let mu = replicas[e.src as usize];
        let mv = replicas[e.dst as usize];
        // Normalized loads bound the balance term.
        let mut min_nl = f64::INFINITY;
        let mut max_nl = f64::NEG_INFINITY;
        for i in 0..p {
            let nl = loads[i] / weights.as_slice()[i];
            min_nl = min_nl.min(nl);
            max_nl = max_nl.max(nl);
        }
        let range = max_nl - min_nl;

        let mut best_score = f64::NEG_INFINITY;
        let mut best: Vec<u16> = Vec::with_capacity(2);
        for i in 0..p {
            let nl = loads[i] / weights.as_slice()[i];
            let bal = if range <= f64::EPSILON {
                1.0
            } else {
                (max_nl - nl) / range
            };
            let locality = ((mu >> i) & 1) as f64 + ((mv >> i) & 1) as f64;
            let score = bal + locality;
            if score > best_score + 1e-9 {
                best_score = score;
                best.clear();
                best.push(i as u16);
            } else if (score - best_score).abs() <= 1e-9 {
                best.push(i as u16);
            }
        }
        let chosen = best[(hash64(e.key()) % best.len() as u64) as usize];
        replicas[e.src as usize] |= 1u64 << chosen;
        replicas[e.dst as usize] |= 1u64 << chosen;
        loads[chosen as usize] += 1.0;
        assignment.push(chosen);
    }
    PartitionAssignment::from_edge_machines(graph, p, assignment)
}

/// Run the partition perf baseline, print its tables, and (with `--out`)
/// write `BENCH_partition.json`.
pub fn partition(ctx: &ExperimentContext) -> PartitionBench {
    let t0 = Instant::now();
    let scale = ctx.scale;
    // Fixture sizes follow the experiment-wide convention: scale 1 is
    // full size, larger scales shrink proportionally (floored so tests
    // at scale 64 still exercise every code path).
    let n_tp = (400_000 / scale).max(2_000);
    let n_hl = (1_000_000 / scale).max(4_000);
    let reps_tp = 3;
    let reps_hl = 5;

    println!("== partition perf baseline (scale {scale}) ==");
    let tp_graph = PowerLawConfig::new(n_tp, 2.1).generate(42);
    let m = tp_graph.num_edges();
    println!("throughput fixture: power-law n={n_tp} alpha=2.1 seed=42 ({m} edges)");

    let mut throughput = Vec::new();
    for machines in MACHINE_COUNTS {
        let weights = MachineWeights::uniform(machines);
        for kind in PartitionerKind::ALL {
            let partitioner = kind.build();
            let mut wall_s = f64::INFINITY;
            for _ in 0..reps_tp {
                let t = Instant::now();
                let a = partitioner.partition(&tp_graph, &weights);
                wall_s = wall_s.min(t.elapsed().as_secs_f64());
                std::hint::black_box(&a);
            }
            throughput.push(ThroughputRow {
                partitioner: kind.name().to_string(),
                machines,
                wall_s,
                edges_per_sec: m as f64 / wall_s,
            });
        }
    }
    let rows: Vec<Vec<String>> = throughput
        .iter()
        .map(|r| {
            vec![
                r.partitioner.clone(),
                r.machines.to_string(),
                output::f3(r.wall_s),
                format!("{:.0}", r.edges_per_sec),
            ]
        })
        .collect();
    output::print_table(&["partitioner", "P", "wall_s", "edges/sec"], &rows);

    let hl_graph = PowerLawConfig::new(n_hl, 2.1).generate(42);
    let edges = hl_graph.num_edges();
    println!(
        "\nheadline fixture: power-law n={n_hl} alpha=2.1 seed=42 ({edges} edges), P=16 uniform"
    );
    let weights = MachineWeights::uniform(16);
    let mut seed_wall_s = f64::INFINITY;
    let mut fast_wall_s = f64::INFINITY;
    let mut assignments_identical = true;
    for _ in 0..reps_hl {
        // Interleave the two implementations so drift in machine state
        // (frequency, cache pressure) hits both columns equally.
        let t = Instant::now();
        let seed = seed_oblivious(&hl_graph, &weights);
        seed_wall_s = seed_wall_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let fast = Oblivious::new().partition(&hl_graph, &weights);
        fast_wall_s = fast_wall_s.min(t.elapsed().as_secs_f64());
        assignments_identical &= seed.edge_machines() == fast.edge_machines();
    }
    assert!(
        assignments_identical,
        "fast-path Oblivious diverged from the seed implementation"
    );
    let oblivious_speedup = ObliviousSpeedup {
        vertices: n_hl,
        edges,
        machines: 16,
        reps: reps_hl,
        seed_wall_s,
        fast_wall_s,
        speedup: seed_wall_s / fast_wall_s,
        assignments_identical,
    };
    println!(
        "oblivious: seed {} s, fast {} s, speedup {:.2}x (assignments identical: {})",
        output::f3(seed_wall_s),
        output::f3(fast_wall_s),
        oblivious_speedup.speedup,
        assignments_identical
    );

    let bench = PartitionBench {
        scale,
        throughput_vertices: n_tp,
        throughput_edges: m,
        throughput,
        oblivious_speedup,
        total_wall_s: t0.elapsed().as_secs_f64(),
    };
    output::write_json_with_manifest(
        ctx.out_dir.as_deref(),
        "BENCH_partition",
        &bench,
        &output::RunManifest::collect(42, ctx.threads, scale, bench.total_wall_s),
    );
    bench
}

/// Fraction of the baseline's normalized throughput a fresh run may lose
/// before the regression gate fails (25% headroom absorbs CI-runner
/// noise that normalization alone doesn't cancel).
pub const CHECK_TOLERANCE: f64 = 0.75;

/// Re-run the partition baseline and compare it against the committed
/// `BENCH_partition.json` at `baseline_path`, failing on regressions.
///
/// Wall-clock is machine-dependent, so absolute rates are never compared
/// across runs. Each partitioner's ingest rate is instead normalized by
/// the `random` partitioner's rate at the same machine count *within the
/// same run* — the ratio cancels host speed — and the gate fails when:
///
/// - the fresh seed-vs-fast Oblivious assignments diverge, or
/// - a normalized rate drops below [`CHECK_TOLERANCE`] of the
///   baseline's, or
/// - the fresh Oblivious fast-path speedup falls below
///   [`CHECK_TOLERANCE`] of the committed speedup.
///
/// The fresh run never writes output (the baseline being checked must
/// not be overwritten), regardless of `ctx.out_dir`.
pub fn check(ctx: &ExperimentContext, baseline_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = serde_json::from_str(&text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    let mut fresh_ctx = ctx.clone();
    fresh_ctx.out_dir = None;
    let fresh = partition(&fresh_ctx);
    println!("\n== bench check vs {} ==", baseline_path.display());
    let failures = check_against(&fresh, &baseline)?;
    if failures.is_empty() {
        println!(
            "bench check: OK ({} throughput rows within {:.0}% of baseline, \
             oblivious speedup {:.2}x)",
            fresh.throughput.len(),
            100.0 * (1.0 - CHECK_TOLERANCE),
            fresh.oblivious_speedup.speedup
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// The pure comparison core of [`check`]: fresh measurement vs parsed
/// baseline. `Err` means the baseline document is malformed; `Ok` carries
/// the (possibly empty) list of regression messages.
fn check_against(fresh: &PartitionBench, baseline: &Value) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    if !fresh.oblivious_speedup.assignments_identical {
        failures.push("fresh run: seed and fast Oblivious assignments diverged".to_string());
    }

    let fresh_rel = normalized_throughput(
        fresh
            .throughput
            .iter()
            .map(|r| (r.partitioner.clone(), r.machines, r.edges_per_sec)),
    )?;
    let base_rel = normalized_throughput(baseline_rows(baseline)?)?;
    for ((name, machines), rel) in &fresh_rel {
        let Some(base) = base_rel.get(&(name.clone(), *machines)) else {
            failures.push(format!("baseline has no {name} row at P={machines}"));
            continue;
        };
        if *rel < CHECK_TOLERANCE * base {
            failures.push(format!(
                "{name} at P={machines}: normalized throughput {rel:.3} is below \
                 {CHECK_TOLERANCE} x baseline {base:.3}"
            ));
        }
    }

    let base_speedup = baseline
        .get("oblivious_speedup")
        .and_then(|o| o.get("speedup"))
        .and_then(Value::as_f64)
        .ok_or("baseline is missing oblivious_speedup.speedup")?;
    let speedup = fresh.oblivious_speedup.speedup;
    if speedup < CHECK_TOLERANCE * base_speedup {
        failures.push(format!(
            "oblivious fast-path speedup {speedup:.2}x is below \
             {CHECK_TOLERANCE} x baseline {base_speedup:.2}x"
        ));
    }
    Ok(failures)
}

/// Extract `(partitioner, machines, edges_per_sec)` rows from a parsed
/// baseline document.
fn baseline_rows(
    baseline: &Value,
) -> Result<impl Iterator<Item = (String, usize, f64)> + '_, String> {
    let rows = baseline
        .get("throughput")
        .and_then(Value::as_seq)
        .ok_or("baseline is missing the throughput array")?;
    rows.iter()
        .map(|row| {
            let name = row
                .get("partitioner")
                .and_then(Value::as_str)
                .ok_or("baseline throughput row is missing partitioner")?;
            let machines = row
                .get("machines")
                .and_then(Value::as_u64)
                .ok_or("baseline throughput row is missing machines")?;
            let eps = row
                .get("edges_per_sec")
                .and_then(Value::as_f64)
                .ok_or("baseline throughput row is missing edges_per_sec")?;
            Ok((name.to_string(), machines as usize, eps))
        })
        .collect::<Result<Vec<_>, String>>()
        .map(Vec::into_iter)
}

/// Normalize each partitioner's ingest rate by the `random` partitioner's
/// rate at the same machine count (measured in the same run, so host
/// speed cancels).
fn normalized_throughput(
    rows: impl Iterator<Item = (String, usize, f64)>,
) -> Result<BTreeMap<(String, usize), f64>, String> {
    let rows: Vec<_> = rows.collect();
    let random: BTreeMap<usize, f64> = rows
        .iter()
        .filter(|(name, _, _)| name == "random")
        .map(|(_, machines, eps)| (*machines, *eps))
        .collect();
    let mut out = BTreeMap::new();
    for (name, machines, eps) in rows {
        let reference = random
            .get(&machines)
            .ok_or_else(|| format!("no random reference row at P={machines}"))?;
        out.insert((name, machines), eps / reference);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_and_fast_oblivious_agree() {
        let g = PowerLawConfig::new(4_000, 2.1).generate(7);
        for p in [3usize, 16, 48] {
            let w = MachineWeights::uniform(p);
            let seed = seed_oblivious(&g, &w);
            let fast = Oblivious::new().partition(&g, &w);
            assert_eq!(seed.edge_machines(), fast.edge_machines(), "p={p}");
        }
    }

    #[test]
    fn bench_covers_every_partitioner_and_machine_count() {
        let ctx = ExperimentContext::at_scale(256);
        let bench = partition(&ctx);
        assert_eq!(
            bench.throughput.len(),
            MACHINE_COUNTS.len() * PartitionerKind::ALL.len()
        );
        assert!(bench.oblivious_speedup.assignments_identical);
        assert!(bench.oblivious_speedup.speedup > 0.0);
    }

    /// A fabricated measurement: every partitioner ingests at the same
    /// rate (normalized throughput 1.0 everywhere), oblivious speedup 5x.
    fn fake_bench() -> PartitionBench {
        let mut throughput = Vec::new();
        for machines in MACHINE_COUNTS {
            for kind in PartitionerKind::ALL {
                throughput.push(ThroughputRow {
                    partitioner: kind.name().to_string(),
                    machines,
                    wall_s: 0.1,
                    edges_per_sec: 1.0e6,
                });
            }
        }
        PartitionBench {
            scale: 1,
            throughput_vertices: 400_000,
            throughput_edges: 3_000_000,
            throughput,
            oblivious_speedup: ObliviousSpeedup {
                vertices: 1_000_000,
                edges: 8_000_000,
                machines: 16,
                reps: 5,
                seed_wall_s: 1.0,
                fast_wall_s: 0.2,
                speedup: 5.0,
                assignments_identical: true,
            },
            total_wall_s: 1.0,
        }
    }

    fn to_baseline(bench: &PartitionBench) -> serde::Value {
        serde_json::from_str(&serde_json::to_string_pretty(bench).unwrap()).unwrap()
    }

    #[test]
    fn check_accepts_a_run_against_its_own_baseline() {
        let bench = fake_bench();
        let failures = check_against(&bench, &to_baseline(&bench)).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_normalization_cancels_host_speed() {
        // The same machine measured on a 3x slower day: every wall-clock
        // scales equally, so normalized throughput and speedup are
        // unchanged and the gate still passes.
        let mut slow = fake_bench();
        for row in &mut slow.throughput {
            row.wall_s *= 3.0;
            row.edges_per_sec /= 3.0;
        }
        slow.oblivious_speedup.seed_wall_s *= 3.0;
        slow.oblivious_speedup.fast_wall_s *= 3.0;
        let failures = check_against(&slow, &to_baseline(&fake_bench())).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_flags_throughput_and_speedup_regressions() {
        let baseline = to_baseline(&fake_bench());
        let mut regressed = fake_bench();
        // Ginger at P=16 drops to 10% of random's rate (baseline: 100%).
        let row = regressed
            .throughput
            .iter_mut()
            .find(|r| r.partitioner == "ginger" && r.machines == 16)
            .unwrap();
        row.edges_per_sec = 1.0e5;
        // The fast path loses most of its edge over the seed loop.
        regressed.oblivious_speedup.speedup = 2.0;
        regressed.oblivious_speedup.assignments_identical = false;
        let failures = check_against(&regressed, &baseline).unwrap();
        assert_eq!(failures.len(), 3, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("diverged")));
        assert!(failures.iter().any(|f| f.contains("ginger at P=16")));
        assert!(failures.iter().any(|f| f.contains("speedup 2.00x")));
        // 25% noise within tolerance: not a failure.
        let mut noisy = fake_bench();
        noisy.oblivious_speedup.speedup = 4.0;
        assert!(check_against(&noisy, &baseline).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_malformed_baselines() {
        let bench = fake_bench();
        let err = check_against(&bench, &serde::Value::Null).unwrap_err();
        assert!(err.contains("throughput"), "{err}");
        let no_speedup = serde::Value::Map(vec![(
            "throughput".into(),
            to_baseline(&bench).get("throughput").unwrap().clone(),
        )]);
        let err = check_against(&bench, &no_speedup).unwrap_err();
        assert!(err.contains("oblivious_speedup"), "{err}");
    }
}
