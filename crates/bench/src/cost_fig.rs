//! Fig 11: the cost/performance Pareto study.

use hetgraph_cluster::catalog;
use hetgraph_cost::CostStudy;

use crate::context::ExperimentContext;
use crate::output::{f3, print_table, write_json};

/// Fig 11: proxy-profiled speedup vs relative cost-per-task for every EC2
/// machine and application, with the per-app Pareto frontier.
pub fn fig11(ctx: &ExperimentContext) -> CostStudy {
    println!(
        "== Fig 11: cost and performance Pareto space, scale 1/{} ==\n",
        ctx.scale
    );
    let baseline = catalog::c4_xlarge();
    let machines = vec![
        catalog::c4_xlarge(),
        catalog::c4_2xlarge(),
        catalog::m4_2xlarge(),
        catalog::r3_2xlarge(),
        catalog::c4_4xlarge(),
        catalog::c4_8xlarge(),
    ];
    let study = CostStudy::from_profiling(&baseline, &machines, ctx.apps(), &ctx.proxies());

    let mut table = Vec::new();
    for p in &study.points {
        table.push(vec![
            p.app.clone(),
            p.machine.clone(),
            f3(p.speedup),
            f3(p.relative_cost),
        ]);
    }
    print_table(
        &["app", "machine", "speedup", "relative_cost_per_task"],
        &table,
    );

    println!();
    for app in ctx.apps() {
        let frontier: Vec<&str> = study
            .pareto_for_app(app.name())
            .iter()
            .map(|p| p.machine.as_str())
            .collect();
        println!("{} Pareto frontier: {}", app.name(), frontier.join(", "));
    }
    println!(
        "\nMean relative cost per task: 8xlarge {} vs 4xlarge {} vs 2xlarge {} \
         (paper: 8xlarge is the most expensive; 4xlarge/2xlarge save 60%/80%)",
        f3(study.mean_cost_for_machine("c4.8xlarge").expect("present")),
        f3(study.mean_cost_for_machine("c4.4xlarge").expect("present")),
        f3(study.mean_cost_for_machine("c4.2xlarge").expect("present")),
    );
    write_json(ctx.out_dir.as_deref(), "fig11", &study);
    study
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_runs_and_matches_paper_shape() {
        let study = fig11(&ExperimentContext::at_scale(1024));
        assert_eq!(study.points.len(), 4 * 6);
        // The 2xlarge trio clusters together (paper: "All 2xlarge machines
        // ... are grouped together").
        let twos: Vec<f64> = study
            .points
            .iter()
            .filter(|p| p.machine.contains("2xlarge") && p.app == "pagerank")
            .map(|p| p.speedup)
            .collect();
        assert_eq!(twos.len(), 3);
        let spread = twos.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            / twos.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1.5, "2xlarge trio should cluster, spread {spread}");
    }
}
