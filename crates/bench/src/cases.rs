//! The end-to-end case studies: Fig 9 (Case 1) and Fig 10 (Cases 2–3).

use hetgraph_apps::AnyApp;
use hetgraph_cluster::Cluster;
use hetgraph_core::metrics::MetricsRegistry;
use hetgraph_core::obs::{self, chrome_trace, Recorder, TraceRecorder};
use hetgraph_core::stats;
use hetgraph_core::Graph;
use hetgraph_engine::{DistributedGraph, SimEngine};
use hetgraph_partition::{MachineWeights, PartitionAssignment, PartitionMetrics, PartitionerKind};
use hetgraph_profile::CcrPool;

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::context::ExperimentContext;
use crate::output::{f3, pct, print_table, write_json};
use crate::policy::Policy;

/// One (app, graph, partitioner, policy) measurement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CaseRow {
    /// Application name.
    pub app: String,
    /// Graph name.
    pub graph: String,
    /// Partitioner name.
    pub partitioner: String,
    /// Policy name.
    pub policy: String,
    /// Simulated end-to-end runtime.
    pub makespan_s: f64,
    /// Simulated total energy.
    pub energy_j: f64,
    /// Partition replication factor.
    pub replication_factor: f64,
}

/// Profile the cluster once (offline, as in Fig 7a) for this context's
/// selected workloads.
pub fn profile_pool(cluster: &Cluster, ctx: &ExperimentContext) -> CcrPool {
    CcrPool::profile_with_threads(cluster, &ctx.proxies(), ctx.apps(), ctx.threads)
}

/// Execution accounting for one [`run_matrix`] call: how much work the
/// partition memo saved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixStats {
    /// Total (graph, partitioner, app, policy) cells simulated.
    pub cells: usize,
    /// Distinct (graph, partitioner, weight-vector) partitions actually
    /// computed — everything else was a memo hit.
    pub partitions_computed: usize,
}

/// Run the full measurement matrix over `host_threads` workers.
///
/// Rows come back in the serial nested-loop order (graph, partitioner,
/// app, policy) regardless of the thread count, and every cell is a pure
/// function of its inputs, so the output is byte-identical to a serial
/// sweep. See DESIGN.md "Threading model" for the determinism contract
/// and how the budget is split between sweep cells and engine supersteps.
///
/// # Panics
/// Panics if `host_threads == 0`.
pub fn run_matrix(
    cluster: &Cluster,
    pool: &CcrPool,
    graphs: &[(String, Graph)],
    partitioners: &[PartitionerKind],
    policies: &[Policy],
    apps: &[AnyApp],
    host_threads: usize,
) -> Vec<CaseRow> {
    run_matrix_counted(
        cluster,
        pool,
        graphs,
        partitioners,
        policies,
        apps,
        host_threads,
    )
    .0
}

/// [`run_matrix`] also returning its [`MatrixStats`] (used by the
/// partition-dedupe regression tests).
///
/// # Panics
/// Panics if `host_threads == 0`.
pub fn run_matrix_counted(
    cluster: &Cluster,
    pool: &CcrPool,
    graphs: &[(String, Graph)],
    partitioners: &[PartitionerKind],
    policies: &[Policy],
    apps: &[AnyApp],
    host_threads: usize,
) -> (Vec<CaseRow>, MatrixStats) {
    assert!(host_threads > 0, "need at least one host thread");
    let engine = SimEngine::new(cluster);

    // Phase 1 (serial, cheap): enumerate cells in the canonical nested-
    // loop order and dedupe their partition jobs. Policies differ per app
    // only through the weight vector, so the memo key is the exact bit
    // pattern of (graph, partitioner, weights) — e.g. `default` and
    // `prior_work` weights are app-independent and partition once each.
    let mut jobs: Vec<(usize, PartitionerKind, MachineWeights)> = Vec::new();
    let mut job_index: BTreeMap<(usize, &'static str, Vec<u64>), usize> = BTreeMap::new();
    let mut cells: Vec<(usize, PartitionerKind, AnyApp, Policy, usize)> = Vec::new();
    for gi in 0..graphs.len() {
        for &kind in partitioners {
            for app in apps {
                for &policy in policies {
                    let weights = policy.weights(cluster, pool, app.name());
                    let bits: Vec<u64> = weights.as_slice().iter().map(|w| w.to_bits()).collect();
                    let job = *job_index.entry((gi, kind.name(), bits)).or_insert_with(|| {
                        jobs.push((gi, kind, weights));
                        jobs.len() - 1
                    });
                    cells.push((gi, kind, app.clone(), policy, job));
                }
            }
        }
    }

    // The budget goes to sweep-level fan-out first (cells are coarse and
    // embarrassingly parallel); whatever is left over multiplies into
    // each cell's engine. At realistic matrix sizes cells >= threads, so
    // engine_threads == 1 and each cell runs the serial reference engine.
    let sweep_threads = host_threads.min(cells.len()).max(1);
    let engine_threads = (host_threads / sweep_threads).max(1);

    // Phase 2 (parallel): each distinct partition job once.
    let parts: Vec<(PartitionAssignment, PartitionMetrics)> =
        hetgraph_core::par::scheduled(jobs.len(), sweep_threads, |j| {
            let (gi, kind, weights) = &jobs[j];
            let assignment =
                kind.build()
                    .partition_with_threads(&graphs[*gi].1, weights, engine_threads);
            let metrics =
                PartitionMetrics::compute_with_threads(&assignment, weights, engine_threads);
            (assignment, metrics)
        });

    // Phase 3 (parallel): one shared O(edges) distributed view per job,
    // instead of one per cell.
    let dists: Vec<DistributedGraph<'_>> =
        hetgraph_core::par::scheduled(jobs.len(), sweep_threads, |j| {
            DistributedGraph::new_with_threads(&graphs[jobs[j].0].1, &parts[j].0, engine_threads)
                .expect("assignment must cover the graph")
        });

    // Phase 4 (parallel): simulate every cell; `scheduled` returns the
    // reports in cell order, so assembly below is order-stable.
    let reports = hetgraph_core::par::scheduled(cells.len(), sweep_threads, |k| {
        let (_, _, ref app, _, job) = cells[k];
        app.run_on_with_threads(&engine, &dists[job], engine_threads)
    });

    let rows = cells
        .iter()
        .zip(reports)
        .map(|((gi, kind, app, policy, job), report)| CaseRow {
            app: app.name().to_string(),
            graph: graphs[*gi].0.clone(),
            partitioner: kind.name().to_string(),
            policy: policy.name().to_string(),
            makespan_s: report.makespan_s,
            energy_j: report.total_energy_j(),
            replication_factor: parts[*job].1.replication_factor,
        })
        .collect();
    let stats = MatrixStats {
        cells: cells.len(),
        partitions_computed: jobs.len(),
    };
    (rows, stats)
}

/// Find the row matching a (app, graph, partitioner, policy) tuple.
pub fn find<'a>(
    rows: &'a [CaseRow],
    app: &str,
    graph: &str,
    partitioner: &str,
    policy: Policy,
) -> &'a CaseRow {
    rows.iter()
        .find(|r| {
            r.app == app
                && r.graph == graph
                && r.partitioner == partitioner
                && r.policy == policy.name()
        })
        .unwrap_or_else(|| panic!("missing row {app}/{graph}/{partitioner}/{policy}"))
}

/// Speedups of `policy` over `baseline` for every (app, graph,
/// partitioner) cell present in `rows`.
pub fn speedups_over(rows: &[CaseRow], baseline: Policy, policy: Policy) -> Vec<f64> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.policy == policy.name()) {
        let base = find(rows, &r.app, &r.graph, &r.partitioner, baseline);
        out.push(base.makespan_s / r.makespan_s);
    }
    out
}

/// Energy savings (fraction) of `policy` over `baseline`, cell-wise.
pub fn energy_savings_over(rows: &[CaseRow], baseline: Policy, policy: Policy) -> Vec<f64> {
    let mut out = Vec::new();
    for r in rows.iter().filter(|r| r.policy == policy.name()) {
        let base = find(rows, &r.app, &r.graph, &r.partitioner, baseline);
        out.push(1.0 - r.energy_j / base.energy_j);
    }
    out
}

/// Fig 9: Case 1 — m4.2xlarge + c4.2xlarge, four graphs, five
/// partitioners, default vs CCR-guided. Prior work sees this cluster as
/// homogeneous (equal thread counts), so its result equals the default.
pub fn fig9(ctx: &ExperimentContext) -> Vec<CaseRow> {
    let cluster = Cluster::case1();
    println!(
        "== Fig 9: Case 1 (m4.2xlarge + c4.2xlarge), scale 1/{} ==",
        ctx.scale
    );
    println!("(prior work sees equal thread counts here -> identical to default)\n");
    let pool = profile_pool(&cluster, ctx);
    let graphs = ctx.natural_graphs_shared();
    let rows = run_matrix(
        &cluster,
        &pool,
        &graphs,
        &PartitionerKind::ALL,
        &[Policy::Default, Policy::CcrGuided],
        ctx.apps(),
        ctx.threads,
    );

    for app in ctx.apps() {
        println!("-- {} --", app.name());
        let mut table = Vec::new();
        for (gname, _) in graphs.iter() {
            for kind in PartitionerKind::ALL {
                let d = find(&rows, app.name(), gname, kind.name(), Policy::Default);
                let c = find(&rows, app.name(), gname, kind.name(), Policy::CcrGuided);
                table.push(vec![
                    gname.clone(),
                    kind.name().to_string(),
                    f3(d.makespan_s),
                    f3(c.makespan_s),
                    f3(d.makespan_s / c.makespan_s),
                ]);
            }
        }
        print_table(
            &["graph", "partitioner", "default_s", "ccr_s", "speedup"],
            &table,
        );
        let app_rows: Vec<CaseRow> = rows
            .iter()
            .filter(|r| r.app == app.name())
            .cloned()
            .collect();
        let speedups = speedups_over(&app_rows, Policy::Default, Policy::CcrGuided);
        println!(
            "{}: avg speedup {} | max speedup {}\n",
            app.name(),
            f3(stats::geomean(&speedups)),
            f3(stats::fmax(speedups.iter().copied()).unwrap_or(1.0)),
        );
    }
    let all = speedups_over(&rows, Policy::Default, Policy::CcrGuided);
    println!(
        "Case 1 overall: avg speedup {} (paper: 1.16x), max {} (paper: 1.45x)",
        f3(stats::geomean(&all)),
        f3(stats::fmax(all.iter().copied()).unwrap_or(1.0)),
    );
    write_json(ctx.out_dir.as_deref(), "fig9", &rows);
    rows
}

/// Fig 10: Cases 2 and 3 — runtime and energy vs default, for prior work
/// and CCR guidance. `case` selects 2 (thread-count heterogeneity) or 3
/// (thread + frequency heterogeneity).
pub fn fig10(ctx: &ExperimentContext, case: u32) -> Vec<CaseRow> {
    let cluster = match case {
        2 => Cluster::case2(),
        3 => Cluster::case3(),
        other => panic!("fig10 case must be 2 or 3, got {other}"),
    };
    println!(
        "== Fig 10{}: Case {case} ({} + {}), scale 1/{} ==\n",
        if case == 2 { "a" } else { "b" },
        cluster.machines()[0].name,
        cluster.machines()[1].name,
        ctx.scale
    );
    let pool = profile_pool(&cluster, ctx);
    for set in pool.iter() {
        println!("profiled CCR[{}] = 1 : {}", set.app(), f3(set.spread()));
    }
    println!();

    let graphs = ctx.natural_graphs_shared();
    // Aggregate across all five partitioners, as Fig 9 does: single-
    // partitioner numbers at reduced scale are dominated by hub-placement
    // variance (a handful of hub bundles decide which machine hosts the
    // heavy edges), which the paper's full-size graphs average away.
    let rows = run_matrix(
        &cluster,
        &pool,
        &graphs,
        &PartitionerKind::ALL,
        &Policy::ALL,
        ctx.apps(),
        ctx.threads,
    );

    let mut table = Vec::new();
    for app in ctx.apps() {
        let app_rows: Vec<CaseRow> = rows
            .iter()
            .filter(|r| r.app == app.name())
            .cloned()
            .collect();
        let prior_speed = stats::geomean(&speedups_over(
            &app_rows,
            Policy::Default,
            Policy::PriorWork,
        ));
        let ccr_speed = stats::geomean(&speedups_over(
            &app_rows,
            Policy::Default,
            Policy::CcrGuided,
        ));
        let prior_energy = stats::mean(&energy_savings_over(
            &app_rows,
            Policy::Default,
            Policy::PriorWork,
        ));
        let ccr_energy = stats::mean(&energy_savings_over(
            &app_rows,
            Policy::Default,
            Policy::CcrGuided,
        ));
        table.push(vec![
            app.name().to_string(),
            f3(prior_speed),
            f3(ccr_speed),
            pct(100.0 * prior_energy),
            pct(100.0 * ccr_energy),
        ]);
    }
    print_table(
        &[
            "app",
            "prior_speedup",
            "ccr_speedup",
            "prior_energy_saved",
            "ccr_energy_saved",
        ],
        &table,
    );

    let prior_all = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::PriorWork));
    let ccr_all = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::CcrGuided));
    let prior_e = stats::mean(&energy_savings_over(
        &rows,
        Policy::Default,
        Policy::PriorWork,
    ));
    let ccr_e = stats::mean(&energy_savings_over(
        &rows,
        Policy::Default,
        Policy::CcrGuided,
    ));
    let paper = if case == 2 {
        "(paper: prior 1.27x / ours 1.45x; energy prior 8.4% / ours 23.6%)"
    } else {
        "(paper: prior 1.37x / ours 1.58x; energy prior 10.4%-ish / ours 26.4%)"
    };
    println!(
        "\nCase {case} overall: prior {}x, ccr {}x | energy prior {}, ccr {} {paper}",
        f3(prior_all),
        f3(ccr_all),
        pct(100.0 * prior_e),
        pct(100.0 * ccr_e),
    );
    write_json(ctx.out_dir.as_deref(), &format!("fig10_case{case}"), &rows);
    rows
}

/// Write Chrome `trace_event` files to `ctx.trace_dir` and aggregated
/// metrics snapshots to `ctx.metrics_dir` for representative cells
/// (no-op when both are unset). For **every** case cluster (1, 2, and
/// 3): one profiling trace covering proxy generation and every CCR
/// measurement cell, plus one trace per selected app covering
/// CCR-weighted Hybrid partitioning and the full superstep timeline
/// (per-machine phase spans, barrier-wait attribution, straggler
/// gauges) on the first natural graph. Trace files load directly in
/// chrome://tracing or ui.perfetto.dev. With a metrics dir, each case
/// additionally gets its sim-domain metrics snapshot — aggregated over
/// the profile cell and every app run — as `{case}.metrics.json` and
/// Prometheus text exposition as `{case}.metrics.prom`.
///
/// Returns the paths written, in emission order (per case: profile
/// trace, app traces, metrics JSON, metrics prom).
pub fn write_traces(ctx: &ExperimentContext) -> Vec<PathBuf> {
    if ctx.trace_dir.is_none() && ctx.metrics_dir.is_none() {
        return Vec::new();
    }
    for dir in [&ctx.trace_dir, &ctx.metrics_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("creating output dir {}: {e}", dir.display()));
    }
    let shared = ctx.natural_graphs_shared();
    let (gname, graph) = &shared[0];
    let kind = PartitionerKind::Hybrid;
    let mut written = Vec::new();
    let mut write = |path: PathBuf, text: &str, what: &str| {
        std::fs::write(&path, text).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("{what}: -> {}", path.display());
        written.push(path);
    };
    let cases = [
        ("case1", Cluster::case1()),
        ("case2", Cluster::case2()),
        ("case3", Cluster::case3()),
    ];
    for (case, cluster) in cases {
        let tracing = ctx.trace_dir.is_some();
        let profiling = TraceRecorder::new();
        let recorder: &dyn Recorder = if tracing { &profiling } else { &obs::NOOP };
        let live_metrics = MetricsRegistry::new();
        let metrics: &MetricsRegistry = if ctx.metrics_dir.is_some() {
            &live_metrics
        } else {
            &hetgraph_core::metrics::NOOP
        };
        let pool = CcrPool::profile_instrumented(
            &cluster,
            &ctx.proxies(),
            ctx.apps(),
            ctx.threads,
            recorder,
            metrics,
        );
        if let Some(dir) = &ctx.trace_dir {
            let events = profiling.take_events();
            write(
                dir.join(format!("{case}_profile.trace.json")),
                &chrome_trace(&events),
                "trace",
            );
        }
        for app in ctx.apps() {
            let app_tracer = TraceRecorder::new();
            let recorder: &dyn Recorder = if tracing { &app_tracer } else { &obs::NOOP };
            let weights = Policy::CcrGuided.weights(&cluster, &pool, app.name());
            let assignment = kind.build().partition_instrumented(
                graph,
                &weights,
                ctx.threads,
                recorder,
                metrics,
            );
            let dist = DistributedGraph::new_with_threads(graph, &assignment, ctx.threads)
                .expect("assignment must cover the graph");
            let engine = SimEngine::new(&cluster)
                .with_recorder(recorder)
                .with_metrics(metrics);
            app.run_on_with_threads(&engine, &dist, ctx.threads);
            if let Some(dir) = &ctx.trace_dir {
                let events = app_tracer.take_events();
                write(
                    dir.join(format!("{case}_{gname}_{}.trace.json", app.name())),
                    &chrome_trace(&events),
                    "trace",
                );
            }
        }
        if let Some(dir) = &ctx.metrics_dir {
            let snapshot = metrics.snapshot_sim();
            write(
                dir.join(format!("{case}.metrics.json")),
                &snapshot.to_json(),
                "metrics",
            );
            write(
                dir.join(format!("{case}.metrics.prom")),
                &snapshot.to_prometheus(),
                "metrics",
            );
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::at_scale(512)
    }

    /// Fine-grained partitioners for the ordering assertions: at test
    /// scale, bundle-granularity partitioners (hybrid) are dominated by
    /// which machine drew the few hub bundles, which is variance, not
    /// policy quality.
    const TEST_PARTITIONERS: [PartitionerKind; 3] = [
        PartitionerKind::RandomHash,
        PartitionerKind::Grid,
        PartitionerKind::Ginger,
    ];

    #[test]
    fn case2_orderings_hold() {
        // The paper's central claim at harness level: CCR >= prior >=
        // default in speedup (geomean across apps/graphs).
        let ctx = tiny_ctx();
        let cluster = Cluster::case2();
        let pool = profile_pool(&cluster, &ctx);
        let graphs = ctx.natural_graphs();
        let rows = run_matrix(
            &cluster,
            &pool,
            &graphs,
            &TEST_PARTITIONERS,
            &Policy::ALL,
            ctx.apps(),
            ctx.threads,
        );
        let prior = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::PriorWork));
        let ccr = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::CcrGuided));
        assert!(prior > 1.0, "prior speedup {prior} must beat default");
        assert!(ccr > prior, "ccr {ccr} must beat prior {prior}");
    }

    #[test]
    fn case3_energy_ordering_holds() {
        // Case 3 is where the energy mechanism is structural: prior's 1:5
        // estimate *underestimates* the >1:6 real heterogeneity, so it
        // overloads the tiny machine and the big Xeon burns idle watts at
        // every barrier. (In Case 2 the two policies bracket the optimum
        // from opposite sides and energy is a statistical tie at reduced
        // scale.)
        let ctx = tiny_ctx();
        let cluster = Cluster::case3();
        let pool = profile_pool(&cluster, &ctx);
        let graphs = ctx.natural_graphs();
        let rows = run_matrix(
            &cluster,
            &pool,
            &graphs,
            &TEST_PARTITIONERS,
            &Policy::ALL,
            ctx.apps(),
            ctx.threads,
        );
        let prior = stats::mean(&energy_savings_over(
            &rows,
            Policy::Default,
            Policy::PriorWork,
        ));
        let ccr = stats::mean(&energy_savings_over(
            &rows,
            Policy::Default,
            Policy::CcrGuided,
        ));
        assert!(
            ccr > prior,
            "ccr energy saving {ccr} must beat prior {prior}"
        );
        assert!(ccr > 0.0);
        let prior_speed = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::PriorWork));
        let ccr_speed = stats::geomean(&speedups_over(&rows, Policy::Default, Policy::CcrGuided));
        assert!(ccr_speed > prior_speed, "case 3 speedup ordering");
    }

    #[test]
    fn speedups_and_find_consistency() {
        let ctx = tiny_ctx();
        let cluster = Cluster::case1();
        let pool = profile_pool(&cluster, &ctx);
        let graphs = vec![ctx.natural_graphs().remove(0)];
        let rows = run_matrix(
            &cluster,
            &pool,
            &graphs,
            &[PartitionerKind::RandomHash],
            &[Policy::Default, Policy::CcrGuided],
            &[AnyApp::pagerank()],
            ctx.threads,
        );
        assert_eq!(rows.len(), 2);
        let s = speedups_over(&rows, Policy::Default, Policy::CcrGuided);
        assert_eq!(s.len(), 1);
        assert!(s[0] > 0.9, "case 1 ccr should not badly regress: {}", s[0]);
    }

    #[test]
    #[should_panic(expected = "missing row")]
    fn find_panics_on_absent_cell() {
        find(&[], "a", "g", "p", Policy::Default);
    }

    #[test]
    fn write_traces_emits_loadable_chrome_files() {
        let mut ctx = ExperimentContext::at_scale(2048);
        ctx.apps = vec![AnyApp::pagerank()];
        assert!(write_traces(&ctx).is_empty(), "no dirs -> no files");

        let dir = std::env::temp_dir().join(format!("hetgraph_traces_{}", std::process::id()));
        let mdir = std::env::temp_dir().join(format!("hetgraph_metrics_{}", std::process::id()));
        ctx.trace_dir = Some(dir.clone());
        ctx.metrics_dir = Some(mdir.clone());
        let written = write_traces(&ctx);
        // Every case cluster gets one profile trace, one trace per app,
        // and a metrics snapshot in both formats.
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        let expected: Vec<String> = ["case1", "case2", "case3"]
            .iter()
            .flat_map(|case| {
                [
                    format!("{case}_profile.trace.json"),
                    format!("{case}_amazon_pagerank.trace.json"),
                    format!("{case}.metrics.json"),
                    format!("{case}.metrics.prom"),
                ]
            })
            .collect();
        assert_eq!(names, expected);
        let sim_trace = std::fs::read_to_string(&written[1]).unwrap();
        assert!(written[1].ends_with("case1_amazon_pagerank.trace.json"));
        assert!(sim_trace.contains("\"traceEvents\""));
        assert!(sim_trace.contains("barrier_wait"));
        assert!(sim_trace.contains("partition/hybrid"));
        let profile_trace = std::fs::read_to_string(&written[0]).unwrap();
        assert!(profile_trace.contains("proxy_generation"));
        let metrics_json = std::fs::read_to_string(&written[2]).unwrap();
        assert!(metrics_json.contains("engine/superstep_makespan_s"));
        assert!(
            !metrics_json.contains("\"Wall\""),
            "snapshots are sim-domain only"
        );
        let back = hetgraph_core::metrics::MetricsSnapshot::from_json(&metrics_json).unwrap();
        assert_eq!(back.to_json(), metrics_json, "snapshot round-trips exactly");
        let prom = std::fs::read_to_string(&written[3]).unwrap();
        assert!(prom.contains("# TYPE hetgraph_engine_supersteps_total counter"));

        // Metrics-only mode still covers every case, with no trace files.
        ctx.trace_dir = None;
        let metrics_only = write_traces(&ctx);
        assert_eq!(metrics_only.len(), 6);
        assert!(metrics_only
            .iter()
            .all(|p| p.to_string_lossy().contains(".metrics.")));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&mdir).unwrap();
    }
}
