//! Experiment configuration shared by every harness.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use hetgraph_apps::{AnyApp, AppRegistry};
use hetgraph_core::Graph;
use hetgraph_gen::{NaturalGraph, ProxySet};

/// The named natural-graph stand-ins, shared process-wide by
/// [`ExperimentContext::natural_graphs_shared`].
pub type SharedGraphs = Arc<Vec<(String, Graph)>>;

/// Configuration for one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Graph downscale factor: 1 reproduces the paper's Table II sizes,
    /// `N` divides every |V| and |E| by `N` (average degree preserved).
    pub scale: u32,
    /// Where to write machine-readable JSON results (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
    /// Host thread budget, split between sweep-level and engine-level
    /// parallelism (see DESIGN.md "Threading model"). Defaults to
    /// `HETGRAPH_THREADS` or, failing that, every available core.
    pub threads: usize,
    /// Workloads to sweep. Defaults to the paper's four
    /// ([`hetgraph_apps::standard_apps`]) so figure output is unchanged;
    /// `--apps` selects any subset of the full registry (`--apps all`
    /// runs all six).
    pub apps: Vec<AnyApp>,
    /// Where to write Chrome `trace_event` files for representative cells
    /// (`None` = no traces; set by `--trace-dir`).
    pub trace_dir: Option<PathBuf>,
    /// Where to write aggregated metrics snapshots (JSON + Prometheus
    /// text exposition) for representative cells (`None` = no snapshots;
    /// set by `--metrics-dir`).
    pub metrics_dir: Option<PathBuf>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            scale: 64,
            out_dir: None,
            threads: hetgraph_core::par::default_host_threads(),
            apps: hetgraph_apps::standard_apps(),
            trace_dir: None,
            metrics_dir: None,
        }
    }
}

impl ExperimentContext {
    /// Context at an explicit scale.
    pub fn at_scale(scale: u32) -> Self {
        assert!(scale > 0, "scale must be positive");
        ExperimentContext {
            scale,
            ..ExperimentContext::default()
        }
    }

    /// This context with an explicit host thread budget.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread budget must be positive");
        self.threads = threads;
        self
    }

    /// Parse the shared flags (`--scale N`, `--out DIR`, `--threads N`,
    /// `--apps LIST`) from the process arguments. Any other flag is a
    /// usage error.
    pub fn from_args() -> Self {
        Self::from_args_with(&[]).0
    }

    /// [`ExperimentContext::from_args`] for binaries with extra
    /// binary-specific flags: each name in `extra` (e.g. `"--case"`) is
    /// accepted with one value and returned verbatim in the second tuple
    /// element. Unrecognized `--*` flags (and stray positional arguments)
    /// print a usage error listing the valid options and exit.
    pub fn from_args_with(extra: &[&str]) -> (Self, Vec<String>) {
        match Self::parse_args(std::env::args().skip(1), extra) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", Self::usage(extra));
                std::process::exit(2);
            }
        }
    }

    /// The flag-parsing core of [`ExperimentContext::from_args_with`],
    /// separated from the process environment for testability.
    pub fn parse_args<I>(args: I, extra: &[&str]) -> Result<(Self, Vec<String>), String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut ctx = ExperimentContext::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    ctx.scale = v
                        .parse()
                        .map_err(|_| format!("--scale must be a positive integer, got {v:?}"))?;
                    if ctx.scale == 0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a value")?;
                    ctx.out_dir = Some(PathBuf::from(v));
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    ctx.threads = v
                        .parse()
                        .map_err(|_| format!("--threads must be a positive integer, got {v:?}"))?;
                    if ctx.threads == 0 {
                        return Err("--threads must be positive".into());
                    }
                }
                "--apps" => {
                    let v = it.next().ok_or("--apps needs a value")?;
                    ctx.apps = Self::parse_apps(&v)?;
                }
                "--trace-dir" => {
                    let v = it.next().ok_or("--trace-dir needs a value")?;
                    ctx.trace_dir = Some(PathBuf::from(v));
                }
                "--metrics-dir" => {
                    let v = it.next().ok_or("--metrics-dir needs a value")?;
                    ctx.metrics_dir = Some(PathBuf::from(v));
                }
                other if extra.contains(&other) => {
                    let v = it.next().ok_or_else(|| format!("{other} needs a value"))?;
                    rest.push(other.to_string());
                    rest.push(v);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unrecognized flag {other:?}"));
                }
                other => {
                    return Err(format!("unexpected argument {other:?}"));
                }
            }
        }
        Ok((ctx, rest))
    }

    /// The usage text listing every option this binary accepts.
    pub fn usage(extra: &[&str]) -> String {
        let mut s = String::from(
            "valid options:\n  \
             --scale N     graph downscale factor (default 64)\n  \
             --out DIR     write machine-readable JSON results to DIR\n  \
             --threads N   host thread budget (default: HETGRAPH_THREADS or all cores)\n  \
             --apps LIST   comma-separated workloads, or \"all\" (default: the paper's\n                \
             four; registry: pagerank,coloring,connected_components,\n                \
             triangle_count,sssp,kcore)\n  \
             --trace-dir DIR  write Chrome trace_event files for representative\n                \
             cells to DIR (open in chrome://tracing or ui.perfetto.dev)\n  \
             --metrics-dir DIR  write per-case metrics snapshots (sim-domain JSON\n                \
             plus Prometheus text exposition) to DIR",
        );
        for e in extra {
            s.push_str(&format!("\n  {e} VALUE"));
        }
        s
    }

    /// Resolve a `--apps` value against the full registry.
    ///
    /// `"all"` selects every registered workload; otherwise the value is a
    /// comma-separated list of registry names, resolved in the order
    /// given.
    pub fn parse_apps(list: &str) -> Result<Vec<AnyApp>, String> {
        let registry = AppRegistry::full();
        if list == "all" {
            return Ok(registry.apps().to_vec());
        }
        let mut apps = Vec::new();
        for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            let app = registry.get(name).ok_or_else(|| {
                format!(
                    "unknown app {name:?}; registry has: {}",
                    registry.names().join(", ")
                )
            })?;
            if !apps.contains(app) {
                apps.push(app.clone());
            }
        }
        if apps.is_empty() {
            return Err("--apps needs at least one workload".into());
        }
        Ok(apps)
    }

    /// The workloads this run sweeps (the `--apps` selection, defaulting
    /// to the paper's four).
    pub fn apps(&self) -> &[AnyApp] {
        &self.apps
    }

    /// The four natural-graph stand-ins at this context's scale, in Table
    /// II order, with their display names.
    ///
    /// Freshly generated on every call; sweeps that revisit the same
    /// scale should use [`ExperimentContext::natural_graphs_shared`] so
    /// the R-MAT generation cost is paid once per scale per process.
    pub fn natural_graphs(&self) -> Vec<(String, Graph)> {
        NaturalGraph::ALL
            .iter()
            .map(|g| (g.name().to_string(), g.generate(self.scale)))
            .collect()
    }

    /// [`ExperimentContext::natural_graphs`] memoized process-wide by
    /// scale: the first call at a given scale generates the four
    /// stand-ins, every later call (from any case cluster, figure, or
    /// trace pass) gets the same `Arc`. Generation is deterministic
    /// (fixed per-spec seeds), so sharing cannot change any result — it
    /// only removes the repeated O(E) generation work `exp_all` used to
    /// pay once per figure.
    pub fn natural_graphs_shared(&self) -> SharedGraphs {
        static CACHE: OnceLock<Mutex<HashMap<u32, SharedGraphs>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().unwrap().get(&self.scale) {
            return Arc::clone(hit);
        }
        // Generate outside the lock: concurrent first callers may race to
        // build the same set, but insertion keeps the first winner so all
        // callers still converge on one allocation.
        let built = Arc::new(self.natural_graphs());
        Arc::clone(
            cache
                .lock()
                .unwrap()
                .entry(self.scale)
                .or_insert_with(|| built),
        )
    }

    /// The standard proxy set at this context's scale.
    pub fn proxies(&self) -> ProxySet {
        ProxySet::standard(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn default_scale_is_laptop_sized() {
        let ctx = ExperimentContext::default();
        assert_eq!(ctx.scale, 64);
        assert!(ctx.out_dir.is_none());
        assert!(ctx.threads >= 1);
    }

    #[test]
    fn natural_graphs_in_table2_order() {
        let ctx = ExperimentContext::at_scale(512);
        let graphs = ctx.natural_graphs();
        assert_eq!(graphs.len(), 4);
        assert_eq!(graphs[0].0, "amazon");
        assert_eq!(graphs[3].0, "wiki");
        // Density is preserved by scaling.
        let amazon_density = graphs[0].1.avg_degree();
        assert!(
            (amazon_density - 8.4).abs() < 1.0,
            "density {amazon_density}"
        );
    }

    #[test]
    fn natural_graphs_shared_memoizes_by_scale() {
        let ctx = ExperimentContext::at_scale(1024);
        let a = ctx.natural_graphs_shared();
        let b = ctx.natural_graphs_shared();
        assert!(Arc::ptr_eq(&a, &b), "same scale must share one allocation");
        let other = ExperimentContext::at_scale(2048).natural_graphs_shared();
        assert!(!Arc::ptr_eq(&a, &other), "scales must not alias");
        // The shared set is exactly what a fresh generation produces.
        let fresh = ctx.natural_graphs();
        assert_eq!(a.len(), fresh.len());
        for ((sn, sg), (fn_, fg)) in a.iter().zip(&fresh) {
            assert_eq!(sn, fn_);
            assert_eq!(sg.edges(), fg.edges());
        }
    }

    #[test]
    fn proxies_scale_with_context() {
        let ctx = ExperimentContext::at_scale(3200);
        assert_eq!(ctx.proxies().proxies()[0].num_vertices, 1_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        ExperimentContext::at_scale(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_thread_budget_rejected() {
        ExperimentContext::default().with_threads(0);
    }

    #[test]
    fn parse_args_accepts_shared_flags() {
        let (ctx, rest) = ExperimentContext::parse_args(
            argv(&["--scale", "128", "--threads", "4", "--out", "results"]),
            &[],
        )
        .unwrap();
        assert_eq!(ctx.scale, 128);
        assert_eq!(ctx.threads, 4);
        assert_eq!(
            ctx.out_dir.as_deref(),
            Some(std::path::Path::new("results"))
        );
        assert!(rest.is_empty());
    }

    #[test]
    fn parse_args_rejects_unknown_flag() {
        // The motivating typo: `--thread 8` must not silently run serial.
        let err = ExperimentContext::parse_args(argv(&["--thread", "8"]), &[]).unwrap_err();
        assert!(err.contains("--thread"), "err: {err}");
    }

    #[test]
    fn parse_args_rejects_stray_positional() {
        let err = ExperimentContext::parse_args(argv(&["case2"]), &[]).unwrap_err();
        assert!(err.contains("case2"), "err: {err}");
    }

    #[test]
    fn parse_args_threads_must_be_positive_integer() {
        assert!(ExperimentContext::parse_args(argv(&["--threads", "0"]), &[]).is_err());
        assert!(ExperimentContext::parse_args(argv(&["--threads", "many"]), &[]).is_err());
        assert!(ExperimentContext::parse_args(argv(&["--threads"]), &[]).is_err());
    }

    #[test]
    fn parse_args_passes_extra_flags_through() {
        let (ctx, rest) =
            ExperimentContext::parse_args(argv(&["--case", "3", "--scale", "256"]), &["--case"])
                .unwrap();
        assert_eq!(ctx.scale, 256);
        assert_eq!(rest, argv(&["--case", "3"]));
        // The same flag without the allowlist is an error.
        assert!(ExperimentContext::parse_args(argv(&["--case", "3"]), &[]).is_err());
    }

    #[test]
    fn default_apps_are_the_papers_four() {
        let names: Vec<_> = ExperimentContext::default()
            .apps()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(
            names,
            [
                "pagerank",
                "coloring",
                "connected_components",
                "triangle_count"
            ]
        );
    }

    #[test]
    fn parse_args_accepts_apps_selector() {
        let (ctx, _) = ExperimentContext::parse_args(argv(&["--apps", "sssp,kcore"]), &[]).unwrap();
        let names: Vec<_> = ctx.apps().iter().map(|a| a.name()).collect();
        assert_eq!(names, ["sssp", "kcore"]);
        let (all, _) = ExperimentContext::parse_args(argv(&["--apps", "all"]), &[]).unwrap();
        assert_eq!(all.apps().len(), 6);
    }

    #[test]
    fn parse_apps_rejects_unknown_and_empty() {
        let err = ExperimentContext::parse_apps("pagerank,frobnicate").unwrap_err();
        assert!(
            err.contains("frobnicate") && err.contains("kcore"),
            "err: {err}"
        );
        assert!(ExperimentContext::parse_apps("").is_err());
        // Duplicates collapse.
        assert_eq!(
            ExperimentContext::parse_apps("sssp, sssp").unwrap().len(),
            1
        );
    }

    #[test]
    fn usage_lists_extra_flags() {
        let u = ExperimentContext::usage(&["--study"]);
        assert!(u.contains("--threads"));
        assert!(u.contains("--apps"));
        assert!(u.contains("--trace-dir"));
        assert!(u.contains("--study"));
    }

    #[test]
    fn parse_args_accepts_trace_dir() {
        let (ctx, _) =
            ExperimentContext::parse_args(argv(&["--trace-dir", "traces"]), &[]).unwrap();
        assert_eq!(
            ctx.trace_dir.as_deref(),
            Some(std::path::Path::new("traces"))
        );
        assert!(ExperimentContext::default().trace_dir.is_none());
        assert!(ExperimentContext::parse_args(argv(&["--trace-dir"]), &[]).is_err());
    }

    #[test]
    fn parse_args_accepts_metrics_dir() {
        let (ctx, _) =
            ExperimentContext::parse_args(argv(&["--metrics-dir", "metrics"]), &[]).unwrap();
        assert_eq!(
            ctx.metrics_dir.as_deref(),
            Some(std::path::Path::new("metrics"))
        );
        assert!(ExperimentContext::default().metrics_dir.is_none());
        assert!(ExperimentContext::parse_args(argv(&["--metrics-dir"]), &[]).is_err());
        assert!(ExperimentContext::usage(&[]).contains("--metrics-dir"));
    }
}
