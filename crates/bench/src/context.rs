//! Experiment configuration shared by every harness.

use std::path::PathBuf;

use hetgraph_core::Graph;
use hetgraph_gen::{NaturalGraph, ProxySet};

/// Configuration for one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Graph downscale factor: 1 reproduces the paper's Table II sizes,
    /// `N` divides every |V| and |E| by `N` (average degree preserved).
    pub scale: u32,
    /// Where to write machine-readable JSON results (`None` = stdout only).
    pub out_dir: Option<PathBuf>,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            scale: 64,
            out_dir: None,
        }
    }
}

impl ExperimentContext {
    /// Context at an explicit scale.
    pub fn at_scale(scale: u32) -> Self {
        assert!(scale > 0, "scale must be positive");
        ExperimentContext {
            scale,
            out_dir: None,
        }
    }

    /// Parse `--scale N` and `--out DIR` from command-line arguments
    /// (unknown arguments are returned for the caller to interpret).
    pub fn from_args() -> (Self, Vec<String>) {
        let mut ctx = ExperimentContext::default();
        let mut rest = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    ctx.scale = v.parse().expect("--scale must be a positive integer");
                    assert!(ctx.scale > 0, "--scale must be positive");
                }
                "--out" => {
                    ctx.out_dir = Some(PathBuf::from(args.next().expect("--out needs a value")));
                }
                other => rest.push(other.to_string()),
            }
        }
        (ctx, rest)
    }

    /// The four natural-graph stand-ins at this context's scale, in Table
    /// II order, with their display names.
    pub fn natural_graphs(&self) -> Vec<(String, Graph)> {
        NaturalGraph::ALL
            .iter()
            .map(|g| (g.name().to_string(), g.generate(self.scale)))
            .collect()
    }

    /// The standard proxy set at this context's scale.
    pub fn proxies(&self) -> ProxySet {
        ProxySet::standard(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_laptop_sized() {
        let ctx = ExperimentContext::default();
        assert_eq!(ctx.scale, 64);
        assert!(ctx.out_dir.is_none());
    }

    #[test]
    fn natural_graphs_in_table2_order() {
        let ctx = ExperimentContext::at_scale(512);
        let graphs = ctx.natural_graphs();
        assert_eq!(graphs.len(), 4);
        assert_eq!(graphs[0].0, "amazon");
        assert_eq!(graphs[3].0, "wiki");
        // Density is preserved by scaling.
        let amazon_density = graphs[0].1.avg_degree();
        assert!(
            (amazon_density - 8.4).abs() < 1.0,
            "density {amazon_density}"
        );
    }

    #[test]
    fn proxies_scale_with_context() {
        let ctx = ExperimentContext::at_scale(3200);
        assert_eq!(ctx.proxies().proxies()[0].num_vertices, 1_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        ExperimentContext::at_scale(0);
    }
}
