//! Table I, Table II, and Fig 6.

use hetgraph_cluster::catalog;
use hetgraph_core::degree::DegreeHistogram;
use hetgraph_gen::{fit_alpha, NaturalGraph, ProxySet};

use crate::context::ExperimentContext;
use crate::output::{f3, print_table, write_json};

/// One Table I row (serializable snapshot of the catalog).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table1Row {
    /// Machine name.
    pub name: String,
    /// Hardware threads.
    pub hw_threads: u32,
    /// Computing threads.
    pub computing_threads: u32,
    /// Hourly price (None for physical machines).
    pub cost_rate: Option<f64>,
    /// "Virtual" or "Physical".
    pub kind: String,
}

/// Table I: the machine catalog.
pub fn table1(ctx: &ExperimentContext) -> Vec<Table1Row> {
    println!("== Table I: machine configurations ==\n");
    let rows: Vec<Table1Row> = catalog::table1()
        .into_iter()
        .map(|m| Table1Row {
            name: m.name.clone(),
            hw_threads: m.hw_threads,
            computing_threads: m.computing_threads(),
            cost_rate: m.hourly_rate,
            kind: if m.hourly_rate.is_some() {
                "Virtual"
            } else {
                "Physical"
            }
            .into(),
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.hw_threads.to_string(),
                r.computing_threads.to_string(),
                r.cost_rate.map_or("N/A".into(), |c| format!("${c}/hour")),
                r.kind.clone(),
            ]
        })
        .collect();
    print_table(
        &[
            "name",
            "hw_threads",
            "computing_threads",
            "cost_rate",
            "type",
        ],
        &table,
    );
    write_json(ctx.out_dir.as_deref(), "table1", &rows);
    rows
}

/// One Table II row.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table2Row {
    /// Graph name.
    pub name: String,
    /// Full-scale vertex count.
    pub vertices: u64,
    /// Full-scale edge count.
    pub edges: u64,
    /// Binary footprint in MB at full scale (8 bytes/edge).
    pub footprint_mb: f64,
    /// Fitted power-law exponent (Eq. 7 for natural graphs; the generation
    /// parameter for synthetic proxies).
    pub alpha: f64,
}

/// Table II: real-world graph stand-ins and synthetic proxies.
pub fn table2(ctx: &ExperimentContext) -> Vec<Table2Row> {
    println!(
        "== Table II: graphs (full-scale counts; runs use 1/{}) ==\n",
        ctx.scale
    );
    let mut rows = Vec::new();
    for g in NaturalGraph::ALL {
        let spec = g.spec();
        rows.push(Table2Row {
            name: spec.name.clone(),
            vertices: spec.vertices,
            edges: spec.edges,
            footprint_mb: spec.edges as f64 * 8.0 / 1e6,
            alpha: spec.fitted_alpha(),
        });
    }
    for p in ProxySet::standard(1).proxies() {
        rows.push(Table2Row {
            name: p.name.clone(),
            vertices: p.num_vertices as u64,
            edges: p.expected_edges() as u64,
            footprint_mb: p.expected_edges() * 8.0 / 1e6,
            alpha: p.alpha,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.vertices.to_string(),
                r.edges.to_string(),
                format!("{:.0}MB", r.footprint_mb),
                f3(r.alpha),
            ]
        })
        .collect();
    print_table(&["name", "vertices", "edges", "footprint", "alpha"], &table);
    write_json(ctx.out_dir.as_deref(), "table2", &rows);
    rows
}

/// Fig 6: the degree distribution of the social-network stand-in on
/// log-log axes (printed as a log-binned table) plus its fitted α.
pub fn fig6(ctx: &ExperimentContext) -> Vec<(usize, usize)> {
    println!(
        "== Fig 6: power-law degree distribution (social stand-in, 1/{}) ==\n",
        ctx.scale
    );
    let g = NaturalGraph::SocialNetwork.generate(ctx.scale);
    let hist = DegreeHistogram::total_degrees(&g);
    // Log-binned view: bins [2^k, 2^(k+1)).
    let mut bins: Vec<(usize, usize)> = Vec::new();
    let mut lo = 1usize;
    while lo <= hist.max_degree() {
        let hi = lo * 2;
        let count: usize = (lo..hi.min(hist.max_degree() + 1))
            .map(|d| hist.count(d))
            .sum();
        if count > 0 {
            bins.push((lo, count));
        }
        lo = hi;
    }
    let table: Vec<Vec<String>> = bins
        .iter()
        .map(|&(d, c)| vec![format!("[{d}, {})", d * 2), c.to_string()])
        .collect();
    print_table(&["degree_bin", "num_vertices"], &table);
    let fitted = hist.fit_alpha_ccdf(2);
    let eq7 = fit_alpha(g.num_vertices() as u64, g.num_edges() as u64).map(|f| f.alpha);
    println!(
        "\nempirical tail alpha (CCDF fit): {} | Eq. 7 moment fit: {}",
        fitted.map_or("n/a".into(), f3),
        eq7.map_or("n/a".into(), f3),
    );
    write_json(ctx.out_dir.as_deref(), "fig6", &bins);
    bins
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_paper_rows() {
        let rows = table1(&ExperimentContext::at_scale(1024));
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].name, "c4.xlarge");
        assert_eq!(rows[5].cost_rate, Some(1.675));
        assert_eq!(rows[6].kind, "Physical");
    }

    #[test]
    fn table2_alphas_in_band() {
        let rows = table2(&ExperimentContext::at_scale(1024));
        assert_eq!(rows.len(), 7);
        // Synthetic proxies carry their generation alphas exactly.
        assert_eq!(rows[4].alpha, 1.95);
        assert_eq!(rows[6].alpha, 2.30);
        // Natural stand-ins land in a plausible power-law band.
        for r in &rows[..4] {
            assert!(r.alpha > 1.5 && r.alpha < 3.2, "{}: {}", r.name, r.alpha);
        }
    }

    #[test]
    fn fig6_bins_decay() {
        let bins = fig6(&ExperimentContext::at_scale(1024));
        assert!(bins.len() >= 4, "need a few decades of degrees");
        // Power law: early bins hold far more vertices than late bins.
        assert!(bins[0].1 > bins[bins.len() - 1].1 * 10);
    }
}
