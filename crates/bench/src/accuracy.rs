//! Fig 2 (motivation) and Fig 8 (CCR accuracy).

use hetgraph_apps::{standard_apps, AnyApp};
use hetgraph_cluster::{catalog, MachineSpec};
use hetgraph_core::Graph;
use hetgraph_profile::runner::profiling_set_time;
use hetgraph_profile::AccuracyReport;

use crate::context::ExperimentContext;
use crate::output::{f3, pct, print_table, write_json};

/// One Fig 2 series point: an application's real speedup on a machine vs
/// the thread-count estimate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig2Point {
    /// Application ("estimate" for the thread-count line).
    pub series: String,
    /// Machine name.
    pub machine: String,
    /// Speedup over the smallest machine.
    pub speedup: f64,
}

/// Fig 2: real scaling of the four applications across the c4 family vs
/// the resource-based estimate of prior work. Measured on the social
/// network stand-in (the paper's headline natural graph).
pub fn fig2(ctx: &ExperimentContext) -> Vec<Fig2Point> {
    let machines = [
        catalog::c4_xlarge(),
        catalog::c4_2xlarge(),
        catalog::c4_4xlarge(),
        catalog::c4_8xlarge(),
    ];
    println!(
        "== Fig 2: estimated vs real speedup across c4 machines, scale 1/{} ==\n",
        ctx.scale
    );
    let graph = hetgraph_gen::NaturalGraph::SocialNetwork.generate(ctx.scale);
    let mut points = Vec::new();

    // The prior-work "estimate" line: computing threads relative to base.
    let base_threads = machines[0].computing_threads() as f64;
    for m in &machines {
        points.push(Fig2Point {
            series: "estimate".into(),
            machine: m.name.clone(),
            speedup: m.computing_threads() as f64 / base_threads,
        });
    }
    for app in standard_apps() {
        let t_base = profiling_set_time(&machines[0], &app, std::slice::from_ref(&graph));
        for m in &machines {
            let t = profiling_set_time(m, &app, std::slice::from_ref(&graph));
            points.push(Fig2Point {
                series: app.name().to_string(),
                machine: m.name.clone(),
                speedup: t_base / t,
            });
        }
    }

    let mut table = Vec::new();
    for series in [
        "estimate",
        "pagerank",
        "coloring",
        "connected_components",
        "triangle_count",
    ] {
        let mut row = vec![series.to_string()];
        for m in &machines {
            let p = points
                .iter()
                .find(|p| p.series == series && p.machine == m.name)
                .expect("point exists");
            row.push(f3(p.speedup));
        }
        table.push(row);
    }
    print_table(
        &["series", "xlarge", "2xlarge", "4xlarge", "8xlarge"],
        &table,
    );
    println!(
        "\nShape check: PageRank saturates mid-range, TriangleCount keeps climbing,\n\
         the estimate line wildly overshoots every application at 8xlarge."
    );
    write_json(ctx.out_dir.as_deref(), "fig2", &points);
    points
}

/// Fig 8a/8b output: the accuracy table plus summary error percentages.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Fig8Result {
    /// Which part ("a" = within the c4 category, "b" = across categories).
    pub part: String,
    /// The per-(app, machine) rows.
    pub report: AccuracyReport,
    /// Mean proxy estimation error, percent.
    pub proxy_error_pct: f64,
    /// Mean prior-work estimation error, percent.
    pub prior_error_pct: f64,
}

/// Fig 8: CCR accuracy from synthetic proxies vs real graphs.
///
/// Part "a": c4.{x,2x,4x,8x}large (baseline c4.xlarge) — the paper reports
/// 92 % accuracy here and 108 % error for thread counts.
/// Part "b": {m4,c4,r3}.2xlarge (baseline m4.2xlarge) — the paper reports
/// 96 % accuracy.
pub fn fig8(ctx: &ExperimentContext, part: &str) -> Fig8Result {
    let (baseline, machines): (MachineSpec, Vec<MachineSpec>) = match part {
        "a" => (
            catalog::c4_xlarge(),
            vec![
                catalog::c4_2xlarge(),
                catalog::c4_4xlarge(),
                catalog::c4_8xlarge(),
            ],
        ),
        "b" => (
            catalog::m4_2xlarge(),
            vec![catalog::c4_2xlarge(), catalog::r3_2xlarge()],
        ),
        other => panic!("fig8 part must be \"a\" or \"b\", got {other:?}"),
    };
    println!("== Fig 8{part}: CCR accuracy, scale 1/{} ==\n", ctx.scale);
    let shared = ctx.natural_graphs_shared();
    let real: Vec<Graph> = shared.iter().map(|(_, g)| g.clone()).collect();
    let report = AccuracyReport::evaluate(
        &baseline,
        &machines,
        &standard_apps(),
        &ctx.proxies(),
        &real,
    );

    let mut table = Vec::new();
    for r in &report.rows {
        table.push(vec![
            r.app.clone(),
            r.machine.clone(),
            f3(r.real_speedup),
            f3(r.proxy_speedup),
            f3(r.prior_speedup),
            pct(100.0 * r.proxy_error()),
            pct(100.0 * r.prior_error()),
        ]);
    }
    print_table(
        &[
            "app",
            "machine",
            "real",
            "proxy",
            "prior",
            "proxy_err",
            "prior_err",
        ],
        &table,
    );
    let result = Fig8Result {
        part: part.to_string(),
        proxy_error_pct: report.proxy_error_pct(),
        prior_error_pct: report.prior_error_pct(),
        report,
    };
    let paper = if part == "a" {
        "(paper: proxy error ~8%, prior error ~108%)"
    } else {
        "(paper: proxy error ~4%)"
    };
    println!(
        "\nFig 8{part}: proxy error {} | prior error {} {paper}",
        pct(result.proxy_error_pct),
        pct(result.prior_error_pct),
    );
    write_json(ctx.out_dir.as_deref(), &format!("fig8{part}"), &result);
    result
}

/// Convenience: the applications' real per-machine profile times — used by
/// ablations and docs examples.
pub fn profile_times_on(
    machines: &[MachineSpec],
    app: &AnyApp,
    graph: &Graph,
) -> Vec<(String, f64)> {
    machines
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                profiling_set_time(m, app, std::slice::from_ref(graph)),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shapes() {
        let ctx = ExperimentContext::at_scale(1024);
        let points = fig2(&ctx);
        let get = |series: &str, machine: &str| {
            points
                .iter()
                .find(|p| p.series == series && p.machine == machine)
                .unwrap()
                .speedup
        };
        // Estimate overshoots the saturating app on the biggest machine.
        assert!(get("estimate", "c4.8xlarge") > 2.0 * get("pagerank", "c4.8xlarge"));
        // TriangleCount scales further than PageRank.
        assert!(get("triangle_count", "c4.8xlarge") > get("pagerank", "c4.8xlarge"));
        // Everything is monotone in machine size.
        for s in [
            "pagerank",
            "coloring",
            "connected_components",
            "triangle_count",
        ] {
            assert!(get(s, "c4.2xlarge") > get(s, "c4.xlarge"), "{s}");
            assert!(get(s, "c4.8xlarge") > get(s, "c4.2xlarge"), "{s}");
        }
    }

    #[test]
    fn fig8a_proxy_beats_prior() {
        let ctx = ExperimentContext::at_scale(1024);
        let r = fig8(&ctx, "a");
        assert!(r.proxy_error_pct < r.prior_error_pct);
        assert!(r.prior_error_pct > 40.0, "prior err {}", r.prior_error_pct);
    }

    #[test]
    fn fig8b_cross_category_accuracy() {
        let ctx = ExperimentContext::at_scale(1024);
        let r = fig8(&ctx, "b");
        assert!(r.proxy_error_pct < 20.0, "proxy err {}", r.proxy_error_pct);
    }

    #[test]
    #[should_panic(expected = "part must be")]
    fn bad_part_rejected() {
        fig8(&ExperimentContext::at_scale(1024), "c");
    }
}
