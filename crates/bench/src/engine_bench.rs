//! Superstep-kernel perf baseline (`BENCH_engine.json`).
//!
//! Mirrors the partition perf baseline: every measurement is taken on a
//! frozen power-law fixture (`generate(42)`, ≥1M vertices / ~5M edges at
//! scale 1) against a **vendored copy of the pre-fast-path kernel**
//! ([`seed_kernel`]) run live in the same process, so the headline
//! numbers are host-speed-independent ratios, not wall-clocks.
//!
//! Per app (PageRank 5 iters, its f32 twin, SSSP, k-core 3):
//!
//! 1. **Seed-vs-fast comparison** — interleaved min-of-`reps` wall-clock
//!    of the vendored seed kernel against `SimEngine` at one thread,
//!    asserting on every rep that the two produce the identical
//!    `SimReport` *and* identical final vertex data (the fast path is an
//!    optimization, not an approximation).
//! 2. **Throughput rows** — edge-visits/second of the fast kernel; for
//!    PageRank also at 2 and 4 host threads (each asserted bit-identical
//!    to the 1-thread report).
//!
//! `check` gates CI on the committed `BENCH_engine.json`: normalized
//! single-thread rates and the per-app speedups must stay within
//! [`CHECK_TOLERANCE`] of the baseline. Multi-thread rows are recorded
//! but not gated (their scaling depends on the runner's core count,
//! which normalization cannot cancel).

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

use hetgraph_apps::{KCore, PageRank, PageRank32, Sssp};
use hetgraph_cluster::{Cluster, EnergyModel, EnergyReport, GraphShape, NetworkModel, WorkCounts};
use hetgraph_core::BitSet;
use hetgraph_engine::{ActiveInit, Direction, DistributedGraph, GasProgram, SimEngine, SimReport};
use hetgraph_gen::PowerLawConfig;
use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};
use serde::Value;

use crate::context::ExperimentContext;
use crate::output;

/// Fixed chunk size of the kernel's self-scheduling — vendored with the
/// seed loop so its merge order matches the engine's exactly.
const CHUNK: usize = 1_024;

/// One app × thread-count throughput measurement of the fast kernel.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KernelRow {
    /// Application name (report key).
    pub app: String,
    /// Engine host threads.
    pub threads: usize,
    /// Best-of-`reps` wall-clock of one full run, seconds.
    pub wall_s: f64,
    /// Simulated edge-work units retired per second at `wall_s`.
    pub edges_per_sec: f64,
}

/// One app's seed-vs-fast kernel comparison (both at one host thread).
#[derive(Debug, Clone, serde::Serialize)]
pub struct SeedComparison {
    /// Application name.
    pub app: String,
    /// Interleaved repetitions; both columns are min-of-`reps`.
    pub reps: usize,
    /// Best wall-clock of the vendored seed kernel, seconds.
    pub seed_wall_s: f64,
    /// Best wall-clock of the fast kernel, seconds.
    pub fast_wall_s: f64,
    /// `seed_wall_s / fast_wall_s`.
    pub speedup: f64,
    /// Whether every rep produced the identical report and vertex data.
    pub identical: bool,
}

/// The `BENCH_engine.json` payload.
#[derive(Debug, serde::Serialize)]
pub struct EngineBench {
    /// Graph downscale factor the fixture was generated at.
    pub scale: u32,
    /// Vertices in the fixture.
    pub vertices: u32,
    /// Edges in the fixture.
    pub edges: usize,
    /// Simulated machines (Cluster::case2).
    pub machines: usize,
    /// Fast-kernel throughput rows.
    pub rows: Vec<KernelRow>,
    /// Per-app seed-vs-fast comparisons.
    pub seed: Vec<SeedComparison>,
    /// Total experiment wall-clock, seconds.
    pub total_wall_s: f64,
}

/// Scratch buffers of one seed-kernel gather chunk (the pre-fast-path
/// array-of-structs layout).
struct SeedChunk<D> {
    changes: Vec<(u32, D, bool)>,
    work: Vec<WorkCounts>,
    sync_counts: Vec<u64>,
}

/// The pre-fast-path superstep kernel, vendored verbatim as the live
/// baseline: bitset frontier rebuilt into a `Vec<u32>` every step with a
/// full-bitmap clear, iterator-based CSR walks with no prefetch, and
/// array-of-structs `Vec<WorkCounts>` chunk tallies. Chunking and merge
/// order are identical to the engine's, so its `SimReport` and final
/// vertex data must match the fast kernel bit for bit — asserted on
/// every benchmark rep.
pub fn seed_kernel<P: GasProgram>(
    cluster: &Cluster,
    dist: &DistributedGraph<'_>,
    program: &P,
) -> (Vec<P::VertexData>, SimReport) {
    let graph = dist.graph();
    let assignment = dist.assignment();
    let p = cluster.len();
    let n = graph.num_vertices() as usize;
    let profile = program.profile();
    let shape = GraphShape::of(graph);
    let meta = graph.meta();
    let machines = cluster.machines();
    let network = NetworkModel::default();
    let energy_model = EnergyModel::new(machines.to_vec());

    let mut data: Vec<P::VertexData> = (0..n as u32).map(|v| program.init(&meta, v)).collect();
    let mut active = match program.initial_active(&meta) {
        ActiveInit::All => BitSet::full(n),
        ActiveInit::Seeds(seeds) => {
            let mut s = BitSet::new(n);
            for v in seeds {
                s.insert(v as usize);
            }
            s
        }
    };

    let mut energy = EnergyReport::new(p);
    let mut per_machine_busy = vec![0.0f64; p];
    let mut total_work = vec![WorkCounts::zero(); p];
    let mut makespan = 0.0f64;
    let mut compute_total = 0.0f64;
    let mut comm_total = 0.0f64;
    let mut supersteps = 0usize;
    let mut converged = false;

    let mut active_list: Vec<u32> = Vec::new();
    let mut changed: Vec<u32> = Vec::new();
    let mut next_active = BitSet::new(n);
    let mut step_work = vec![WorkCounts::zero(); p];
    let mut sync_counts = vec![0u64; p];
    let mut busy = vec![0.0f64; p];
    let mut free: Vec<SeedChunk<P::VertexData>> = Vec::new();

    for step in 0..program.max_supersteps() {
        if active.is_empty() {
            converged = true;
            break;
        }
        active_list.clear();
        active_list.extend(active.iter().map(|v| v as u32));
        for w in &mut step_work {
            *w = WorkCounts::zero();
        }
        sync_counts.fill(0);

        // Gather + apply: collect every chunk, then merge in chunk order.
        let n_chunks = active_list.len().div_ceil(CHUNK);
        let mut gathered: Vec<SeedChunk<P::VertexData>> = Vec::with_capacity(n_chunks);
        for idx in 0..n_chunks {
            let lo = idx * CHUNK;
            let hi = (lo + CHUNK).min(active_list.len());
            let mut out = free.pop().unwrap_or_else(|| SeedChunk {
                changes: Vec::new(),
                work: vec![WorkCounts::zero(); p],
                sync_counts: vec![0u64; p],
            });
            for &v in &active_list[lo..hi] {
                let mut acc: Option<P::Accum> = None;
                seed_for_each_neighbor(dist, v, program.gather_direction(), |u, m| {
                    let (contrib, w) = program.gather(&meta, &data, v, u);
                    out.work[m].edge_units += w;
                    if let Some(c) = contrib {
                        acc = Some(match acc.take() {
                            Some(prev) => program.sum(prev, c),
                            None => c,
                        });
                    }
                });
                let master = assignment.master(v).index();
                out.work[master].vertex_units += 1.0;
                let (nd, did_change) = program.apply(&meta, v, &data[v as usize], acc, step);
                out.changes.push((v, nd, did_change));
                let mask = assignment.replica_mask(v);
                let replicas = mask.count_ones();
                if replicas > 1 {
                    out.sync_counts[master] += (replicas - 1) as u64;
                    let mut rest = mask;
                    while rest != 0 {
                        let m = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        if m != master {
                            out.sync_counts[m] += 1;
                        }
                    }
                }
            }
            gathered.push(out);
        }
        changed.clear();
        for mut c in gathered {
            for i in 0..p {
                step_work[i].add(c.work[i]);
                sync_counts[i] += c.sync_counts[i];
            }
            for (v, nd, did_change) in c.changes.drain(..) {
                data[v as usize] = nd;
                if did_change {
                    changed.push(v);
                }
            }
            for w in &mut c.work {
                *w = WorkCounts::zero();
            }
            c.sync_counts.fill(0);
            free.push(c);
        }

        // Scatter over the changed vertices; full-bitmap clear each step.
        next_active.clear();
        if program.scatter_direction() != Direction::None {
            for &v in &changed {
                seed_for_each_neighbor(dist, v, program.scatter_direction(), |u, m| {
                    step_work[m].edge_units += 1.0;
                    if program.scatter_activates(&meta, &data, v, u, true) {
                        next_active.insert(u as usize);
                    }
                });
            }
        }

        // Timing and energy — the same serial section as the engine's.
        busy.clear();
        busy.extend((0..p).map(|i| profile.time_seconds(&machines[i], &step_work[i], &shape)));
        let step_compute = busy.iter().copied().fold(0.0f64, f64::max);
        let step_comm = network.step_comm_s(machines, &sync_counts);
        let step_wall = step_compute + step_comm;
        for i in 0..p {
            energy_model.account_step(&mut energy, i, busy[i], step_wall);
            per_machine_busy[i] += busy[i];
            total_work[i].add(step_work[i]);
        }
        makespan += step_wall;
        compute_total += step_compute;
        comm_total += step_comm;
        supersteps += 1;
        std::mem::swap(&mut active, &mut next_active);
    }
    if active.is_empty() {
        converged = true;
    }

    (
        data,
        SimReport {
            app: program.name().to_string(),
            supersteps,
            converged,
            makespan_s: makespan,
            compute_s: compute_total,
            comm_s: comm_total,
            per_machine_busy_s: per_machine_busy,
            per_machine_work: total_work,
            energy,
            steps: Vec::new(),
        },
    )
}

/// The seed kernel's scatter merge differs from the gather merge in one
/// way the fast path preserved: scatter edge counts land directly in
/// `step_work` in vertex order. Integer-valued unit counts make that sum
/// exact, so chunked u64 tallies reproduce it bit for bit.
fn seed_for_each_neighbor(
    dist: &DistributedGraph<'_>,
    v: u32,
    dir: Direction,
    mut f: impl FnMut(u32, usize),
) {
    match dir {
        Direction::In => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m.index());
            }
        }
        Direction::Out => {
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m.index());
            }
        }
        Direction::Both => {
            for (u, m) in dist.in_neighbors_owned(v) {
                f(u, m.index());
            }
            for (u, m) in dist.out_neighbors_owned(v) {
                f(u, m.index());
            }
        }
        Direction::None => {}
    }
}

/// Total simulated edge-work units in a report (gather + scatter visits).
fn edge_units(report: &SimReport) -> f64 {
    report.per_machine_work.iter().map(|w| w.edge_units).sum()
}

/// Benchmark one app: interleaved seed-vs-fast at one thread, then fast
/// rows at the extra thread counts (each asserted identical to 1-thread).
#[allow(clippy::too_many_arguments)]
fn bench_app<P>(
    name: &str,
    program: &P,
    cluster: &Cluster,
    dist: &DistributedGraph<'_>,
    reps: usize,
    extra_threads: &[usize],
    rows: &mut Vec<KernelRow>,
    seed: &mut Vec<SeedComparison>,
) where
    P: GasProgram,
    P::VertexData: PartialEq + std::fmt::Debug,
{
    let engine = SimEngine::new(cluster);
    let mut seed_wall_s = f64::INFINITY;
    let mut fast_wall_s = f64::INFINITY;
    let mut identical = true;
    let mut units = 0.0;
    for _ in 0..reps {
        // Interleave the two kernels so drift in machine state (frequency,
        // cache pressure) hits both columns equally.
        let t = Instant::now();
        let (seed_data, seed_report) = seed_kernel(cluster, dist, program);
        seed_wall_s = seed_wall_s.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let fast = engine.run_on_with_threads(dist, program, 1);
        fast_wall_s = fast_wall_s.min(t.elapsed().as_secs_f64());
        identical &= seed_report == fast.report && seed_data == fast.data;
        units = edge_units(&fast.report);
    }
    assert!(
        identical,
        "{name}: fast kernel diverged from the vendored seed kernel"
    );
    seed.push(SeedComparison {
        app: name.to_string(),
        reps,
        seed_wall_s,
        fast_wall_s,
        speedup: seed_wall_s / fast_wall_s,
        identical,
    });
    rows.push(KernelRow {
        app: name.to_string(),
        threads: 1,
        wall_s: fast_wall_s,
        edges_per_sec: units / fast_wall_s,
    });
    let reference = engine.run_on_with_threads(dist, program, 1);
    for &threads in extra_threads {
        let mut wall_s = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            let out = engine.run_on_with_threads(dist, program, threads);
            wall_s = wall_s.min(t.elapsed().as_secs_f64());
            assert_eq!(
                out.report, reference.report,
                "{name}: report changed at {threads} threads"
            );
            assert_eq!(
                out.data, reference.data,
                "{name}: vertex data changed at {threads} threads"
            );
        }
        rows.push(KernelRow {
            app: name.to_string(),
            threads,
            wall_s,
            edges_per_sec: units / wall_s,
        });
    }
}

/// Run the engine perf baseline, print its tables, and (with `--out`)
/// write `BENCH_engine.json`.
pub fn engine(ctx: &ExperimentContext) -> EngineBench {
    let t0 = Instant::now();
    let scale = ctx.scale;
    // Same fixture family and scale convention as the partition baseline;
    // at scale 1 this is the ~5M-edge headline graph.
    let n = (1_000_000 / scale).max(4_000);
    let reps = 3;

    println!("== engine perf baseline (scale {scale}) ==");
    let graph = PowerLawConfig::new(n, 2.1).generate(42);
    let edges = graph.num_edges();
    let cluster = Cluster::case2();
    let weights = MachineWeights::uniform(cluster.len());
    let assignment = RandomHash::new().partition(&graph, &weights);
    let dist = DistributedGraph::new_with_threads(&graph, &assignment, ctx.threads)
        .expect("assignment must cover the graph");
    println!("fixture: power-law n={n} alpha=2.1 seed=42 ({edges} edges), case2, random_hash");

    let mut rows = Vec::new();
    let mut seed = Vec::new();
    bench_app(
        "pagerank",
        &PageRank::new(5),
        &cluster,
        &dist,
        reps,
        &[2, 4],
        &mut rows,
        &mut seed,
    );
    bench_app(
        "pagerank_f32",
        &PageRank32::new(5),
        &cluster,
        &dist,
        reps,
        &[],
        &mut rows,
        &mut seed,
    );
    bench_app(
        "sssp",
        &Sssp::new(0),
        &cluster,
        &dist,
        reps,
        &[],
        &mut rows,
        &mut seed,
    );
    bench_app(
        "kcore",
        &KCore::new(3),
        &cluster,
        &dist,
        reps,
        &[],
        &mut rows,
        &mut seed,
    );

    let row_cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.threads.to_string(),
                output::f3(r.wall_s),
                format!("{:.0}", r.edges_per_sec),
            ]
        })
        .collect();
    output::print_table(&["app", "threads", "wall_s", "edge_units/sec"], &row_cells);
    println!();
    let seed_cells: Vec<Vec<String>> = seed
        .iter()
        .map(|s| {
            vec![
                s.app.clone(),
                output::f3(s.seed_wall_s),
                output::f3(s.fast_wall_s),
                format!("{:.2}x", s.speedup),
                s.identical.to_string(),
            ]
        })
        .collect();
    output::print_table(
        &["app", "seed_wall_s", "fast_wall_s", "speedup", "identical"],
        &seed_cells,
    );

    let bench = EngineBench {
        scale,
        vertices: n,
        edges,
        machines: cluster.len(),
        rows,
        seed,
        total_wall_s: t0.elapsed().as_secs_f64(),
    };
    output::write_json_with_manifest(
        ctx.out_dir.as_deref(),
        "BENCH_engine",
        &bench,
        &output::RunManifest::collect(42, ctx.threads, scale, bench.total_wall_s),
    );
    bench
}

/// Fraction of the baseline's normalized throughput a fresh run may lose
/// before the regression gate fails (same headroom as the partition
/// gate).
pub const CHECK_TOLERANCE: f64 = 0.75;

/// Re-run the engine baseline and compare it against the committed
/// `BENCH_engine.json` at `baseline_path`, failing on regressions.
///
/// Wall-clock is machine-dependent, so absolute rates are never compared
/// across runs. Each single-thread fast-kernel wall is normalized by the
/// *same run's* vendored-seed wall for the same app (the ratio cancels
/// host speed), and the gate fails when:
///
/// - a fresh seed-vs-fast rep was not bit-identical, or
/// - an app's normalized rate (= its speedup) drops below
///   [`CHECK_TOLERANCE`] of the baseline's.
///
/// Multi-thread rows are informational only: their scaling depends on
/// the runner's core count, which normalization cannot cancel. The fresh
/// run never writes output, regardless of `ctx.out_dir`.
pub fn check(ctx: &ExperimentContext, baseline_path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline = serde_json::from_str(&text)
        .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    let mut fresh_ctx = ctx.clone();
    fresh_ctx.out_dir = None;
    let fresh = engine(&fresh_ctx);
    println!("\n== engine bench check vs {} ==", baseline_path.display());
    let failures = check_against(&fresh, &baseline)?;
    if failures.is_empty() {
        println!(
            "engine bench check: OK ({} apps within {:.0}% of baseline speedups)",
            fresh.seed.len(),
            100.0 * (1.0 - CHECK_TOLERANCE),
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

/// The pure comparison core of [`check`]: fresh measurement vs parsed
/// baseline. `Err` means the baseline document is malformed; `Ok` carries
/// the (possibly empty) list of regression messages.
fn check_against(fresh: &EngineBench, baseline: &Value) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let base_speedups = baseline_speedups(baseline)?;
    for s in &fresh.seed {
        if !s.identical {
            failures.push(format!(
                "{}: fresh seed-vs-fast kernels were not bit-identical",
                s.app
            ));
        }
        let Some(base) = base_speedups.get(&s.app) else {
            failures.push(format!("baseline has no seed comparison for {}", s.app));
            continue;
        };
        if s.speedup < CHECK_TOLERANCE * base {
            failures.push(format!(
                "{}: kernel speedup {:.2}x is below {CHECK_TOLERANCE} x baseline {base:.2}x",
                s.app, s.speedup
            ));
        }
    }
    Ok(failures)
}

/// Extract `app -> speedup` from a parsed baseline document.
fn baseline_speedups(baseline: &Value) -> Result<BTreeMap<String, f64>, String> {
    let rows = baseline
        .get("seed")
        .and_then(Value::as_seq)
        .ok_or("baseline is missing the seed array")?;
    rows.iter()
        .map(|row| {
            let app = row
                .get("app")
                .and_then(Value::as_str)
                .ok_or("baseline seed row is missing app")?;
            let speedup = row
                .get("speedup")
                .and_then(Value::as_f64)
                .ok_or("baseline seed row is missing speedup")?;
            Ok((app.to_string(), speedup))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_kernel_matches_engine_for_every_registered_shape() {
        let g = PowerLawConfig::new(2_000, 2.1).generate(9);
        let cluster = Cluster::case2();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(2));
        let dist = DistributedGraph::new(&g, &a).expect("assignment must cover the graph");
        let engine = SimEngine::new(&cluster);
        let (sd, sr) = seed_kernel(&cluster, &dist, &PageRank::new(6));
        let fast = engine.run_on(&dist, &PageRank::new(6));
        assert_eq!(sr, fast.report);
        assert_eq!(sd, fast.data);
        let (sd, sr) = seed_kernel(&cluster, &dist, &Sssp::new(0));
        let fast = engine.run_on(&dist, &Sssp::new(0));
        assert_eq!(sr, fast.report);
        assert_eq!(sd, fast.data);
        let (sd, sr) = seed_kernel(&cluster, &dist, &KCore::new(3));
        let fast = engine.run_on(&dist, &KCore::new(3));
        assert_eq!(sr, fast.report);
        assert_eq!(sd, fast.data);
    }

    #[test]
    fn bench_covers_every_app_and_thread_count() {
        let ctx = ExperimentContext::at_scale(4_096);
        let bench = engine(&ctx);
        let keys: Vec<(&str, usize)> = bench
            .rows
            .iter()
            .map(|r| (r.app.as_str(), r.threads))
            .collect();
        assert_eq!(
            keys,
            [
                ("pagerank", 1),
                ("pagerank", 2),
                ("pagerank", 4),
                ("pagerank_f32", 1),
                ("sssp", 1),
                ("kcore", 1)
            ]
        );
        assert_eq!(bench.seed.len(), 4);
        assert!(bench.seed.iter().all(|s| s.identical));
        assert!(bench.rows.iter().all(|r| r.edges_per_sec > 0.0));
    }

    /// A fabricated measurement: every app at 2x over the seed kernel.
    fn fake_bench() -> EngineBench {
        let apps = ["pagerank", "pagerank_f32", "sssp", "kcore"];
        let rows = apps
            .iter()
            .map(|a| KernelRow {
                app: a.to_string(),
                threads: 1,
                wall_s: 0.5,
                edges_per_sec: 1.0e7,
            })
            .collect();
        let seed = apps
            .iter()
            .map(|a| SeedComparison {
                app: a.to_string(),
                reps: 3,
                seed_wall_s: 1.0,
                fast_wall_s: 0.5,
                speedup: 2.0,
                identical: true,
            })
            .collect();
        EngineBench {
            scale: 1,
            vertices: 1_000_000,
            edges: 5_000_000,
            machines: 2,
            rows,
            seed,
            total_wall_s: 10.0,
        }
    }

    fn to_baseline(bench: &EngineBench) -> Value {
        serde_json::from_str(&serde_json::to_string_pretty(bench).unwrap()).unwrap()
    }

    #[test]
    fn check_accepts_a_run_against_its_own_baseline() {
        let bench = fake_bench();
        let failures = check_against(&bench, &to_baseline(&bench)).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_normalization_cancels_host_speed() {
        // A uniformly 3x slower host: every wall scales equally, so the
        // speedups — the only gated quantity — are unchanged.
        let mut slow = fake_bench();
        for row in &mut slow.rows {
            row.wall_s *= 3.0;
            row.edges_per_sec /= 3.0;
        }
        for s in &mut slow.seed {
            s.seed_wall_s *= 3.0;
            s.fast_wall_s *= 3.0;
        }
        let failures = check_against(&slow, &to_baseline(&fake_bench())).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn check_flags_divergence_and_speedup_regressions() {
        let baseline = to_baseline(&fake_bench());
        let mut regressed = fake_bench();
        regressed.seed[0].speedup = 1.0; // pagerank lost its edge
        regressed.seed[2].identical = false; // sssp diverged
        let failures = check_against(&regressed, &baseline).unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("pagerank: kernel")));
        assert!(failures
            .iter()
            .any(|f| f.contains("sssp") && f.contains("identical")));
        // 25% noise within tolerance: not a failure.
        let mut noisy = fake_bench();
        for s in &mut noisy.seed {
            s.speedup = 1.6;
        }
        assert!(check_against(&noisy, &baseline).unwrap().is_empty());
    }

    #[test]
    fn check_rejects_malformed_baselines() {
        let bench = fake_bench();
        let err = check_against(&bench, &Value::Null).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }
}
