//! Criterion micro-benchmarks: compact-CSR decode throughput.
//!
//! Quantifies the cost of delta-varint decode-on-iterate against plain
//! `Csr` neighbor slices — the per-edge price the bounded-RSS pipeline
//! pays for its smaller cache footprint — plus how much degree-sorted
//! renumbering (which shrinks the gaps) buys back.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use hetgraph_core::transform::{degree_sort_permutation, relabel};
use hetgraph_core::{CompactCsr, Graph};
use hetgraph_gen::RmatConfig;

/// Sum every out-neighbor id once — the minimal gather-shaped traversal.
fn sum_plain(graph: &Graph) -> u64 {
    let csr = graph.out_csr();
    let mut acc = 0u64;
    for v in 0..graph.num_vertices() {
        for &u in csr.neighbors(v) {
            acc += u as u64;
        }
    }
    acc
}

fn sum_compact_fused(compact: &CompactCsr) -> u64 {
    let mut acc = 0u64;
    for v in 0..compact.num_vertices() {
        compact.for_each_neighbor(v, |u| acc += u as u64);
    }
    acc
}

fn sum_compact_cursor(compact: &CompactCsr) -> u64 {
    let mut acc = 0u64;
    for v in 0..compact.num_vertices() {
        for u in compact.neighbors(v) {
            acc += u as u64;
        }
    }
    acc
}

fn bench_csr_decode(c: &mut Criterion) {
    let graph = RmatConfig::natural(100_000, 800_000).generate(11);
    let renumbered = relabel(&graph, &degree_sort_permutation(&graph));
    let compact = CompactCsr::from_csr(graph.out_csr());
    let compact_renumbered = CompactCsr::from_csr(renumbered.out_csr());

    // The three traversals must visit the same multiset of edges; the
    // renumbered sum differs (ids are permuted) but the count does not.
    assert_eq!(sum_plain(&graph), sum_compact_fused(&compact));
    assert_eq!(sum_compact_fused(&compact), sum_compact_cursor(&compact));

    let mut group = c.benchmark_group("csr_decode");
    group.sample_size(20);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));

    group.bench_function("plain_slice", |b| {
        b.iter(|| black_box(sum_plain(&graph)));
    });
    group.bench_function("compact_fused", |b| {
        b.iter(|| black_box(sum_compact_fused(&compact)));
    });
    group.bench_function("compact_cursor", |b| {
        b.iter(|| black_box(sum_compact_cursor(&compact)));
    });
    group.bench_function("compact_fused_renumbered", |b| {
        b.iter(|| black_box(sum_compact_fused(&compact_renumbered)));
    });
    group.finish();
}

criterion_group!(benches, bench_csr_decode);
criterion_main!(benches);
