//! Criterion micro-benchmarks: synthetic graph generation throughput.
//!
//! The paper reports "generating three deployed proxies took 67 seconds in
//! total" for 3.2M-vertex graphs; this bench tracks our generator's
//! edges/second so that claim stays honest at any scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hetgraph_gen::{uniform, PowerLawConfig, RmatConfig};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);

    for &n in &[10_000u32, 50_000] {
        let cfg = PowerLawConfig::new(n, 2.1);
        group.throughput(Throughput::Elements(cfg.expected_edges() as u64));
        group.bench_with_input(BenchmarkId::new("powerlaw_a2.1", n), &cfg, |b, cfg| {
            b.iter(|| black_box(cfg.generate(1)));
        });
    }

    for &n in &[10_000u32, 50_000] {
        let edges = (n as usize) * 8;
        let cfg = RmatConfig::natural(n, edges);
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::new("rmat_natural", n), &cfg, |b, cfg| {
            b.iter(|| black_box(cfg.generate(1)));
        });
    }

    group.throughput(Throughput::Elements(80_000));
    group.bench_function("gnm_10k_80k", |b| {
        b.iter(|| black_box(uniform::gnm(10_000, 80_000, 3)));
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
