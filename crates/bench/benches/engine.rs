//! Criterion micro-benchmarks: GAS engine superstep throughput.
//!
//! Measures the real execution cost (host time, not simulated time) of the
//! engine, which bounds how large an experiment a given machine can drive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hetgraph_apps::{AnyApp, ConnectedComponents, PageRank, TriangleCount};
use hetgraph_cluster::Cluster;
use hetgraph_core::metrics::MetricsRegistry;
use hetgraph_core::obs::{TraceRecorder, NOOP};
use hetgraph_engine::{DistributedGraph, SimEngine};
use hetgraph_gen::{ProxySet, RmatConfig};
use hetgraph_partition::{Hybrid, MachineWeights, Partitioner};

fn bench_engine(c: &mut Criterion) {
    let graph = RmatConfig::natural(10_000, 80_000).generate(11);
    let cluster = Cluster::case2();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));

    group.bench_function("pagerank_5_iters", |b| {
        let engine = SimEngine::new(&cluster);
        b.iter(|| {
            black_box(
                engine
                    .run(&graph, &assignment, &PageRank::new(5))
                    .report
                    .makespan_s,
            )
        });
    });
    group.bench_function("connected_components", |b| {
        let engine = SimEngine::new(&cluster);
        b.iter(|| {
            black_box(
                engine
                    .run(&graph, &assignment, &ConnectedComponents::new())
                    .report
                    .supersteps,
            )
        });
    });
    group.bench_function("triangle_count", |b| {
        let engine = SimEngine::new(&cluster);
        let tc = TriangleCount::for_graph(&graph);
        b.iter(|| black_box(engine.run(&graph, &assignment, &tc).data[0]));
    });
    group.bench_function("registry_dispatch", |b| {
        let engine = SimEngine::new(&cluster);
        let coloring = AnyApp::coloring();
        b.iter(|| black_box(coloring.run(&engine, &graph, &assignment).makespan_s));
    });
    group.finish();
}

fn bench_engine_obs(c: &mut Criterion) {
    // The observability overhead gate. `pagerank_5_iters` above runs on
    // the default (noop) recorder and is the cross-PR criterion baseline:
    // its regression report against the committed PR-4 numbers IS the
    // "<2% when disabled" check. This group isolates the same workload
    // with (a) an explicit NoopRecorder — must be indistinguishable from
    // the default path — and (b) a live TraceRecorder, which is allowed
    // to cost more (it allocates one event vector per superstep batch).
    let graph = RmatConfig::natural(10_000, 80_000).generate(11);
    let cluster = Cluster::case2();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));
    let dist = DistributedGraph::new(&graph, &assignment).expect("assignment must cover the graph");

    let mut group = c.benchmark_group("engine_obs");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.bench_function("pagerank_noop_recorder", |b| {
        let engine = SimEngine::new(&cluster).with_recorder(&NOOP);
        let pagerank = AnyApp::pagerank();
        b.iter(|| black_box(pagerank.run_on_with_threads(&engine, &dist, 1).makespan_s));
    });
    group.bench_function("pagerank_trace_recorder", |b| {
        let pagerank = AnyApp::pagerank();
        b.iter(|| {
            let recorder = TraceRecorder::new();
            let engine = SimEngine::new(&cluster).with_recorder(&recorder);
            let makespan = pagerank.run_on_with_threads(&engine, &dist, 1).makespan_s;
            black_box((makespan, recorder.len()))
        });
    });
    group.finish();
}

fn bench_engine_metrics(c: &mut Criterion) {
    // The metrics overhead gate, mirroring `engine_obs`: the same
    // workload with (a) the noop registry — one branch per superstep,
    // must be indistinguishable from the default path — and (b) a live
    // registry, which is allowed to cost more (atomic counter and
    // histogram updates per superstep and per machine).
    let graph = RmatConfig::natural(10_000, 80_000).generate(11);
    let cluster = Cluster::case2();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));
    let dist = DistributedGraph::new(&graph, &assignment).expect("assignment must cover the graph");

    let mut group = c.benchmark_group("engine_metrics");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.bench_function("pagerank_noop_registry", |b| {
        let engine = SimEngine::new(&cluster).with_metrics(&hetgraph_core::metrics::NOOP);
        let pagerank = AnyApp::pagerank();
        b.iter(|| black_box(pagerank.run_on_with_threads(&engine, &dist, 1).makespan_s));
    });
    group.bench_function("pagerank_live_registry", |b| {
        let pagerank = AnyApp::pagerank();
        b.iter(|| {
            let metrics = MetricsRegistry::new();
            let engine = SimEngine::new(&cluster).with_metrics(&metrics);
            let makespan = pagerank.run_on_with_threads(&engine, &dist, 1).makespan_s;
            black_box((makespan, metrics.snapshot_sim().counters.len()))
        });
    });
    group.finish();
}

fn bench_engine_threads(c: &mut Criterion) {
    // Thread-scaling reference: PageRank on the largest standard proxy at
    // the default experiment scale (64), over a shared distributed view,
    // at increasing engine thread budgets. This is the host-parallelism
    // trajectory future scaling PRs regress against.
    let proxies = ProxySet::standard(64);
    let spec = &proxies.proxies()[0];
    let graph = spec.generate();
    let cluster = Cluster::case2();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));
    let dist = DistributedGraph::new(&graph, &assignment).expect("assignment must cover the graph");
    let engine = SimEngine::new(&cluster);

    let mut group = c.benchmark_group("engine_threads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("pagerank_scale64_proxy", threads),
            &threads,
            |b, &t| {
                let pagerank = AnyApp::pagerank();
                b.iter(|| black_box(pagerank.run_on_with_threads(&engine, &dist, t).makespan_s))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_engine_obs,
    bench_engine_metrics,
    bench_engine_threads
);
criterion_main!(benches);
