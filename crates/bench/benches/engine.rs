//! Criterion micro-benchmarks: GAS engine superstep throughput.
//!
//! Measures the real execution cost (host time, not simulated time) of the
//! engine, which bounds how large an experiment a given machine can drive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use hetgraph_apps::{ConnectedComponents, PageRank, StandardApp, TriangleCount};
use hetgraph_cluster::Cluster;
use hetgraph_engine::SimEngine;
use hetgraph_gen::RmatConfig;
use hetgraph_partition::{Hybrid, MachineWeights, Partitioner};

fn bench_engine(c: &mut Criterion) {
    let graph = RmatConfig::natural(10_000, 80_000).generate(11);
    let cluster = Cluster::case2();
    let assignment = Hybrid::new().partition(&graph, &MachineWeights::uniform(2));

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(graph.num_edges() as u64));

    group.bench_function("pagerank_5_iters", |b| {
        let engine = SimEngine::new(&cluster);
        b.iter(|| {
            black_box(
                engine
                    .run(&graph, &assignment, &PageRank::new(5))
                    .report
                    .makespan_s,
            )
        });
    });
    group.bench_function("connected_components", |b| {
        let engine = SimEngine::new(&cluster);
        b.iter(|| {
            black_box(
                engine
                    .run(&graph, &assignment, &ConnectedComponents::new())
                    .report
                    .supersteps,
            )
        });
    });
    group.bench_function("triangle_count", |b| {
        let engine = SimEngine::new(&cluster);
        let tc = TriangleCount::for_graph(&graph);
        b.iter(|| black_box(engine.run(&graph, &assignment, &tc).data[0]));
    });
    group.bench_function("standard_app_dispatch", |b| {
        let engine = SimEngine::new(&cluster);
        b.iter(|| {
            black_box(
                StandardApp::Coloring
                    .run(&engine, &graph, &assignment)
                    .makespan_s,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
