//! Criterion micro-benchmarks: streaming partitioner ingest throughput.
//!
//! Partitioning happens on the critical path of every job submission
//! (PowerGraph's "ingress" phase), so its throughput matters in practice
//! even though the paper focuses on post-ingress runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hetgraph_gen::{PowerLawConfig, RmatConfig};
use hetgraph_partition::{MachineWeights, PartitionerKind};

fn bench_partitioners(c: &mut Criterion) {
    let graph = RmatConfig::natural(20_000, 160_000).generate(7);
    let uniform = MachineWeights::uniform(4);
    let weighted = MachineWeights::from_ccr(&[1.0, 2.0, 3.0, 3.5]);

    let mut group = c.benchmark_group("partition_ingest");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.sample_size(10);
    for kind in PartitionerKind::ALL {
        let p = kind.build();
        group.bench_with_input(BenchmarkId::new("uniform", kind.name()), &graph, |b, g| {
            b.iter(|| black_box(p.partition(g, &uniform)));
        });
        group.bench_with_input(BenchmarkId::new("ccr", kind.name()), &graph, |b, g| {
            b.iter(|| black_box(p.partition(g, &weighted)));
        });
    }
    group.finish();
}

/// Machine-count sweep over the streaming fast path: P ∈ {4, 16, 48}
/// spans the u16/u16/u64 replica-mask monomorphizations, so regressions
/// in any width class show up separately.
fn bench_machine_counts(c: &mut Criterion) {
    let graph = PowerLawConfig::new(40_000, 2.1).generate(42);
    let mut group = c.benchmark_group("partition_machine_count");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.sample_size(10);
    for p in [4usize, 16, 48] {
        let weights = MachineWeights::uniform(p);
        for kind in [PartitionerKind::Oblivious, PartitionerKind::Ginger] {
            let partitioner = kind.build();
            group.bench_with_input(BenchmarkId::new(kind.name(), p), &graph, |b, g| {
                b.iter(|| black_box(partitioner.partition(g, &weights)));
            });
        }
    }
    group.finish();
}

/// Thread-count sweep: the deterministic chunked partitioners must not
/// regress at any thread budget (results are identical; only wall-clock
/// differs).
fn bench_partition_threads(c: &mut Criterion) {
    let graph = PowerLawConfig::new(40_000, 2.1).generate(42);
    let weights = MachineWeights::uniform(16);
    let mut group = c.benchmark_group("partition_threads");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        for kind in [PartitionerKind::RandomHash, PartitionerKind::Grid] {
            let partitioner = kind.build();
            group.bench_with_input(BenchmarkId::new(kind.name(), threads), &graph, |b, g| {
                b.iter(|| black_box(partitioner.partition_with_threads(g, &weights, threads)));
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioners,
    bench_machine_counts,
    bench_partition_threads
);
criterion_main!(benches);
