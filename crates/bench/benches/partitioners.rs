//! Criterion micro-benchmarks: streaming partitioner ingest throughput.
//!
//! Partitioning happens on the critical path of every job submission
//! (PowerGraph's "ingress" phase), so its throughput matters in practice
//! even though the paper focuses on post-ingress runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use hetgraph_gen::RmatConfig;
use hetgraph_partition::{MachineWeights, PartitionerKind};

fn bench_partitioners(c: &mut Criterion) {
    let graph = RmatConfig::natural(20_000, 160_000).generate(7);
    let uniform = MachineWeights::uniform(4);
    let weighted = MachineWeights::from_ccr(&[1.0, 2.0, 3.0, 3.5]);

    let mut group = c.benchmark_group("partition_ingest");
    group.throughput(Throughput::Elements(graph.num_edges() as u64));
    group.sample_size(10);
    for kind in PartitionerKind::ALL {
        let p = kind.build();
        group.bench_with_input(BenchmarkId::new("uniform", kind.name()), &graph, |b, g| {
            b.iter(|| black_box(p.partition(g, &uniform)));
        });
        group.bench_with_input(BenchmarkId::new("ccr", kind.name()), &graph, |b, g| {
            b.iter(|| black_box(p.partition(g, &weighted)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
