//! Criterion micro-benchmarks: the Eq. 7 Newton solver.
//!
//! The paper claims the α computation is "extremely quick (less than 1 ms)"
//! with "negligible" overhead; this bench regenerates that claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use hetgraph_gen::alpha::{fit_alpha, fit_alpha_with_support};

fn bench_alpha(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_solver");

    // The four Table II graphs (full-size counts).
    let graphs: [(&str, u64, u64); 4] = [
        ("amazon", 403_394, 3_387_388),
        ("citation", 3_774_768, 16_518_948),
        ("social", 4_847_571, 68_993_773),
        ("wiki", 2_394_385, 5_021_410),
    ];
    for (name, v, e) in graphs {
        group.bench_with_input(BenchmarkId::new("table2", name), &(v, e), |b, &(v, e)| {
            b.iter(|| black_box(fit_alpha(v, e).unwrap().alpha));
        });
    }

    // Support-size sweep: the solver is linear in the support cap.
    for support in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("support", support),
            &support,
            |b, &support| {
                b.iter(|| {
                    black_box(
                        fit_alpha_with_support(1_000_000, 8_000_000, support)
                            .unwrap()
                            .alpha,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
