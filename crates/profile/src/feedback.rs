//! Feedback-driven (dynamic) load balancing — the Mizan-style comparison
//! point the paper discusses in related work.
//!
//! Dynamic systems (Mizan, GPS) fix bad initial partitions by migrating
//! load between epochs based on *observed* runtime imbalance. This module
//! models that loop at epoch granularity: run the job, observe per-machine
//! busy times, multiplicatively reweight toward balance, re-ingest, and
//! repeat.
//!
//! The interesting question — and the reason the paper argues for good
//! *static* estimates — is how many expensive re-ingest epochs each
//! starting point needs. Starting from proxy-profiled CCR weights the loop
//! is essentially converged at epoch 0; starting from uniform or
//! thread-count weights it pays several epochs of migration to reach the
//! same balance (see `exp_ablation --study feedback`).

use hetgraph_apps::AnyApp;
use hetgraph_cluster::Cluster;
use hetgraph_core::Graph;
use hetgraph_engine::SimEngine;
use hetgraph_partition::{MachineWeights, Partitioner};

/// One epoch's observation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Epoch {
    /// Epoch index (0 = initial weights).
    pub epoch: usize,
    /// Weights used this epoch (normalized).
    pub weights: Vec<f64>,
    /// Simulated makespan.
    pub makespan_s: f64,
    /// Compute imbalance: slowest machine busy time / mean busy time.
    pub imbalance: f64,
}

/// Multiplicative-weights feedback balancer.
#[derive(Debug, Clone)]
pub struct FeedbackBalancer {
    /// Learning rate η ∈ (0, 1]: 1 jumps straight to the implied balance,
    /// smaller values damp oscillation (migration in real systems is
    /// rate-limited the same way).
    pub eta: f64,
    /// Epochs to run (including epoch 0 with the initial weights).
    pub epochs: usize,
}

impl Default for FeedbackBalancer {
    fn default() -> Self {
        FeedbackBalancer {
            eta: 0.7,
            epochs: 5,
        }
    }
}

impl FeedbackBalancer {
    /// Create a balancer.
    ///
    /// # Panics
    /// Panics on an out-of-range learning rate or zero epochs.
    pub fn new(eta: f64, epochs: usize) -> Self {
        assert!(eta > 0.0 && eta <= 1.0, "eta must be in (0, 1]");
        assert!(epochs >= 1, "need at least one epoch");
        FeedbackBalancer { eta, epochs }
    }

    /// Run the feedback loop: partition with the current weights, execute,
    /// observe per-machine busy time, reweight as
    /// `w_i ← w_i · (busy_i / mean_busy)^(-η)`, and repeat.
    ///
    /// A machine whose busy time exceeded the mean was overloaded relative
    /// to its real capability, so its weight shrinks and it receives less
    /// data next epoch; an early-finishing machine's weight grows.
    pub fn run(
        &self,
        cluster: &Cluster,
        graph: &Graph,
        app: &AnyApp,
        partitioner: &dyn Partitioner,
        initial: MachineWeights,
    ) -> Vec<Epoch> {
        let engine = SimEngine::new(cluster);
        let mut weights = initial;
        let mut history = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            let assignment = partitioner.partition(graph, &weights);
            let report = app.run(&engine, graph, &assignment);
            let busy = &report.per_machine_busy_s;
            let mean = busy.iter().sum::<f64>() / busy.len() as f64;
            history.push(Epoch {
                epoch,
                weights: weights.as_slice().to_vec(),
                makespan_s: report.makespan_s,
                imbalance: report.compute_imbalance(),
            });
            if epoch + 1 == self.epochs {
                break;
            }
            // Reweight toward balance. Guard against zero busy times
            // (machines that received no work this epoch keep their
            // weight scaled up by the maximum correction).
            let next: Vec<f64> = weights
                .as_slice()
                .iter()
                .zip(busy)
                .map(|(&w, &b)| {
                    let ratio = if mean > 0.0 && b > 0.0 { b / mean } else { 0.5 };
                    w * ratio.powf(-self.eta)
                })
                .collect();
            weights = MachineWeights::new(&next);
        }
        history
    }

    /// Epochs until the imbalance first drops below `threshold`
    /// (`None` if it never does within the budget).
    pub fn epochs_to_balance(history: &[Epoch], threshold: f64) -> Option<usize> {
        history
            .iter()
            .find(|e| e.imbalance <= threshold)
            .map(|e| e.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccr::CcrPool;
    use hetgraph_gen::{NaturalGraph, ProxySet};
    use hetgraph_partition::RandomHash;

    fn setup() -> (Cluster, Graph) {
        (Cluster::case2(), NaturalGraph::Citation.generate(1024))
    }

    #[test]
    fn feedback_reduces_imbalance_from_uniform() {
        let (cluster, graph) = setup();
        let balancer = FeedbackBalancer::default();
        let history = balancer.run(
            &cluster,
            &graph,
            &AnyApp::pagerank(),
            &RandomHash::new(),
            MachineWeights::uniform(2),
        );
        assert_eq!(history.len(), 5);
        let first = history.first().unwrap();
        let last = history.last().unwrap();
        assert!(
            last.imbalance < first.imbalance,
            "imbalance should fall: {} -> {}",
            first.imbalance,
            last.imbalance
        );
        assert!(last.makespan_s < first.makespan_s, "makespan should fall");
    }

    #[test]
    fn ccr_start_is_already_balanced() {
        // The paper's argument: a good static estimate makes dynamic
        // migration unnecessary.
        let (cluster, graph) = setup();
        let pool = CcrPool::profile(&cluster, &ProxySet::standard(3200), &[AnyApp::pagerank()]);
        let ccr_weights =
            MachineWeights::from_ccr(pool.ccr("pagerank").expect("profiled").ratios());
        let balancer = FeedbackBalancer::default();
        let from_ccr = balancer.run(
            &cluster,
            &graph,
            &AnyApp::pagerank(),
            &RandomHash::new(),
            ccr_weights,
        );
        let from_uniform = balancer.run(
            &cluster,
            &graph,
            &AnyApp::pagerank(),
            &RandomHash::new(),
            MachineWeights::uniform(2),
        );
        let thr = 1.25;
        let e_ccr = FeedbackBalancer::epochs_to_balance(&from_ccr, thr);
        let e_uni = FeedbackBalancer::epochs_to_balance(&from_uniform, thr);
        assert_eq!(e_ccr, Some(0), "CCR start should be balanced immediately");
        assert!(
            e_uni.is_none_or(|e| e > 0),
            "uniform start should need at least one migration epoch"
        );
    }

    #[test]
    fn weights_history_is_recorded_and_normalized() {
        let (cluster, graph) = setup();
        let history = FeedbackBalancer::new(1.0, 3).run(
            &cluster,
            &graph,
            &AnyApp::connected_components(),
            &RandomHash::new(),
            MachineWeights::uniform(2),
        );
        for e in &history {
            let sum: f64 = e.weights.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "epoch {}: weights not normalized",
                e.epoch
            );
        }
        // Weights must have moved toward the fast machine.
        assert!(history.last().unwrap().weights[1] > 0.6);
    }

    #[test]
    #[should_panic(expected = "eta must be in")]
    fn bad_eta_rejected() {
        FeedbackBalancer::new(1.5, 3);
    }
}
