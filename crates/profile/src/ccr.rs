//! The Computation Capability Ratio (Eq. 1) and the offline CCR pool.
//!
//! For application `i` and machine `j`,
//! `CCR(i, j) = max_j t(i, j) / t(i, j)`: the slowest machine gets 1.0 and
//! every other machine its speedup over it. The pool maps application name
//! → CCR set and is built once per cluster composition ("CCR profiling is
//! a one-time offline process"); it only needs refreshing when new machine
//! *types* join.

use std::collections::BTreeMap;

use hetgraph_apps::AnyApp;
use hetgraph_cluster::Cluster;
use hetgraph_core::Graph;
use hetgraph_gen::ProxySet;

use crate::runner::profiling_set_time;

/// A per-machine capability ratio vector for one application (slowest
/// machine = 1.0).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CcrSet {
    app: String,
    ratios: Vec<f64>,
}

impl CcrSet {
    /// Build from per-machine execution times (Eq. 1).
    ///
    /// # Panics
    /// Panics on empty or non-positive times.
    pub fn from_times(app: impl Into<String>, times: &[f64]) -> Self {
        assert!(!times.is_empty(), "CCR needs at least one machine");
        let max = times.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 0.0, "CCR requires positive execution times");
        let ratios = times
            .iter()
            .map(|&t| {
                assert!(t > 0.0, "CCR requires positive execution times, got {t}");
                max / t
            })
            .collect();
        CcrSet {
            app: app.into(),
            ratios,
        }
    }

    /// Build directly from capability ratios (used by estimators).
    ///
    /// # Panics
    /// Panics on empty or non-positive ratios.
    pub fn from_ratios(app: impl Into<String>, ratios: Vec<f64>) -> Self {
        assert!(!ratios.is_empty(), "CCR needs at least one machine");
        for &r in &ratios {
            assert!(r > 0.0, "ratios must be positive, got {r}");
        }
        CcrSet {
            app: app.into(),
            ratios,
        }
    }

    /// Application name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Per-machine ratios (same order as the cluster's machines).
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Number of machines covered.
    pub fn len(&self) -> usize {
        self.ratios.len()
    }

    /// Whether empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty()
    }

    /// Ratio of the fastest machine to the slowest — the "1 : x"
    /// heterogeneity the paper quotes (e.g. Case 2 ≈ 1 : 3.5).
    pub fn spread(&self) -> f64 {
        let max = self
            .ratios
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.ratios.iter().copied().fold(f64::INFINITY, f64::min);
        max / min
    }
}

/// The offline pool: application name → profiled CCR set.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CcrPool {
    sets: BTreeMap<String, CcrSet>,
}

impl CcrPool {
    /// An empty pool.
    pub fn new() -> Self {
        CcrPool::default()
    }

    /// Profile `cluster` with the proxy set for every listed application
    /// (Section III-B):
    ///
    /// 1. generate every proxy graph once;
    /// 2. group machines by type and profile one representative per group,
    ///    each application on each proxy, on the machine in isolation;
    /// 3. expand group times to all members and form CCRs (Eq. 1).
    pub fn profile(cluster: &Cluster, proxies: &ProxySet, apps: &[AnyApp]) -> Self {
        Self::profile_with_threads(cluster, proxies, apps, 1)
    }

    /// [`CcrPool::profile`] with a host thread budget: proxy graph
    /// generation and the (application × machine group) measurement cells
    /// fan out over [`hetgraph_core::par::scheduled`] workers. Every
    /// measurement is a pure function of its cell, and results are merged
    /// in deterministic cell order, so the pool is identical for any
    /// thread count.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn profile_with_threads(
        cluster: &Cluster,
        proxies: &ProxySet,
        apps: &[AnyApp],
        host_threads: usize,
    ) -> Self {
        Self::profile_recorded(
            cluster,
            proxies,
            apps,
            host_threads,
            &hetgraph_core::obs::NOOP,
        )
    }

    /// [`CcrPool::profile_with_threads`] with observability: wall-clock
    /// spans for proxy-graph generation and for every CCR estimation cell
    /// (application × machine group), recorded through per-worker
    /// [`hetgraph_core::obs::TraceBuffer`]s. Worker-side events are
    /// wall-domain only (their arrival order depends on scheduling); the
    /// returned pool is identical to the unrecorded one.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn profile_recorded(
        cluster: &Cluster,
        proxies: &ProxySet,
        apps: &[AnyApp],
        host_threads: usize,
        recorder: &dyn hetgraph_core::obs::Recorder,
    ) -> Self {
        Self::profile_instrumented(
            cluster,
            proxies,
            apps,
            host_threads,
            recorder,
            &hetgraph_core::metrics::NOOP,
        )
    }

    /// [`CcrPool::profile_recorded`] with aggregated metrics on top:
    /// deterministic cell/proxy counters in the sim domain (they depend
    /// only on the cluster composition and app list, so they belong in
    /// the byte-stable snapshot) plus wall-clock histograms for proxy
    /// generation and per measurement cell. Cell durations are staged in
    /// a per-cell [`hetgraph_core::metrics::HistogramShard`] and folded
    /// with one atomic pass — the metrics analogue of the per-worker
    /// `TraceBuffer` — so worker scheduling cannot interleave partial
    /// updates. The returned pool is identical with any sink
    /// combination.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn profile_instrumented(
        cluster: &Cluster,
        proxies: &ProxySet,
        apps: &[AnyApp],
        host_threads: usize,
        recorder: &dyn hetgraph_core::obs::Recorder,
        metrics: &hetgraph_core::metrics::MetricsRegistry,
    ) -> Self {
        use hetgraph_core::metrics::HistogramShard;
        use hetgraph_core::obs::{TimeDomain, TraceBuffer, TraceEvent};
        let specs = proxies.proxies();
        let t_gen0 = recorder.now_us();
        let wall_gen0 = metrics.enabled().then(std::time::Instant::now);
        let graphs: Vec<Graph> =
            hetgraph_core::par::scheduled(specs.len(), host_threads, |i| specs[i].generate());
        if recorder.enabled() {
            let t = recorder.now_us();
            recorder.record(TraceEvent::wall_span(
                "proxy_generation",
                "profile",
                0,
                t_gen0,
                t - t_gen0,
            ));
        }
        let groups = cluster.groups();
        let group_list: Vec<_> = groups.iter().collect();
        let n_groups = group_list.len();
        let cell_wall = metrics.histogram("profile/cell_wall_s", TimeDomain::Wall);
        if let Some(t0) = wall_gen0 {
            metrics
                .counter("profile/proxy_graphs_total", TimeDomain::Sim)
                .add(specs.len() as u64);
            metrics
                .counter("profile/measurement_cells_total", TimeDomain::Sim)
                .add((apps.len() * n_groups) as u64);
            metrics
                .histogram("profile/proxy_generation_wall_s", TimeDomain::Wall)
                .observe(t0.elapsed().as_secs_f64());
        }
        // One measurement cell per (application, machine group).
        let cell_times: Vec<f64> =
            hetgraph_core::par::scheduled(apps.len() * n_groups, host_threads, |k| {
                let (ai, gi) = (k / n_groups, k % n_groups);
                let rep = cluster.machine(group_list[gi].1[0]);
                if !recorder.enabled() && !cell_wall.is_live() {
                    return profiling_set_time(rep, &apps[ai], &graphs);
                }
                let wall_t0 = cell_wall.is_live().then(std::time::Instant::now);
                let time = if !recorder.enabled() {
                    profiling_set_time(rep, &apps[ai], &graphs)
                } else {
                    let mut buf = TraceBuffer::new(recorder);
                    let t0 = buf.now_us();
                    let time = profiling_set_time(rep, &apps[ai], &graphs);
                    let t1 = buf.now_us();
                    buf.push(TraceEvent::wall_span(
                        format!("ccr/{}/{}", apps[ai].name(), group_list[gi].0),
                        "profile",
                        gi as u32,
                        t0,
                        t1 - t0,
                    ));
                    buf.push(TraceEvent::wall_gauge(
                        format!("proxy_set_time_s/{}", apps[ai].name()),
                        gi as u32,
                        t1,
                        time,
                    ));
                    time
                };
                if let Some(t0) = wall_t0 {
                    let mut shard = HistogramShard::new();
                    shard.observe(t0.elapsed().as_secs_f64());
                    cell_wall.merge_shard(&shard);
                }
                time
            });
        let mut pool = CcrPool::new();
        for (ai, app) in apps.iter().enumerate() {
            let mut group_time: BTreeMap<&str, f64> = BTreeMap::new();
            for (gi, (name, _)) in group_list.iter().enumerate() {
                group_time.insert(name.as_str(), cell_times[ai * n_groups + gi]);
            }
            // Expand to the full machine list in cluster order.
            let times: Vec<f64> = cluster
                .machines()
                .iter()
                .map(|m| group_time[m.name.as_str()])
                .collect();
            pool.insert(CcrSet::from_times(app.name(), &times));
        }
        pool
    }

    /// Insert or replace a CCR set (keyed by its application name).
    pub fn insert(&mut self, set: CcrSet) {
        self.sets.insert(set.app.clone(), set);
    }

    /// Look up the CCR set for an application.
    pub fn ccr(&self, app: &str) -> Option<&CcrSet> {
        self.sets.get(app)
    }

    /// Number of applications covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterate over all sets.
    pub fn iter(&self) -> impl Iterator<Item = &CcrSet> {
        self.sets.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_apps::standard_apps;

    #[test]
    fn ccr_from_times_eq1() {
        // Machine times 10s, 5s, 2s -> CCR 1.0, 2.0, 5.0.
        let c = CcrSet::from_times("x", &[10.0, 5.0, 2.0]);
        assert_eq!(c.ratios(), &[1.0, 2.0, 5.0]);
        assert!((c.spread() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn slowest_machine_is_always_one() {
        let c = CcrSet::from_times("x", &[3.0, 7.0, 5.0]);
        let min = c.ratios().iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive execution times")]
    fn zero_time_rejected() {
        CcrSet::from_times("x", &[1.0, 0.0]);
    }

    #[test]
    fn pool_profile_covers_all_apps_and_machines() {
        let cluster = Cluster::case2();
        let pool = CcrPool::profile(&cluster, &ProxySet::standard(6400), &standard_apps());
        assert_eq!(pool.len(), 4);
        for app in standard_apps() {
            let set = pool.ccr(app.name()).expect("app profiled");
            assert_eq!(set.len(), 2);
            // Case 2: the Xeon L must be meaningfully faster.
            assert!(
                set.spread() > 1.5,
                "{}: spread {}",
                app.name(),
                set.spread()
            );
        }
    }

    #[test]
    fn group_members_share_ccr() {
        use hetgraph_cluster::catalog;
        let cluster = Cluster::new(vec![
            catalog::xeon_s(),
            catalog::xeon_l(),
            catalog::xeon_s(), // second member of the xeon_s group
        ]);
        let pool = CcrPool::profile(&cluster, &ProxySet::standard(6400), &[AnyApp::pagerank()]);
        let r = pool.ccr("pagerank").unwrap().ratios();
        assert_eq!(r[0], r[2], "same-type machines share the profiled CCR");
        assert!(r[1] > r[0]);
    }

    #[test]
    fn profile_with_threads_matches_serial_exactly() {
        let cluster = Cluster::case3();
        let proxies = ProxySet::standard(6400);
        let serial = CcrPool::profile(&cluster, &proxies, &standard_apps());
        for threads in [2, 4] {
            let par = CcrPool::profile_with_threads(&cluster, &proxies, &standard_apps(), threads);
            assert_eq!(par, serial, "{threads} threads");
        }
    }

    #[test]
    fn profile_recorded_matches_and_emits_cell_spans() {
        use hetgraph_core::obs::{TraceRecorder, NOOP};
        let cluster = Cluster::case2();
        let proxies = ProxySet::standard(6400);
        let apps = standard_apps();
        let plain = CcrPool::profile_with_threads(&cluster, &proxies, &apps, 2);
        let noop = CcrPool::profile_recorded(&cluster, &proxies, &apps, 2, &NOOP);
        assert_eq!(plain, noop);
        let rec = TraceRecorder::new();
        let traced = CcrPool::profile_recorded(&cluster, &proxies, &apps, 2, &rec);
        assert_eq!(plain, traced, "recording must not perturb the pool");
        let events = rec.take_events();
        assert!(events.iter().any(|e| e.name == "proxy_generation"));
        // One estimation span per (app × machine group); Case 2 has two
        // distinct machine types.
        let cells = events.iter().filter(|e| e.name.starts_with("ccr/")).count();
        assert_eq!(cells, apps.len() * 2);
        assert!(events
            .iter()
            .all(|e| e.domain == hetgraph_core::obs::TimeDomain::Wall));
    }

    #[test]
    fn profile_instrumented_matches_and_aggregates() {
        use hetgraph_core::metrics::MetricsRegistry;
        use hetgraph_core::obs::NOOP;
        let cluster = Cluster::case2();
        let proxies = ProxySet::standard(6400);
        let apps = standard_apps();
        let plain = CcrPool::profile_with_threads(&cluster, &proxies, &apps, 2);
        let m = MetricsRegistry::new();
        let inst = CcrPool::profile_instrumented(&cluster, &proxies, &apps, 2, &NOOP, &m);
        assert_eq!(plain, inst, "metrics must not perturb the pool");
        let snap = m.snapshot();
        // Case 2 has two machine groups -> apps × 2 measurement cells,
        // each observed once into the wall histogram.
        let cells = (apps.len() * 2) as u64;
        assert_eq!(
            snap.counter_value("profile/measurement_cells_total"),
            Some(cells)
        );
        assert_eq!(
            snap.counter_value("profile/proxy_graphs_total"),
            Some(proxies.proxies().len() as u64)
        );
        assert_eq!(
            snap.histogram("profile/cell_wall_s").unwrap().count(),
            cells
        );
        assert_eq!(
            snap.histogram("profile/proxy_generation_wall_s")
                .unwrap()
                .count(),
            1
        );
        // The deterministic counters are sim-domain; the timings are not.
        let sim = m.snapshot_sim();
        assert!(sim
            .counter_value("profile/measurement_cells_total")
            .is_some());
        assert!(sim.histograms.is_empty());
    }

    #[test]
    fn pool_lookup_misses_gracefully() {
        let pool = CcrPool::new();
        assert!(pool.ccr("nope").is_none());
        assert!(pool.is_empty());
    }

    #[test]
    fn insert_replaces_by_app_name() {
        let mut pool = CcrPool::new();
        pool.insert(CcrSet::from_ratios("a", vec![1.0, 2.0]));
        pool.insert(CcrSet::from_ratios("a", vec![1.0, 3.0]));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.ccr("a").unwrap().ratios(), &[1.0, 3.0]);
    }
}
