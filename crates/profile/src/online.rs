//! Online CCR maintenance.
//!
//! The paper: "The CCR pool needs to be updated whenever computing
//! resources in the heterogeneous cluster change. … Given its low
//! overhead, dynamic changes in resources can be captured by running the
//! profiler and updating the CCR pool online at regular intervals."
//!
//! This module implements that maintenance loop: re-profile, measure how
//! far each application's CCR moved, and replace the pool only when drift
//! exceeds a threshold (avoiding partition-cache invalidation for noise).

use hetgraph_apps::AnyApp;
use hetgraph_cluster::Cluster;
use hetgraph_core::stats;
use hetgraph_gen::ProxySet;

use crate::ccr::CcrPool;

/// Result of one maintenance pass.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RefreshOutcome {
    /// Per-application relative drift between the old and new CCR vectors
    /// (mean over machines).
    pub drift: Vec<(String, f64)>,
    /// Whether the pool was replaced.
    pub refreshed: bool,
}

/// Periodic CCR maintenance.
#[derive(Debug, Clone)]
pub struct CcrMaintainer {
    /// Replace the pool when any application's mean CCR drift exceeds
    /// this fraction.
    pub drift_threshold: f64,
}

impl Default for CcrMaintainer {
    fn default() -> Self {
        // 10%: below the paper's own estimation-error budget, so smaller
        // drifts are indistinguishable from profiling noise.
        CcrMaintainer {
            drift_threshold: 0.10,
        }
    }
}

impl CcrMaintainer {
    /// Create with an explicit threshold.
    ///
    /// # Panics
    /// Panics on a non-positive threshold.
    pub fn new(drift_threshold: f64) -> Self {
        assert!(drift_threshold > 0.0, "threshold must be positive");
        CcrMaintainer { drift_threshold }
    }

    /// Mean relative drift between two CCR vectors of equal length.
    fn vector_drift(old: &[f64], new: &[f64]) -> f64 {
        assert_eq!(
            old.len(),
            new.len(),
            "CCR vectors must cover the same machines"
        );
        let errs: Vec<f64> = old
            .iter()
            .zip(new)
            .map(|(&o, &n)| stats::relative_error(n, o))
            .collect();
        stats::mean(&errs)
    }

    /// Re-profile `cluster` and update `pool` in place if drift warrants.
    ///
    /// Applications present in the pool but not in `apps` are left
    /// untouched; new applications are always added.
    pub fn maintain(
        &self,
        pool: &mut CcrPool,
        cluster: &Cluster,
        proxies: &ProxySet,
        apps: &[AnyApp],
    ) -> RefreshOutcome {
        let fresh = CcrPool::profile(cluster, proxies, apps);
        let mut drift = Vec::new();
        let mut must_refresh = false;
        for set in fresh.iter() {
            match pool.ccr(set.app()) {
                Some(old) if old.len() == set.len() => {
                    let d = Self::vector_drift(old.ratios(), set.ratios());
                    if d > self.drift_threshold {
                        must_refresh = true;
                    }
                    drift.push((set.app().to_string(), d));
                }
                _ => {
                    // Unknown app or changed cluster size: always take the
                    // fresh measurement.
                    must_refresh = true;
                    drift.push((set.app().to_string(), f64::INFINITY));
                }
            }
        }
        if must_refresh {
            for set in fresh.iter() {
                pool.insert(set.clone());
            }
        }
        RefreshOutcome {
            drift,
            refreshed: must_refresh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_apps::standard_apps;
    use hetgraph_cluster::catalog;

    #[test]
    fn unchanged_cluster_does_not_refresh() {
        let cluster = Cluster::case2();
        let proxies = ProxySet::standard(6400);
        let mut pool = CcrPool::profile(&cluster, &proxies, &standard_apps());
        let before = pool.clone();
        let outcome =
            CcrMaintainer::default().maintain(&mut pool, &cluster, &proxies, &standard_apps());
        assert!(!outcome.refreshed, "identical re-profile must not refresh");
        assert_eq!(pool, before);
        for (_, d) in &outcome.drift {
            assert!(*d < 1e-12, "identical profiling must show zero drift");
        }
    }

    #[test]
    fn hardware_change_triggers_refresh() {
        // Profile on case 2, then the tiny ARM node replaces the Xeon S
        // (case 3): CCRs nearly double and the maintainer must notice.
        let proxies = ProxySet::standard(6400);
        let mut pool = CcrPool::profile(&Cluster::case2(), &proxies, &standard_apps());
        let old_spread = pool.ccr("pagerank").unwrap().spread();
        let outcome = CcrMaintainer::default().maintain(
            &mut pool,
            &Cluster::case3(),
            &proxies,
            &standard_apps(),
        );
        assert!(outcome.refreshed, "hardware swap must refresh the pool");
        let new_spread = pool.ccr("pagerank").unwrap().spread();
        assert!(new_spread > old_spread, "{new_spread} !> {old_spread}");
    }

    #[test]
    fn new_application_is_added() {
        let cluster = Cluster::case2();
        let proxies = ProxySet::standard(6400);
        let mut pool = CcrPool::profile(&cluster, &proxies, &[AnyApp::pagerank()]);
        assert!(pool.ccr("coloring").is_none());
        let outcome = CcrMaintainer::default().maintain(
            &mut pool,
            &cluster,
            &proxies,
            &[AnyApp::pagerank(), AnyApp::coloring()],
        );
        assert!(outcome.refreshed);
        assert!(pool.ccr("coloring").is_some());
    }

    #[test]
    fn cluster_resize_is_treated_as_drift() {
        let proxies = ProxySet::standard(6400);
        let mut pool = CcrPool::profile(&Cluster::case2(), &proxies, &[AnyApp::pagerank()]);
        let three = Cluster::new(vec![
            catalog::xeon_s(),
            catalog::xeon_l(),
            catalog::xeon_l(),
        ]);
        let outcome =
            CcrMaintainer::default().maintain(&mut pool, &three, &proxies, &[AnyApp::pagerank()]);
        assert!(outcome.refreshed);
        assert_eq!(pool.ccr("pagerank").unwrap().len(), 3);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_threshold_rejected() {
        CcrMaintainer::new(0.0);
    }
}
