//! Communication-free single-machine profiling runs.
//!
//! The paper measures each machine group's graph processing speed by
//! running the profiling set on one machine *in isolation*, so the
//! measurement captures pure computational capability. We reproduce that
//! by simulating on a one-machine cluster: every edge is local, there are
//! no mirrors, and the network contributes only the per-superstep barrier.

use hetgraph_apps::AnyApp;
use hetgraph_cluster::{Cluster, MachineSpec};
use hetgraph_core::Graph;
use hetgraph_engine::SimEngine;
use hetgraph_partition::{MachineWeights, Partitioner, RandomHash};

/// Simulated wall-clock seconds for `app` on `graph` executed entirely on
/// `machine` (the paper's per-machine profiling run).
pub fn single_machine_time(machine: &MachineSpec, app: &AnyApp, graph: &Graph) -> f64 {
    let cluster = Cluster::new(vec![machine.clone()]);
    let assignment = RandomHash::new().partition(graph, &MachineWeights::uniform(1));
    let engine = SimEngine::new(&cluster);
    app.run(&engine, graph, &assignment).makespan_s
}

/// Profiling-set time: the sum over several graphs (the paper combines
/// each application with every synthetic graph into one profiling set).
pub fn profiling_set_time(machine: &MachineSpec, app: &AnyApp, graphs: &[Graph]) -> f64 {
    graphs
        .iter()
        .map(|g| single_machine_time(machine, app, g))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::catalog;
    use hetgraph_gen::PowerLawConfig;

    fn graph() -> Graph {
        PowerLawConfig::new(1_500, 2.1).generate(11)
    }

    #[test]
    fn faster_machine_finishes_sooner() {
        let g = graph();
        for app in hetgraph_apps::full_apps() {
            let slow = single_machine_time(&catalog::xeon_s(), &app, &g);
            let fast = single_machine_time(&catalog::xeon_l(), &app, &g);
            assert!(fast < slow, "{app}: fast {fast} !< slow {slow}");
        }
    }

    #[test]
    fn times_are_deterministic() {
        let g = graph();
        let a = single_machine_time(&catalog::c4_xlarge(), &AnyApp::pagerank(), &g);
        let b = single_machine_time(&catalog::c4_xlarge(), &AnyApp::pagerank(), &g);
        assert_eq!(a, b);
    }

    #[test]
    fn profiling_set_sums_graphs() {
        let g1 = PowerLawConfig::new(800, 2.0).generate(1);
        let g2 = PowerLawConfig::new(800, 2.3).generate(2);
        let m = catalog::xeon_s();
        let cc = AnyApp::connected_components();
        let set = profiling_set_time(&m, &cc, &[g1.clone(), g2.clone()]);
        let separate = single_machine_time(&m, &cc, &g1) + single_machine_time(&m, &cc, &g2);
        assert!((set - separate).abs() < 1e-12);
    }

    #[test]
    fn pagerank_saturates_on_big_machines() {
        // The Fig 2 phenomenon, measured through the profiling interface:
        // PageRank's gain from 4xlarge to 8xlarge is much smaller than
        // TriangleCount's.
        let g = graph();
        let gain = |app: &AnyApp| {
            single_machine_time(&catalog::c4_4xlarge(), app, &g)
                / single_machine_time(&catalog::c4_8xlarge(), app, &g)
        };
        let pr = gain(&AnyApp::pagerank());
        let tc = gain(&AnyApp::triangle_count());
        assert!(tc > pr, "tc gain {tc} should exceed pagerank gain {pr}");
        assert!(pr < 1.35, "pagerank should saturate, got gain {pr}");
    }
}
