//! # hetgraph-profile
//!
//! The paper's core contribution: proxy-graph profiling of heterogeneous
//! clusters (Section III-B).
//!
//! - [`runner`] — communication-free single-machine profiling runs (the
//!   paper profiles "machines individually … without communication
//!   interference").
//! - [`ccr`] — the Computation Capability Ratio (Eq. 1), per-application
//!   CCR sets and the offline [`CcrPool`].
//! - [`prior`] — the prior-work baseline estimator (LeBeane et al.):
//!   capability = computing-thread count.
//! - [`accuracy`] — Fig 8: per-machine speedups estimated from proxies vs
//!   measured on real graphs vs predicted by thread counts, with the
//!   paper's accuracy metric.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

//!
//! Beyond the paper's figures, two maintenance/comparison extensions:
//!
//! - [`feedback`] — a Mizan-style dynamic rebalancer that migrates load
//!   between epochs from observed imbalance, used to quantify how many
//!   migration epochs each static starting point needs.
//! - [`online`] — periodic CCR pool maintenance with drift detection
//!   (the paper's "updating the CCR pool online at regular intervals").

pub mod accuracy;
pub mod ccr;
pub mod feedback;
pub mod online;
pub mod prior;
pub mod runner;

pub use accuracy::{AccuracyReport, AccuracyRow};
pub use ccr::{CcrPool, CcrSet};
pub use feedback::{Epoch, FeedbackBalancer};
pub use online::{CcrMaintainer, RefreshOutcome};
pub use prior::PriorWorkEstimator;
pub use runner::single_machine_time;
