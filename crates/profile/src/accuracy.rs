//! CCR estimation accuracy (Fig 8).
//!
//! For a set of machines, a set of real(-stand-in) graphs, and the proxy
//! set, this module computes — per application and machine — three
//! speedup numbers over the baseline machine:
//!
//! * **real** — profiled per real graph (ground truth; summarized as the
//!   geometric mean over the graphs);
//! * **proxy** — profiled on the synthetic proxy set (the paper's method:
//!   one estimate serves every future workload);
//! * **prior** — predicted from computing-thread counts (prior work).
//!
//! The error metric is per-workload, as a user would experience it: the
//! proxy estimate is compared against each real graph's own speedup and
//! the relative errors are averaged. The paper reports this as "accuracy"
//! (= 100 % − error): ~92 % within an EC2 category, ~96 % across
//! categories, versus ~108 % *error* for thread counts.

use hetgraph_apps::AnyApp;
use hetgraph_cluster::MachineSpec;
use hetgraph_core::stats;
use hetgraph_core::Graph;
use hetgraph_gen::ProxySet;

use crate::runner::{profiling_set_time, single_machine_time};

/// One (application, machine) accuracy sample.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AccuracyRow {
    /// Application name.
    pub app: String,
    /// Machine name.
    pub machine: String,
    /// Geometric-mean speedup over the baseline machine across the real
    /// graphs.
    pub real_speedup: f64,
    /// Per-real-graph speedups (same order as the input graph list).
    pub real_speedups_per_graph: Vec<f64>,
    /// Speedup estimated from the synthetic proxy set.
    pub proxy_speedup: f64,
    /// Speedup predicted by the thread-count baseline.
    pub prior_speedup: f64,
}

impl AccuracyRow {
    /// Mean relative error of the proxy estimate against each real graph's
    /// own speedup (the per-workload experience).
    pub fn proxy_error(&self) -> f64 {
        stats::mean(
            &self
                .real_speedups_per_graph
                .iter()
                .map(|&r| stats::relative_error(self.proxy_speedup, r))
                .collect::<Vec<_>>(),
        )
    }

    /// Mean relative error of the prior-work estimate, per real graph.
    pub fn prior_error(&self) -> f64 {
        stats::mean(
            &self
                .real_speedups_per_graph
                .iter()
                .map(|&r| stats::relative_error(self.prior_speedup, r))
                .collect::<Vec<_>>(),
        )
    }
}

/// The full Fig 8 evaluation result.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AccuracyReport {
    /// Every (app, machine) sample; the baseline machine is omitted (its
    /// speedups are 1.0 by definition).
    pub rows: Vec<AccuracyRow>,
}

impl AccuracyReport {
    /// Evaluate machines against `baseline` (the paper's Fig 8a uses
    /// c4.xlarge; Fig 8b uses m4.2xlarge).
    ///
    /// # Panics
    /// Panics if `machines` or `apps` or `real_graphs` is empty.
    pub fn evaluate(
        baseline: &MachineSpec,
        machines: &[MachineSpec],
        apps: &[AnyApp],
        proxies: &ProxySet,
        real_graphs: &[Graph],
    ) -> Self {
        assert!(!machines.is_empty(), "need at least one machine to compare");
        assert!(!apps.is_empty(), "need at least one application");
        assert!(!real_graphs.is_empty(), "need at least one real graph");
        let proxy_graphs: Vec<Graph> = proxies.proxies().iter().map(|p| p.generate()).collect();

        let mut rows = Vec::new();
        for app in apps {
            let base_real: Vec<f64> = real_graphs
                .iter()
                .map(|g| single_machine_time(baseline, app, g))
                .collect();
            let base_proxy = profiling_set_time(baseline, app, &proxy_graphs);
            let base_threads = baseline.computing_threads() as f64;
            for m in machines {
                if m.name == baseline.name {
                    continue;
                }
                let per_graph: Vec<f64> = real_graphs
                    .iter()
                    .zip(&base_real)
                    .map(|(g, &b)| b / single_machine_time(m, app, g))
                    .collect();
                rows.push(AccuracyRow {
                    app: app.name().to_string(),
                    machine: m.name.clone(),
                    real_speedup: stats::geomean(&per_graph),
                    real_speedups_per_graph: per_graph,
                    proxy_speedup: base_proxy / profiling_set_time(m, app, &proxy_graphs),
                    prior_speedup: m.computing_threads() as f64 / base_threads,
                });
            }
        }
        AccuracyReport { rows }
    }

    /// Mean proxy relative error in percent (paper: ~8 % within category).
    pub fn proxy_error_pct(&self) -> f64 {
        100.0
            * stats::mean(
                &self
                    .rows
                    .iter()
                    .map(|r| r.proxy_error())
                    .collect::<Vec<_>>(),
            )
    }

    /// Mean prior-work relative error in percent (paper: ~108 %).
    pub fn prior_error_pct(&self) -> f64 {
        100.0
            * stats::mean(
                &self
                    .rows
                    .iter()
                    .map(|r| r.prior_error())
                    .collect::<Vec<_>>(),
            )
    }

    /// The paper's headline "accuracy" = 100 % − proxy error.
    pub fn proxy_accuracy_pct(&self) -> f64 {
        100.0 - self.proxy_error_pct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_apps::standard_apps;
    use hetgraph_cluster::catalog;
    use hetgraph_gen::NaturalGraph;

    fn small_report() -> AccuracyReport {
        // Scaled-down graphs keep this test fast while preserving shapes.
        let real: Vec<Graph> = [NaturalGraph::Amazon, NaturalGraph::Wiki]
            .iter()
            .map(|g| g.generate(256))
            .collect();
        AccuracyReport::evaluate(
            &catalog::c4_xlarge(),
            &[
                catalog::c4_2xlarge(),
                catalog::c4_4xlarge(),
                catalog::c4_8xlarge(),
            ],
            &standard_apps(),
            &ProxySet::standard(3200),
            &real,
        )
    }

    #[test]
    fn proxies_beat_thread_counts() {
        let report = small_report();
        assert!(
            report.proxy_error_pct() < report.prior_error_pct(),
            "proxy {}% !< prior {}%",
            report.proxy_error_pct(),
            report.prior_error_pct()
        );
    }

    #[test]
    fn proxy_error_in_papers_ballpark() {
        let report = small_report();
        // Paper: 8% error within a category; the error must be small but
        // must also EXIST — proxies are not clairvoyant.
        assert!(
            report.proxy_error_pct() < 30.0,
            "proxy error {}%",
            report.proxy_error_pct()
        );
        assert!(
            report.proxy_error_pct() > 0.1,
            "suspiciously perfect proxy estimate: {}%",
            report.proxy_error_pct()
        );
    }

    #[test]
    fn prior_overestimates_massively_for_saturating_apps() {
        let report = small_report();
        let pr_8x = report
            .rows
            .iter()
            .find(|r| r.app == "pagerank" && r.machine == "c4.8xlarge")
            .expect("row exists");
        // Thread counts predict 17x; PageRank saturates far below that.
        assert!(pr_8x.prior_speedup > 2.0 * pr_8x.real_speedup);
    }

    #[test]
    fn speedups_exceed_one_for_bigger_machines() {
        let report = small_report();
        for r in &report.rows {
            assert!(
                r.real_speedup > 1.0,
                "{}/{}: {}",
                r.app,
                r.machine,
                r.real_speedup
            );
            assert_eq!(r.real_speedups_per_graph.len(), 2);
        }
    }

    #[test]
    fn rows_skip_baseline_machine() {
        let report = small_report();
        assert!(report.rows.iter().all(|r| r.machine != "c4.xlarge"));
        assert_eq!(report.rows.len(), 4 * 3);
    }
}
