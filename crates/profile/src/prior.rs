//! The prior-work capability estimator (LeBeane et al., SC'15 — ref. 5 in
//! the paper).
//!
//! Prior work "simply reads a machine's hardware configuration (number of
//! virtual cores)" and reserves two threads for communication: the
//! capability estimate of a machine with `h` hardware threads is `h − 2`.
//! The paper's worked example: machines with 4 and 8 hardware threads get
//! CCR 1 : 3 = (4−2) : (8−2).
//!
//! This estimator is application-blind — the source of its ~108 % error on
//! applications whose scaling saturates (Fig 2).

use hetgraph_cluster::Cluster;

use crate::ccr::CcrSet;

/// Thread-count-based capability estimator.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorWorkEstimator {}

impl PriorWorkEstimator {
    /// Default construction.
    pub fn new() -> Self {
        PriorWorkEstimator {}
    }

    /// The estimated CCR-like ratio vector for a cluster: computing
    /// threads per machine, normalized so the weakest machine is 1.0.
    /// The same estimate is used for every application (that is the
    /// point of the baseline — it cannot distinguish them).
    pub fn estimate(&self, cluster: &Cluster) -> CcrSet {
        let threads = cluster.thread_count_weights();
        let min = threads.iter().copied().fold(f64::INFINITY, f64::min);
        let ratios = threads.iter().map(|&t| t / min).collect();
        CcrSet::from_ratios("prior_work_thread_count", ratios)
    }

    /// Whether prior work would consider this cluster homogeneous (equal
    /// computing-thread counts) and therefore fall back to uniform
    /// partitioning. This is exactly the paper's Case 1 setting, where
    /// "prior work cannot achieve any benefits".
    pub fn sees_homogeneous(&self, cluster: &Cluster) -> bool {
        let t = cluster.thread_count_weights();
        t.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_cluster::catalog;

    #[test]
    fn papers_worked_example() {
        // 4 and 8 hardware threads -> (4-2):(8-2) = 1:3.
        let cluster = Cluster::new(vec![catalog::xeon_s(), catalog::c4_2xlarge()]);
        let est = PriorWorkEstimator::new().estimate(&cluster);
        assert_eq!(est.ratios(), &[1.0, 3.0]);
    }

    #[test]
    fn case2_estimate_is_one_to_five() {
        // Xeon S (4 HW) vs Xeon L (12 HW): (4-2):(12-2) = 1:5 — the
        // overestimate that overloads the fast machine in the paper.
        let est = PriorWorkEstimator::new().estimate(&Cluster::case2());
        assert_eq!(est.ratios(), &[1.0, 5.0]);
    }

    #[test]
    fn case1_looks_homogeneous_to_prior_work() {
        let prior = PriorWorkEstimator::new();
        assert!(prior.sees_homogeneous(&Cluster::case1()));
        assert!(!prior.sees_homogeneous(&Cluster::case2()));
        let est = prior.estimate(&Cluster::case1());
        assert_eq!(est.ratios(), &[1.0, 1.0]);
    }

    #[test]
    fn case3_estimate_ignores_frequency() {
        // The tiny 1.8 GHz node has the same thread count as the Xeon S;
        // prior work cannot tell them apart.
        let est3 = PriorWorkEstimator::new().estimate(&Cluster::case3());
        let est2 = PriorWorkEstimator::new().estimate(&Cluster::case2());
        assert_eq!(est3.ratios(), est2.ratios());
    }
}
