//! Grid (constrained) partitioning (Section II-B-3).
//!
//! Machines are arranged in a (near-)square matrix; a *shard* is a row or
//! column. Each vertex is hashed — weighted by CCR in the
//! heterogeneity-aware variant — to a home machine, and its *constraint
//! set* is that machine's row ∪ column. An edge may only be placed in the
//! intersection of its endpoints' constraint sets, which caps the number of
//! machines any vertex can be replicated on at one row + one column and so
//! bounds communication. Within the intersection, the machine with the
//! least normalized load (`load / weight`) wins — the paper's "score"
//! combining current edge distribution with CCR-suggested placement.
//!
//! The paper notes the machine count "has to be a square number"; like
//! PowerGraph's implementation we relax this to an `r × c` near-square
//! arrangement so the 2-machine clusters of the evaluation can run all five
//! partitioners.

use hetgraph_core::rng::{hash64, hash_combine};
use hetgraph_core::{Edge, Graph, MachineId};

use crate::assignment::PartitionAssignment;
use crate::chunk::chunked_map;
use crate::traits::{Partitioner, StreamPartitioner};
use crate::weights::{assert_bitmask_capacity, MachineWeights};

/// Constrained grid partitioner.
#[derive(Debug, Clone, Default)]
pub struct Grid {}

impl Grid {
    /// Default construction.
    pub fn new() -> Self {
        Grid {}
    }
}

/// Near-square grid dimensions for `p` machines: `r = floor(sqrt(p))`,
/// `c = ceil(p / r)`. Machine `i` sits at `(i / c, i % c)`; the last row
/// may be partial.
fn grid_dims(p: usize) -> (usize, usize) {
    let r = (p as f64).sqrt().floor() as usize;
    let r = r.max(1);
    let c = p.div_ceil(r);
    (r, c)
}

/// The constraint set (row ∪ column) of machine `m` in an `r × c` grid
/// over `p` machines.
fn constraint_set(m: usize, p: usize, r: usize, c: usize) -> u64 {
    let (row, col) = (m / c, m % c);
    let mut mask = 0u64;
    for j in 0..c {
        let cell = row * c + j;
        if cell < p {
            mask |= 1u64 << cell;
        }
    }
    for i in 0..r {
        let cell = i * c + col;
        if cell < p {
            mask |= 1u64 << cell;
        }
    }
    mask
}

fn mask_machines(mask: u64) -> impl Iterator<Item = MachineId> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let i = m.trailing_zeros();
            m &= m - 1;
            Some(MachineId(i as u16))
        }
    })
}

impl Partitioner for Grid {
    fn name(&self) -> &'static str {
        "grid"
    }

    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
        self.partition_with_threads(graph, weights, 1)
    }

    fn partition_with_threads(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> PartitionAssignment {
        assert!(host_threads > 0, "need at least one host thread");
        let p = weights.len();
        assert_bitmask_capacity(p);
        let ws = weights.as_slice();
        let (r, c) = grid_dims(p);

        // Precompute every machine's constraint set.
        let constraints: Vec<u64> = (0..p).map(|m| constraint_set(m, p, r, c)).collect();

        // Per-vertex constraint masks via the weighted home hash (the
        // heterogeneity-aware "each shard has its weight" step), hashed
        // once per vertex instead of once per edge endpoint. Pure per
        // vertex, so the chunked fan-out keeps the table byte-identical
        // at any thread count.
        let n = graph.num_vertices() as usize;
        let vertex_mask: Vec<u64> = chunked_map(n, host_threads, |v| {
            constraints[weights
                .pick(hash64(hash_combine(v as u64, 0x6772_6964)))
                .index()]
        });

        let (assignment, replica_mask, edges_per_machine) = place(
            ws,
            &vertex_mask,
            graph.edges().iter().copied(),
            graph.num_edges(),
        );
        PartitionAssignment::from_parts(
            p,
            assignment,
            replica_mask,
            edges_per_machine,
            host_threads,
        )
    }
}

impl StreamPartitioner for Grid {
    fn partition_stream(
        &self,
        num_vertices: u32,
        weights: &MachineWeights,
        edges: &mut dyn Iterator<Item = Edge>,
    ) -> PartitionAssignment {
        let p = weights.len();
        assert_bitmask_capacity(p);
        let (r, c) = grid_dims(p);
        let constraints: Vec<u64> = (0..p).map(|m| constraint_set(m, p, r, c)).collect();
        // The home hash is per *vertex*, so the O(V) constraint table is
        // computable before the first edge arrives — the stream needs no
        // second pass.
        let n = num_vertices as usize;
        let vertex_mask: Vec<u64> = (0..n)
            .map(|v| {
                constraints[weights
                    .pick(hash64(hash_combine(v as u64, 0x6772_6964)))
                    .index()]
            })
            .collect();
        let (assignment, replica_mask, edges_per_machine) =
            place(weights.as_slice(), &vertex_mask, edges, 0);
        PartitionAssignment::from_parts(p, assignment, replica_mask, edges_per_machine, 1)
    }
}

/// The serial placement loop both entry points share — each choice depends
/// on the loads left by every previous edge. The normalized loads are
/// cached and recomputed (same division expression as
/// `MachineWeights::normalized_load`) only for the chosen machine, and the
/// candidate scan mirrors `MachineWeights::least_loaded` bit-for-bit:
/// ascending machine id, `<` with low-id tie-break. Replica masks and
/// per-machine counts are accumulated inline so the caller can hand them
/// straight to `PartitionAssignment::from_parts` without an O(E) replay.
fn place(
    ws: &[f64],
    vertex_mask: &[u64],
    edges: impl Iterator<Item = Edge>,
    capacity: usize,
) -> (Vec<u16>, Vec<u64>, Vec<usize>) {
    let p = ws.len();
    let mut loads = vec![0f64; p];
    let mut nl: Vec<f64> = (0..p).map(|i| loads[i] / ws[i]).collect();
    let mut assignment = Vec::with_capacity(capacity);
    let mut replica_mask = vec![0u64; vertex_mask.len()];
    let mut edges_per_machine = vec![0usize; p];
    for e in edges {
        let su = vertex_mask[e.src as usize];
        let sv = vertex_mask[e.dst as usize];
        let inter = su & sv;
        // A full grid always intersects (the corner cells); a partial
        // last row can make the intersection empty — fall back to the
        // union, then to everything.
        let candidates = if inter != 0 {
            inter
        } else if su | sv != 0 {
            su | sv
        } else {
            (1u64 << p) - 1
        };
        let mut chosen = usize::MAX;
        let mut best = f64::INFINITY;
        for m in mask_machines(candidates) {
            // Finite normalized loads, ascending ids: strict `<` keeps
            // the lowest id on ties, exactly like `least_loaded`.
            let v = nl[m.index()];
            if v < best {
                best = v;
                chosen = m.index();
            }
        }
        debug_assert!(chosen != usize::MAX, "candidate mask was empty");
        loads[chosen] += 1.0;
        nl[chosen] = loads[chosen] / ws[chosen];
        replica_mask[e.src as usize] |= 1u64 << chosen;
        replica_mask[e.dst as usize] |= 1u64 << chosen;
        edges_per_machine[chosen] += 1;
        assignment.push(chosen as u16);
    }
    (assignment, replica_mask, edges_per_machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_hash::RandomHash;
    use hetgraph_core::{Edge, EdgeList};

    fn skewed_graph() -> Graph {
        let n = 3_000u32;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(Edge::new(0, v));
            edges.push(Edge::new(v, (v * 13 + 7) % n));
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn dims_cover_machines() {
        for p in 1..=20usize {
            let (r, c) = grid_dims(p);
            assert!(r * c >= p, "p={p}: {r}x{c}");
            assert!(r * c < p + c, "p={p}: grid too large");
        }
        assert_eq!(grid_dims(9), (3, 3));
        assert_eq!(grid_dims(2), (1, 2));
    }

    #[test]
    fn constraint_sets_intersect_on_full_grid() {
        let p = 9;
        let (r, c) = grid_dims(p);
        for a in 0..p {
            for b in 0..p {
                let inter = constraint_set(a, p, r, c) & constraint_set(b, p, r, c);
                assert!(inter != 0, "constraint sets of {a} and {b} must intersect");
            }
        }
    }

    #[test]
    fn replication_bounded_by_row_plus_column() {
        let g = skewed_graph();
        let a = Grid::new().partition(&g, &MachineWeights::uniform(9));
        // In a 3x3 grid a vertex can replicate on at most row+col = 5 machines.
        for v in g.vertices() {
            assert!(
                a.replica_count(v) <= 5,
                "vertex {v}: {}",
                a.replica_count(v)
            );
        }
    }

    #[test]
    fn lower_replication_than_random_on_many_machines() {
        let g = skewed_graph();
        let w = MachineWeights::uniform(16);
        let grid = Grid::new().partition(&g, &w);
        let random = RandomHash::new().partition(&g, &w);
        assert!(
            grid.replication_factor() < random.replication_factor(),
            "grid {} !< random {}",
            grid.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn weighted_loads_track_ccr_approximately() {
        let g = skewed_graph();
        let w = MachineWeights::from_ccr(&[1.0, 3.0]);
        let a = Grid::new().partition(&g, &w);
        let shares = a.edge_shares();
        assert!(
            shares[1] > 0.6,
            "fast machine share {} should dominate",
            shares[1]
        );
    }

    #[test]
    fn uniform_balances() {
        let g = skewed_graph();
        let a = Grid::new().partition(&g, &MachineWeights::uniform(4));
        for &s in &a.edge_shares() {
            assert!((s - 0.25).abs() < 0.06, "share {s}");
        }
    }

    #[test]
    fn deterministic() {
        let g = skewed_graph();
        let w = MachineWeights::uniform(9);
        assert_eq!(Grid::new().partition(&g, &w), Grid::new().partition(&g, &w));
    }

    #[test]
    fn stream_equals_graph_partition() {
        let g = skewed_graph();
        for weights in [
            MachineWeights::uniform(2),
            MachineWeights::uniform(9),
            MachineWeights::from_ccr(&[1.0, 3.0]),
        ] {
            let from_graph = Grid::new().partition(&g, &weights);
            let from_stream = Grid::new().partition_stream(
                g.num_vertices(),
                &weights,
                &mut g.edges().iter().copied(),
            );
            assert_eq!(from_graph, from_stream);
        }
    }

    #[test]
    fn works_on_two_machines() {
        let g = skewed_graph();
        let a = Grid::new().partition(&g, &MachineWeights::uniform(2));
        let total: usize = a.edges_per_machine().iter().sum();
        assert_eq!(total, g.num_edges());
    }
}
