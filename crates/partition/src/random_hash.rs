//! Random Hash partitioning (Section II-B-1).
//!
//! The PowerGraph baseline: each edge is assigned by a random hash of the
//! edge. The heterogeneity-aware extension weighs machines so that "the
//! probability of generating indexes for each machine strictly follows the
//! CCR" (paper Fig 4): instead of a uniform `hash mod p`, the hash is
//! mapped through the weighted threshold table of
//! [`MachineWeights::pick`].

use hetgraph_core::rng::{hash64, hash_combine};
use hetgraph_core::{Edge, Graph};

use crate::assignment::PartitionAssignment;
use crate::chunk::chunked_map;
use crate::traits::{Partitioner, StreamPartitioner};
use crate::weights::{assert_bitmask_capacity, MachineWeights};

/// Random-hash edge partitioner.
#[derive(Debug, Clone)]
pub struct RandomHash {
    salt: u64,
}

impl RandomHash {
    /// Default construction (fixed salt — partitioning must be a pure
    /// function of the graph for reproducibility).
    pub fn new() -> Self {
        RandomHash {
            salt: 0x9a4e_9a4e_0001,
        }
    }

    /// Custom salt, for ingest-variance studies.
    pub fn with_salt(salt: u64) -> Self {
        RandomHash { salt }
    }
}

impl Default for RandomHash {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for RandomHash {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
        self.partition_with_threads(graph, weights, 1)
    }

    fn partition_with_threads(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> PartitionAssignment {
        assert!(host_threads > 0, "need at least one host thread");
        assert_bitmask_capacity(weights.len());
        let edges = graph.edges();
        // Pure per-edge hash: fan out in fixed chunks (identical output at
        // any thread count).
        let assignment: Vec<u16> = chunked_map(edges.len(), host_threads, |i| {
            let h = hash64(hash_combine(edges[i].key(), self.salt));
            weights.pick(h).0
        });
        PartitionAssignment::from_edge_machines_with_threads(
            graph,
            weights.len(),
            assignment,
            host_threads,
        )
    }
}

impl StreamPartitioner for RandomHash {
    fn partition_stream(
        &self,
        num_vertices: u32,
        weights: &MachineWeights,
        edges: &mut dyn Iterator<Item = Edge>,
    ) -> PartitionAssignment {
        assert_bitmask_capacity(weights.len());
        let n = num_vertices as usize;
        let mut assignment: Vec<u16> = Vec::new();
        let mut replica_mask = vec![0u64; n];
        let mut edges_per_machine = vec![0usize; weights.len()];
        for e in edges {
            let h = hash64(hash_combine(e.key(), self.salt));
            let m = weights.pick(h).0;
            replica_mask[e.src as usize] |= 1u64 << m;
            replica_mask[e.dst as usize] |= 1u64 << m;
            edges_per_machine[m as usize] += 1;
            assignment.push(m);
        }
        PartitionAssignment::from_parts(
            weights.len(),
            assignment,
            replica_mask,
            edges_per_machine,
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn power_law_like_graph() -> Graph {
        // A hub + noise: deterministic, enough edges for statistics.
        let n = 2_000u32;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(Edge::new(0, v)); // hub fan-out
            edges.push(Edge::new(v, (v * 7 + 1) % n));
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn uniform_weights_balance_edges() {
        let g = power_law_like_graph();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(4));
        let shares = a.edge_shares();
        for s in shares {
            assert!((s - 0.25).abs() < 0.03, "share {s} far from uniform");
        }
    }

    #[test]
    fn weighted_assignment_follows_ccr() {
        let g = power_law_like_graph();
        let w = MachineWeights::from_ccr(&[1.0, 3.0]);
        let a = RandomHash::new().partition(&g, &w);
        let shares = a.edge_shares();
        assert!((shares[0] - 0.25).abs() < 0.03, "share {}", shares[0]);
        assert!((shares[1] - 0.75).abs() < 0.03, "share {}", shares[1]);
    }

    #[test]
    fn deterministic() {
        let g = power_law_like_graph();
        let w = MachineWeights::uniform(3);
        let a = RandomHash::new().partition(&g, &w);
        let b = RandomHash::new().partition(&g, &w);
        assert_eq!(a, b);
    }

    #[test]
    fn different_salts_differ() {
        let g = power_law_like_graph();
        let w = MachineWeights::uniform(3);
        let a = RandomHash::with_salt(1).partition(&g, &w);
        let b = RandomHash::with_salt(2).partition(&g, &w);
        assert_ne!(a.edge_machines(), b.edge_machines());
    }

    #[test]
    fn every_edge_assigned_exactly_once() {
        let g = power_law_like_graph();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(5));
        assert_eq!(a.edge_machines().len(), g.num_edges());
        let total: usize = a.edges_per_machine().iter().sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn stream_equals_graph_partition() {
        let g = power_law_like_graph();
        for weights in [
            MachineWeights::uniform(4),
            MachineWeights::from_ccr(&[1.0, 3.0]),
        ] {
            let from_graph = RandomHash::new().partition(&g, &weights);
            let from_stream = RandomHash::new().partition_stream(
                g.num_vertices(),
                &weights,
                &mut g.edges().iter().copied(),
            );
            assert_eq!(from_graph, from_stream);
        }
    }

    #[test]
    fn single_machine_trivial() {
        let g = power_law_like_graph();
        let a = RandomHash::new().partition(&g, &MachineWeights::uniform(1));
        assert_eq!(a.edges_per_machine()[0], g.num_edges());
        assert_eq!(a.total_mirrors(), 0);
    }
}
