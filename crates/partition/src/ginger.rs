//! Ginger partitioning (Section II-C-1; PowerLyra's heuristic Hybrid,
//! scoring from Fennel).
//!
//! High-degree vertices are handled exactly like [`crate::Hybrid`]
//! (in-edges spread by source hash). Low-degree vertices, instead of a
//! plain target hash, are *re-assigned* to the machine maximizing
//!
//! ```text
//! score(v, i) = |N(v) ∩ V_i|  −  (1 / ccr_i) · γ · b(i)          (Eq. 2)
//! ```
//!
//! where `|N(v) ∩ V_i|` counts v's neighbors already homed on machine `i`,
//! `b(i)` is a balance cost over the vertices and edges currently on `i`,
//! and the heterogeneity factor `1 / ccr_i` shrinks the cost for fast
//! machines "such that a fast machine has a smaller factor to gain a
//! better score" (paper). All in-edges of a re-assigned vertex move with
//! it — the mixed-cut property that keeps low-degree replication minimal.

use hetgraph_core::Graph;

use crate::assignment::PartitionAssignment;
use crate::hybrid::{pick_table, DEFAULT_THRESHOLD, SOURCE_SALT, TARGET_SALT};
use crate::traits::Partitioner;
use crate::weights::{assert_bitmask_capacity, MachineWeights};

/// Ginger mixed-cut partitioner.
#[derive(Debug, Clone)]
pub struct Ginger {
    threshold: usize,
    /// Balance-pressure coefficient γ. Larger values favor balance over
    /// locality; Fennel's analysis suggests values around the average
    /// degree, which is what [`Ginger::new`] uses at partition time.
    gamma: Option<f64>,
}

impl Ginger {
    /// Default construction: threshold 100, γ = graph average degree.
    pub fn new() -> Self {
        Ginger {
            threshold: DEFAULT_THRESHOLD,
            gamma: None,
        }
    }

    /// Custom threshold and γ.
    pub fn with_params(threshold: usize, gamma: f64) -> Self {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        Ginger {
            threshold,
            gamma: Some(gamma),
        }
    }
}

impl Default for Ginger {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for Ginger {
    fn name(&self) -> &'static str {
        "ginger"
    }

    /// One Fennel scoring scan per low-degree vertex (high-degree
    /// vertices keep hash homes and are never greedily scored).
    fn greedy_scans(&self, graph: &Graph) -> Option<u64> {
        Some(
            (0..graph.num_vertices())
                .filter(|&v| graph.in_degree(v) <= self.threshold)
                .count() as u64,
        )
    }

    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
        self.partition_with_threads(graph, weights, 1)
    }

    fn partition_with_threads(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> PartitionAssignment {
        assert!(host_threads > 0, "need at least one host thread");
        let p = weights.len();
        assert_bitmask_capacity(p);
        let n = graph.num_vertices() as usize;
        let gamma = self.gamma.unwrap_or_else(|| graph.avg_degree().max(1.0));

        // Initial homes: the Hybrid phase-1 target hash, computed once per
        // vertex (threaded pick table).
        let mut home: Vec<u16> = pick_table(weights, n, TARGET_SALT, host_threads);

        // Running load accounting for the balance term: vertices and
        // in-edge bundles currently homed per machine.
        let mut vert_load = vec![0f64; p];
        let mut edge_load = vec![0f64; p];
        for v in 0..n as u32 {
            vert_load[home[v as usize] as usize] += 1.0;
            edge_load[home[v as usize] as usize] += graph.in_degree(v) as f64;
        }
        let total_verts: f64 = n as f64;
        let total_edges: f64 = graph.num_edges() as f64 + 1.0;
        // Loop invariants of the scoring scan, hoisted: the uniform
        // vertex/edge shares and the per-machine heterogeneity pressure
        // `(1/(w·p)) · γ`. Each is the exact division/product expression
        // of the original per-iteration code, so scores stay
        // bit-identical.
        let vert_share = total_verts / p as f64;
        let edge_share = total_edges / p as f64;
        let het_gamma: Vec<f64> = weights
            .as_slice()
            .iter()
            .map(|&w| (1.0 / (w * p as f64)) * gamma)
            .collect();

        // One streaming sweep over low-degree vertices, greedily re-homing
        // each by score. High-degree vertices keep hash homes (their
        // in-edges are source-hashed below anyway).
        let mut overlap = vec![0f64; p];
        for v in 0..n as u32 {
            let in_deg = graph.in_degree(v);
            if in_deg > self.threshold {
                continue;
            }
            // Neighbor overlap against current homes.
            overlap.fill(0.0);
            for &u in graph.in_neighbors(v).iter().chain(graph.out_neighbors(v)) {
                overlap[home[u as usize] as usize] += 1.0;
            }
            let old = home[v as usize] as usize;
            // Remove v from its current home while scoring, so the balance
            // term sees the hypothetical placement cleanly.
            vert_load[old] -= 1.0;
            edge_load[old] -= in_deg as f64;

            let mut best = old;
            let mut best_score = f64::NEG_INFINITY;
            for i in 0..p {
                // b(i): how full machine i is relative to a uniform share,
                // over both vertices and edges (the paper: "considers both
                // vertices and edges located on machine p").
                let b = 0.5
                    * ((vert_load[i] + 1.0) / vert_share
                        + (edge_load[i] + in_deg as f64) / edge_share);
                // Heterogeneity factor 1/ccr_i, with ccr expressed as the
                // normalized weight times p (so a homogeneous cluster has
                // factor exactly 1 and reduces to plain Fennel/Ginger).
                let score = overlap[i] - het_gamma[i] * b;
                if score > best_score {
                    best_score = score;
                    best = i;
                }
            }
            home[v as usize] = best as u16;
            vert_load[best] += 1.0;
            edge_load[best] += in_deg as f64;
        }

        // Materialize edge assignment: low-degree targets pull their
        // in-edges to their home; high-degree targets spread by source
        // (precomputed pick table, threaded chunked map).
        let src_pick = pick_table(weights, n, SOURCE_SALT, host_threads);
        let edges = graph.edges();
        let assignment: Vec<u16> = crate::chunk::chunked_map(edges.len(), host_threads, |i| {
            let e = &edges[i];
            if graph.in_degree(e.dst) > self.threshold {
                src_pick[e.src as usize]
            } else {
                home[e.dst as usize]
            }
        });
        PartitionAssignment::from_edge_machines_with_threads(graph, p, assignment, host_threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid::Hybrid;
    use crate::random_hash::RandomHash;
    use hetgraph_core::{Edge, EdgeList};

    fn community_graph() -> Graph {
        // Two dense communities plus a hub: Ginger's locality term should
        // shine here relative to hash-based Hybrid.
        let n = 2_000u32;
        let half = n / 2;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(Edge::new(v, 0)); // hub
            let base = if v < half { 0 } else { half };
            let span = half;
            edges.push(Edge::new(v, base + (v * 7 + 1) % span));
            edges.push(Edge::new(v, base + (v * 13 + 5) % span));
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn lower_replication_than_hybrid_on_community_graph() {
        let g = community_graph();
        let w = MachineWeights::uniform(4);
        let ginger = Ginger::new().partition(&g, &w);
        let hybrid = Hybrid::new().partition(&g, &w);
        assert!(
            ginger.replication_factor() <= hybrid.replication_factor(),
            "ginger {} !<= hybrid {}",
            ginger.replication_factor(),
            hybrid.replication_factor()
        );
    }

    #[test]
    fn lower_replication_than_random() {
        let g = community_graph();
        let w = MachineWeights::uniform(4);
        let ginger = Ginger::new().partition(&g, &w);
        let random = RandomHash::new().partition(&g, &w);
        assert!(ginger.replication_factor() < random.replication_factor());
    }

    #[test]
    fn weighted_assignment_favors_fast_machine() {
        let g = community_graph();
        let w = MachineWeights::from_ccr(&[1.0, 3.0]);
        let a = Ginger::new().partition(&g, &w);
        let shares = a.edge_shares();
        assert!(
            shares[1] > 0.55,
            "fast machine share {} should exceed half",
            shares[1]
        );
        assert!(shares[1] > shares[0]);
    }

    #[test]
    fn homogeneous_weights_stay_balanced() {
        let g = community_graph();
        let a = Ginger::new().partition(&g, &MachineWeights::uniform(4));
        for &s in &a.edge_shares() {
            assert!((s - 0.25).abs() < 0.15, "share {s}");
        }
    }

    #[test]
    fn deterministic() {
        let g = community_graph();
        let w = MachineWeights::uniform(4);
        assert_eq!(
            Ginger::new().partition(&g, &w),
            Ginger::new().partition(&g, &w)
        );
    }

    #[test]
    fn all_edges_assigned() {
        let g = community_graph();
        let a = Ginger::new().partition(&g, &MachineWeights::uniform(5));
        let total: usize = a.edges_per_machine().iter().sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn zero_gamma_maximizes_locality() {
        // With no balance pressure, every low-degree vertex chases its
        // neighbors; replication drops (possibly at balance cost).
        let g = community_graph();
        let w = MachineWeights::uniform(4);
        let greedy = Ginger::with_params(100, 0.0).partition(&g, &w);
        let balanced = Ginger::with_params(100, 50.0).partition(&g, &w);
        assert!(greedy.replication_factor() <= balanced.replication_factor() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gamma_rejected() {
        Ginger::with_params(100, -1.0);
    }
}
