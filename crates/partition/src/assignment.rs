//! The result of partitioning: an edge→machine assignment plus the derived
//! replication structure (masters and mirrors).

use crate::delta::{AssignmentDelta, EdgeMove, MaskChange};
use hetgraph_core::rng::hash64;
use hetgraph_core::{Graph, MachineId, VertexId};

/// A complete vertex-cut partition of a graph across `num_machines`
/// machines.
///
/// * every edge lives on exactly one machine (`edge_machine`, parallel to
///   `graph.edges()` order);
/// * a vertex is *replicated* on every machine that holds at least one of
///   its edges (`replica_mask`, one bit per machine);
/// * one replica is the *master* (`master`); all others are *mirrors* that
///   must be synchronized each superstep. Vertices with no edges still get
///   a master so that vertex-grain work (apply) is accounted somewhere.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionAssignment {
    num_machines: usize,
    edge_machine: Vec<u16>,
    replica_mask: Vec<u64>,
    master: Vec<u16>,
    edges_per_machine: Vec<usize>,
}

impl PartitionAssignment {
    /// Build the full assignment from a per-edge machine vector.
    ///
    /// # Panics
    /// Panics if lengths mismatch, `num_machines` is 0 or > 64, or any
    /// edge's machine is out of range.
    pub fn from_edge_machines(graph: &Graph, num_machines: usize, edge_machine: Vec<u16>) -> Self {
        Self::from_edge_machines_with_threads(graph, num_machines, edge_machine, 1)
    }

    /// [`PartitionAssignment::from_edge_machines`] with a host thread
    /// budget: the per-vertex master-selection pass fans out in
    /// index-deterministic chunks (identical structure at any thread
    /// count). The replica-mask accumulation stays serial — it is two ORs
    /// per edge against vertex-indexed state.
    ///
    /// # Panics
    /// Panics if lengths mismatch, `num_machines` is 0 or > 64,
    /// `host_threads == 0`, or any edge's machine is out of range.
    pub fn from_edge_machines_with_threads(
        graph: &Graph,
        num_machines: usize,
        edge_machine: Vec<u16>,
        host_threads: usize,
    ) -> Self {
        assert!(num_machines >= 1, "need at least one machine");
        crate::weights::assert_bitmask_capacity(num_machines);
        assert!(host_threads > 0, "need at least one host thread");
        assert_eq!(
            edge_machine.len(),
            graph.num_edges(),
            "one machine per edge, in graph edge order"
        );

        let n = graph.num_vertices() as usize;
        let mut replica_mask = vec![0u64; n];
        let mut edges_per_machine = vec![0usize; num_machines];
        for (e, &m) in graph.edges().iter().zip(&edge_machine) {
            assert!(
                (m as usize) < num_machines,
                "edge assigned to machine {m} out of range"
            );
            replica_mask[e.src as usize] |= 1u64 << m;
            replica_mask[e.dst as usize] |= 1u64 << m;
            edges_per_machine[m as usize] += 1;
        }
        Self::from_parts(
            num_machines,
            edge_machine,
            replica_mask,
            edges_per_machine,
            host_threads,
        )
    }

    /// Assemble an assignment from state a streaming partitioner already
    /// holds: the per-edge machines, the replica bit masks it accumulated
    /// while assigning, and the per-machine edge counts. Skips the O(E)
    /// replay that [`PartitionAssignment::from_edge_machines`] would do —
    /// only the per-vertex master selection remains. Debug builds verify
    /// the handed-over state is consistent with `edge_machine`.
    ///
    /// # Panics
    /// Panics if `num_machines` is 0 or > 64, `host_threads == 0`, or the
    /// machine-count-indexed vector has the wrong length.
    pub(crate) fn from_parts(
        num_machines: usize,
        edge_machine: Vec<u16>,
        replica_mask: Vec<u64>,
        edges_per_machine: Vec<usize>,
        host_threads: usize,
    ) -> Self {
        assert!(num_machines >= 1, "need at least one machine");
        crate::weights::assert_bitmask_capacity(num_machines);
        assert!(host_threads > 0, "need at least one host thread");
        assert_eq!(
            edges_per_machine.len(),
            num_machines,
            "one edge count per machine"
        );
        debug_assert_eq!(
            edges_per_machine,
            {
                let mut counts = vec![0usize; num_machines];
                for &m in &edge_machine {
                    counts[m as usize] += 1;
                }
                counts
            },
            "edge counts must match the per-edge machines"
        );

        let n = replica_mask.len();
        // Master selection: deterministic hash-based pick among the
        // replicas (PowerGraph picks pseudo-randomly). Isolated vertices
        // hash onto any machine. Pure per vertex, so threadable.
        let master: Vec<u16> = crate::chunk::chunked_map(n, host_threads, |v| {
            master_for(v, replica_mask[v], num_machines)
        });

        PartitionAssignment {
            num_machines,
            edge_machine,
            replica_mask,
            master,
            edges_per_machine,
        }
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Machine of edge `i` (graph edge order).
    #[inline]
    pub fn edge_machine(&self, i: usize) -> MachineId {
        MachineId(self.edge_machine[i])
    }

    /// Resident footprint in bytes of the O(V)+O(E) arrays this
    /// assignment holds: the per-edge machine lane, the per-vertex
    /// replica masks and masters, and the per-machine edge totals.
    pub fn resident_bytes(&self) -> usize {
        self.edge_machine.len() * 2
            + self.replica_mask.len() * 8
            + self.master.len() * 2
            + self.edges_per_machine.len() * std::mem::size_of::<usize>()
    }

    /// The raw per-edge machine vector.
    pub fn edge_machines(&self) -> &[u16] {
        &self.edge_machine
    }

    /// Edge counts per machine.
    pub fn edges_per_machine(&self) -> &[usize] {
        &self.edges_per_machine
    }

    /// Replica bit mask of vertex `v` (bit `m` set ⇔ `v` has a replica on
    /// machine `m`).
    #[inline]
    pub fn replica_mask(&self, v: VertexId) -> u64 {
        self.replica_mask[v as usize]
    }

    /// Number of replicas of `v` (0 for isolated vertices).
    #[inline]
    pub fn replica_count(&self, v: VertexId) -> u32 {
        self.replica_mask[v as usize].count_ones()
    }

    /// Master machine of vertex `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> MachineId {
        MachineId(self.master[v as usize])
    }

    /// Whether `v` has a replica on machine `m`.
    #[inline]
    pub fn has_replica(&self, v: VertexId, m: MachineId) -> bool {
        self.replica_mask[v as usize] & (1u64 << m.0) != 0
    }

    /// Total mirrors: `Σ_v max(replicas(v) − 1, 0)`.
    pub fn total_mirrors(&self) -> u64 {
        self.replication_summary_with_threads(1).2
    }

    /// Replication factor: average replicas per vertex *that has edges*
    /// (PowerGraph's λ). 1.0 is the ideal (no vertex split across
    /// machines); `num_machines` is the worst case.
    pub fn replication_factor(&self) -> f64 {
        let (total, covered, _) = self.replication_summary_with_threads(1);
        if covered == 0 {
            1.0
        } else {
            total as f64 / covered as f64
        }
    }

    /// One pass over the replica masks, fanned out over `host_threads` in
    /// index-deterministic chunks: `(total replicas over covered vertices,
    /// covered vertex count, total mirrors)`. Integer partial sums make
    /// the reduction exact — and therefore identical — at any thread
    /// count.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    pub fn replication_summary_with_threads(&self, host_threads: usize) -> (u64, u64, u64) {
        assert!(host_threads > 0, "need at least one host thread");
        let reduce_range = |masks: &[u64]| {
            let mut total = 0u64;
            let mut covered = 0u64;
            let mut mirrors = 0u64;
            for &m in masks {
                let c = m.count_ones() as u64;
                if c > 0 {
                    total += c;
                    covered += 1;
                    mirrors += c - 1;
                }
            }
            (total, covered, mirrors)
        };
        let n = self.replica_mask.len();
        if host_threads == 1 || n <= crate::chunk::CHUNK {
            return reduce_range(&self.replica_mask);
        }
        let tasks = n.div_ceil(crate::chunk::CHUNK);
        let partials = hetgraph_core::par::scheduled(tasks, host_threads, |t| {
            let lo = t * crate::chunk::CHUNK;
            let hi = (lo + crate::chunk::CHUNK).min(n);
            reduce_range(&self.replica_mask[lo..hi])
        });
        partials
            .into_iter()
            .fold((0, 0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1, acc.2 + x.2))
    }

    /// Mirror count per machine (replicas that are not the master).
    pub fn mirrors_per_machine(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_machines];
        for v in 0..self.replica_mask.len() {
            let mut mask = self.replica_mask[v];
            while mask != 0 {
                let m = mask.trailing_zeros();
                mask &= mask - 1;
                if m as u16 != self.master[v] {
                    counts[m as usize] += 1;
                }
            }
        }
        counts
    }

    /// Incrementally reassign a batch of edges to new machines, keeping
    /// the derived replication structure (masks, masters, per-machine edge
    /// counts) exactly what a from-scratch
    /// [`PartitionAssignment::from_edge_machines`] rebuild of the edited
    /// per-edge machine vector would produce.
    ///
    /// `batch` entries are `(edge index, destination machine)` in graph
    /// edge order; entries whose edge already lives on the destination are
    /// dropped as no-ops. When one edge appears more than once the last
    /// entry wins (earlier ones still show up as intermediate moves).
    ///
    /// Cost: O(batch log batch) for the edge updates plus one O(E) scan to
    /// recompute the replica masks of the touched endpoints (clearing a
    /// replica bit requires knowing no *other* edge of the vertex remains
    /// on that machine). Masters of mask-changed vertices are re-picked
    /// with the same hash rule the full build uses, so equality with a
    /// rebuild holds bit for bit.
    ///
    /// # Panics
    /// Panics if `graph` does not match this assignment (edge-count
    /// mismatch), an edge index is out of range, or a destination machine
    /// is out of range.
    pub fn migrate_edges(&mut self, graph: &Graph, batch: &[(usize, u16)]) -> AssignmentDelta {
        assert_eq!(
            self.edge_machine.len(),
            graph.num_edges(),
            "graph must match the assignment it is migrating"
        );
        let mut delta = AssignmentDelta::default();
        // Endpoints of moved edges, for the targeted mask recompute.
        let mut touched: Vec<VertexId> = Vec::new();
        for &(e, to) in batch {
            assert!(e < self.edge_machine.len(), "edge index {e} out of range");
            assert!(
                (to as usize) < self.num_machines,
                "edge assigned to machine {to} out of range"
            );
            let from = self.edge_machine[e];
            if from == to {
                continue;
            }
            self.edge_machine[e] = to;
            self.edges_per_machine[from as usize] -= 1;
            self.edges_per_machine[to as usize] += 1;
            delta.moves.push(EdgeMove {
                edge: e,
                from: MachineId(from),
                to: MachineId(to),
            });
            let edge = graph.edges()[e];
            touched.push(edge.src);
            touched.push(edge.dst);
        }
        if delta.moves.is_empty() {
            return delta;
        }
        touched.sort_unstable();
        touched.dedup();

        // Recompute the replica masks of touched vertices with one pass
        // over the edge list: a bit can only be *cleared* by proving no
        // remaining edge of the vertex lands on that machine.
        let mut new_masks = vec![0u64; touched.len()];
        for (e, &m) in graph.edges().iter().zip(&self.edge_machine) {
            if let Ok(i) = touched.binary_search(&e.src) {
                new_masks[i] |= 1u64 << m;
            }
            if let Ok(i) = touched.binary_search(&e.dst) {
                new_masks[i] |= 1u64 << m;
            }
        }
        for (i, &v) in touched.iter().enumerate() {
            let old_mask = self.replica_mask[v as usize];
            let new_mask = new_masks[i];
            if old_mask == new_mask {
                continue;
            }
            let old_master = self.master[v as usize];
            let new_master = master_for(v as usize, new_mask, self.num_machines);
            self.replica_mask[v as usize] = new_mask;
            self.master[v as usize] = new_master;
            delta.mask_changes.push(MaskChange {
                vertex: v,
                old_mask,
                new_mask,
                old_master: MachineId(old_master),
                new_master: MachineId(new_master),
            });
        }
        delta
    }

    /// Fraction of edges on each machine (sums to 1 for non-empty graphs).
    pub fn edge_shares(&self) -> Vec<f64> {
        let total: usize = self.edges_per_machine.iter().sum();
        if total == 0 {
            return vec![0.0; self.num_machines];
        }
        self.edges_per_machine
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

/// The deterministic master pick for vertex `v` given its replica mask: a
/// hash-based choice among the replicas, or among all machines for
/// isolated vertices. Pure in `(v, mask, num_machines)`, so re-picking
/// after a mask change reproduces exactly what a full rebuild would pick.
fn master_for(v: usize, mask: u64, num_machines: usize) -> u16 {
    let h = hash64(v as u64 ^ 0x6d61_7374_6572_2121);
    if mask == 0 {
        (h % num_machines as u64) as u16
    } else {
        let count = mask.count_ones() as u64;
        let k = (h % count) as u32;
        nth_set_bit(mask, k) as u16
    }
}

/// Index of the `k`-th (0-based) set bit of `mask`.
///
/// # Panics
/// Panics if `mask` has fewer than `k + 1` set bits.
fn nth_set_bit(mask: u64, k: u32) -> u32 {
    let mut m = mask;
    for _ in 0..k {
        assert!(m != 0, "nth_set_bit out of bits");
        m &= m - 1;
    }
    assert!(m != 0, "nth_set_bit out of bits");
    m.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList};

    fn graph() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            5,
            vec![
                Edge::new(0, 1), // e0
                Edge::new(1, 2), // e1
                Edge::new(2, 3), // e2
                Edge::new(0, 3), // e3
            ],
        ))
    }

    #[test]
    fn replicas_follow_edge_placement() {
        let g = graph();
        // e0,e1 -> m0; e2,e3 -> m1
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        assert_eq!(a.replica_count(0), 2); // edges on both machines
        assert_eq!(a.replica_count(1), 1);
        assert_eq!(a.replica_count(2), 2);
        assert_eq!(a.replica_count(3), 1);
        assert_eq!(a.replica_count(4), 0); // isolated
        assert_eq!(a.edges_per_machine(), &[2, 2]);
    }

    #[test]
    fn master_is_one_of_the_replicas() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        for v in 0..4u32 {
            assert!(
                a.has_replica(v, a.master(v)),
                "master must hold a replica of {v}"
            );
        }
        // Isolated vertex still gets a valid master.
        assert!(a.master(4).index() < 2);
    }

    #[test]
    fn mirrors_and_replication_factor() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        // v0 and v2 are split -> 2 mirrors total.
        assert_eq!(a.total_mirrors(), 2);
        // RF over covered vertices: (2+1+2+1)/4 = 1.5
        assert!((a.replication_factor() - 1.5).abs() < 1e-12);
        let per_machine: u64 = a.mirrors_per_machine().iter().sum();
        assert_eq!(per_machine, 2);
    }

    #[test]
    fn single_machine_has_no_mirrors() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 1, vec![0, 0, 0, 0]);
        assert_eq!(a.total_mirrors(), 0);
        assert!((a.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_shares_sum_to_one() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 3, vec![0, 1, 2, 0]);
        let s: f64 = a.edge_shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!((a.edge_shares()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_machine_panics() {
        let g = graph();
        PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 5, 1]);
    }

    #[test]
    #[should_panic(expected = "one machine per edge")]
    fn wrong_length_panics() {
        let g = graph();
        PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "bitmask capacity")]
    fn over_capacity_machine_count_panics() {
        let g = graph();
        PartitionAssignment::from_edge_machines(&g, 65, vec![0; g.num_edges()]);
    }

    #[test]
    fn nth_set_bit_works() {
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
    }

    #[test]
    fn migrate_matches_from_scratch_rebuild() {
        let g = graph();
        let mut a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let delta = a.migrate_edges(&g, &[(0, 1), (2, 0)]);
        assert_eq!(delta.edges_moved(), 2);
        let rebuilt = PartitionAssignment::from_edge_machines(&g, 2, a.edge_machines().to_vec());
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn migrate_skips_noops() {
        let g = graph();
        let mut a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let snapshot = a.clone();
        let delta = a.migrate_edges(&g, &[(0, 0), (3, 1)]);
        assert!(delta.is_empty());
        assert!(delta.mask_changes.is_empty());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn migrate_records_mask_and_master_changes() {
        let g = graph();
        // All edges on m0: every covered vertex has mask 0b01.
        let mut a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 0]);
        // Move e1 (1->2) to m1: v1 and v2 gain a replica on m1.
        let delta = a.migrate_edges(&g, &[(1, 1)]);
        assert_eq!(delta.moves.len(), 1);
        assert_eq!(delta.moves[0].from, MachineId(0));
        assert_eq!(delta.moves[0].to, MachineId(1));
        let changed: Vec<VertexId> = delta.mask_changes.iter().map(|c| c.vertex).collect();
        assert_eq!(changed, vec![1, 2]);
        for c in &delta.mask_changes {
            assert_eq!(c.old_mask, 0b01);
            assert_eq!(c.new_mask, 0b11);
            assert_eq!(MachineId(a.master(c.vertex).0), c.new_master);
        }
        assert_eq!(a.edges_per_machine(), &[3, 1]);
    }

    #[test]
    fn migrate_last_entry_wins_for_duplicate_edges() {
        let g = graph();
        let mut a = PartitionAssignment::from_edge_machines(&g, 3, vec![0, 0, 0, 0]);
        let delta = a.migrate_edges(&g, &[(0, 1), (0, 2)]);
        assert_eq!(delta.edges_moved(), 2); // two intermediate moves
        assert_eq!(a.edge_machine(0), MachineId(2));
        let rebuilt = PartitionAssignment::from_edge_machines(&g, 3, a.edge_machines().to_vec());
        assert_eq!(a, rebuilt);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn migrate_rejects_out_of_range_machine() {
        let g = graph();
        let mut a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        a.migrate_edges(&g, &[(0, 7)]);
    }

    #[test]
    fn empty_graph_replication_factor_is_one() {
        let g = Graph::from_edge_list(EdgeList::new(3));
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![]);
        assert_eq!(a.replication_factor(), 1.0);
        assert_eq!(a.edge_shares(), vec![0.0, 0.0]);
    }
}
