//! Machine weights: the heterogeneity-awareness knob.
//!
//! Every partitioner in this crate distributes edges *proportionally to a
//! weight vector*. The three policies of the paper's evaluation are three
//! ways of building that vector:
//!
//! - **default / homogeneous** — [`MachineWeights::uniform`]: the original
//!   PowerGraph behaviour;
//! - **prior work** — [`MachineWeights::from_thread_counts`]: computing
//!   threads read from the hardware configuration (LeBeane et al.);
//! - **this paper** — [`MachineWeights::from_ccr`]: proxy-profiled
//!   Computation Capability Ratios.

use hetgraph_cluster::Cluster;
use hetgraph_core::MachineId;

/// Maximum machines per cluster (replica sets are stored as `u64` masks).
pub const MAX_MACHINES: usize = 64;

/// Assert that `num_machines` fits the `u64` replica bitmasks used
/// throughout this crate (`1u64 << machine` would silently alias — or be
/// outright UB-flavored — for machine ids ≥ 64).
///
/// Every bitmask-based partitioner calls this on entry, so a cluster that
/// outgrows the mask width fails loudly at partition time instead of
/// corrupting replica sets. [`MachineWeights::new`] enforces the same
/// bound at construction, making this a defense-in-depth check for
/// weights reaching a partitioner through any future constructor.
///
/// # Panics
/// Panics if `num_machines > MAX_MACHINES`.
#[inline]
pub fn assert_bitmask_capacity(num_machines: usize) {
    assert!(
        num_machines <= MAX_MACHINES,
        "{num_machines} machines exceed the u64 replica bitmask capacity of {MAX_MACHINES}; \
         shifts past bit 63 would alias machines"
    );
}

/// A normalized positive weight per machine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineWeights {
    weights: Vec<f64>,
    /// Cumulative thresholds scaled to the full `u64` range, so a uniform
    /// 64-bit hash can be mapped to a machine without floating-point
    /// comparisons on the hot path.
    thresholds: Vec<u64>,
}

impl MachineWeights {
    /// Build from raw positive weights (normalized internally).
    ///
    /// # Panics
    /// Panics if empty, longer than [`MAX_MACHINES`], or any weight is not
    /// strictly positive and finite.
    pub fn new(raw: &[f64]) -> Self {
        assert!(!raw.is_empty(), "weights must be non-empty");
        assert!(
            raw.len() <= MAX_MACHINES,
            "at most {MAX_MACHINES} machines supported"
        );
        for &w in raw {
            assert!(
                w.is_finite() && w > 0.0,
                "weights must be positive and finite, got {w}"
            );
        }
        let sum: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|&w| w / sum).collect();
        let mut thresholds = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            let t = if i + 1 == weights.len() {
                u64::MAX // guard against rounding leaving a gap at the top
            } else {
                (acc * u64::MAX as f64) as u64
            };
            thresholds.push(t);
        }
        MachineWeights {
            weights,
            thresholds,
        }
    }

    /// Uniform weights over `n` machines (the homogeneous default).
    pub fn uniform(n: usize) -> Self {
        MachineWeights::new(&vec![1.0; n])
    }

    /// Prior-work weights: computing threads per machine.
    pub fn from_thread_counts(cluster: &Cluster) -> Self {
        MachineWeights::new(&cluster.thread_count_weights())
    }

    /// CCR weights: one capability ratio per machine (any positive scale).
    pub fn from_ccr(ccr: &[f64]) -> Self {
        MachineWeights::new(ccr)
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Normalized weight of machine `i`.
    pub fn weight(&self, i: MachineId) -> f64 {
        self.weights[i.index()]
    }

    /// The normalized weight vector.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Map a uniform 64-bit hash to a machine, with probability equal to
    /// each machine's weight. Deterministic: the same hash always maps to
    /// the same machine for a given weight vector.
    #[inline]
    pub fn pick(&self, hash: u64) -> MachineId {
        // Linear scan: clusters are small (2–64 machines) and the scan is
        // branch-predictable; a binary search would not pay off below ~32.
        for (i, &t) in self.thresholds.iter().enumerate() {
            if hash <= t {
                return MachineId::from(i);
            }
        }
        MachineId::from(self.weights.len() - 1)
    }

    /// `load[i] / weight[i]` — the *normalized load*: how full machine `i`
    /// is relative to its capability share. Balancing normalized load is
    /// how every greedy partitioner here becomes heterogeneity-aware.
    pub fn normalized_load(&self, loads: &[f64], i: MachineId) -> f64 {
        assert_eq!(loads.len(), self.weights.len(), "one load per machine");
        loads[i.index()] / self.weights[i.index()]
    }

    /// Among `candidates`, the machine with the smallest normalized load
    /// (ties break to the lower id for determinism).
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn least_loaded(
        &self,
        loads: &[f64],
        candidates: impl Iterator<Item = MachineId>,
    ) -> MachineId {
        let mut best: Option<(f64, MachineId)> = None;
        for c in candidates {
            let nl = self.normalized_load(loads, c);
            let better = match best {
                None => true,
                Some((b, id)) => nl < b || (nl == b && c < id),
            };
            if better {
                best = Some((nl, c));
            }
        }
        best.expect("least_loaded requires at least one candidate")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::rng::Xoshiro256;

    #[test]
    fn normalization() {
        let w = MachineWeights::new(&[1.0, 3.0]);
        assert!((w.weight(MachineId(0)) - 0.25).abs() < 1e-12);
        assert!((w.weight(MachineId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uniform_is_equal() {
        let w = MachineWeights::uniform(4);
        for i in 0..4 {
            assert!((w.weight(MachineId(i)) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pick_follows_weights_statistically() {
        let w = MachineWeights::new(&[1.0, 2.0, 7.0]);
        let mut rng = Xoshiro256::new(42);
        let mut counts = [0u32; 3];
        let n = 200_000;
        for _ in 0..n {
            counts[w.pick(rng.next_u64()).index()] += 1;
        }
        for (i, &target) in [0.1, 0.2, 0.7].iter().enumerate() {
            let p = counts[i] as f64 / n as f64;
            assert!(
                (p - target).abs() < 0.01,
                "machine {i}: {p} vs target {target}"
            );
        }
    }

    #[test]
    fn pick_is_deterministic() {
        let w = MachineWeights::new(&[1.0, 2.0]);
        assert_eq!(w.pick(12345), w.pick(12345));
    }

    #[test]
    fn pick_extremes_covered() {
        let w = MachineWeights::new(&[1.0, 1.0]);
        assert_eq!(w.pick(0).index(), 0);
        assert_eq!(w.pick(u64::MAX).index(), 1);
    }

    #[test]
    fn thread_count_weights_from_cluster() {
        let c = Cluster::case2(); // 2 and 10 computing threads
        let w = MachineWeights::from_thread_counts(&c);
        assert!((w.weight(MachineId(1)) / w.weight(MachineId(0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn least_loaded_uses_normalized_load() {
        // Machine 1 has 3x the capability; with equal raw loads it is the
        // less (normalized-)loaded one.
        let w = MachineWeights::new(&[1.0, 3.0]);
        let loads = [10.0, 10.0];
        let got = w.least_loaded(&loads, [MachineId(0), MachineId(1)].into_iter());
        assert_eq!(got, MachineId(1));
    }

    #[test]
    fn least_loaded_tie_breaks_low_id() {
        let w = MachineWeights::uniform(3);
        let loads = [5.0, 5.0, 9.0];
        let got = w.least_loaded(&loads, (0..3).map(MachineId::from));
        assert_eq!(got, MachineId(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        MachineWeights::new(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        MachineWeights::new(&[]);
    }

    #[test]
    fn bitmask_capacity_accepts_max() {
        assert_bitmask_capacity(MAX_MACHINES);
        let w = MachineWeights::uniform(MAX_MACHINES);
        assert_eq!(w.len(), 64);
    }

    #[test]
    #[should_panic(expected = "bitmask capacity")]
    fn bitmask_capacity_rejects_65() {
        assert_bitmask_capacity(65);
    }
}
