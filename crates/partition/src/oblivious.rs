//! Oblivious (greedy) partitioning (Section II-B-2).
//!
//! PowerGraph's greedy heuristic scores every machine for every incoming
//! edge by combining *locality* (does the machine already hold a replica of
//! an endpoint?) with *balance* (how loaded is it?):
//!
//! ```text
//! score(i) = bal(i) + [src has replica on i] + [dst has replica on i]
//! bal(i)   = (max_load − load_i) / (max_load − min_load + ε)
//! ```
//!
//! and assigns the edge to the highest-scoring machine. The
//! heterogeneity-aware variant (paper: "weights of different machines to be
//! incorporated to guide the assignment of each edge") replaces raw loads
//! with *normalized* loads `load / weight`, so fast machines absorb
//! proportionally more edges before their balance term decays. As the
//! paper notes, the "heuristics combined with CCR-guided weight assignment
//! do not guarantee an exact balance" — locality pulls against the target
//! ratio.

use hetgraph_core::rng::hash64;
use hetgraph_core::Graph;

use crate::assignment::PartitionAssignment;
use crate::traits::Partitioner;
use crate::weights::MachineWeights;

/// Greedy history-based partitioner.
#[derive(Debug, Clone, Default)]
pub struct Oblivious {}

impl Oblivious {
    /// Default construction.
    pub fn new() -> Self {
        Oblivious {}
    }
}

impl Partitioner for Oblivious {
    fn name(&self) -> &'static str {
        "oblivious"
    }

    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
        let p = weights.len();
        let n = graph.num_vertices() as usize;
        let mut replicas = vec![0u64; n]; // running replica sets
        let mut loads = vec![0f64; p]; // raw edge counts per machine
        let mut assignment = Vec::with_capacity(graph.num_edges());

        for e in graph.edges() {
            let mu = replicas[e.src as usize];
            let mv = replicas[e.dst as usize];
            // Normalized loads bound the balance term.
            let mut min_nl = f64::INFINITY;
            let mut max_nl = f64::NEG_INFINITY;
            for (i, load) in loads.iter().enumerate().take(p) {
                let nl = load / weights.as_slice()[i];
                min_nl = min_nl.min(nl);
                max_nl = max_nl.max(nl);
            }
            let range = max_nl - min_nl;

            let mut best_score = f64::NEG_INFINITY;
            let mut best: Vec<u16> = Vec::with_capacity(2);
            for (i, load) in loads.iter().enumerate().take(p) {
                let nl = load / weights.as_slice()[i];
                // bal ∈ [0, 1]: exactly 1 for the least-loaded machine(s) so
                // that "empty machine" ties "machine with one endpoint" and
                // the hash tie-break lets hubs spread (PowerGraph breaks
                // these ties randomly for the same reason).
                let bal = if range <= f64::EPSILON {
                    1.0
                } else {
                    (max_nl - nl) / range
                };
                let locality = ((mu >> i) & 1) as f64 + ((mv >> i) & 1) as f64;
                let score = bal + locality;
                if score > best_score + 1e-9 {
                    best_score = score;
                    best.clear();
                    best.push(i as u16);
                } else if (score - best_score).abs() <= 1e-9 {
                    best.push(i as u16);
                }
            }
            // Unbiased deterministic tie-break: hash of the edge.
            let chosen = best[(hash64(e.key()) % best.len() as u64) as usize];
            replicas[e.src as usize] |= 1u64 << chosen;
            replicas[e.dst as usize] |= 1u64 << chosen;
            loads[chosen as usize] += 1.0;
            assignment.push(chosen);
        }
        PartitionAssignment::from_edge_machines(graph, p, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_hash::RandomHash;
    use hetgraph_core::{Edge, EdgeList};

    fn skewed_graph() -> Graph {
        let n = 3_000u32;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(Edge::new(0, v));
            edges.push(Edge::new(v, (v * 13 + 7) % n));
            if v % 3 == 0 {
                edges.push(Edge::new(v, (v * 31 + 1) % n));
            }
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn lower_replication_than_random_hash() {
        // The whole point of the greedy heuristic.
        let g = skewed_graph();
        let w = MachineWeights::uniform(4);
        let greedy = Oblivious::new().partition(&g, &w);
        let random = RandomHash::new().partition(&g, &w);
        assert!(
            greedy.replication_factor() < random.replication_factor(),
            "greedy {} !< random {}",
            greedy.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn uniform_weights_balance_loads() {
        let g = skewed_graph();
        let a = Oblivious::new().partition(&g, &MachineWeights::uniform(4));
        for &s in &a.edge_shares() {
            assert!((s - 0.25).abs() < 0.05, "share {s}");
        }
    }

    #[test]
    fn weighted_loads_track_ccr_approximately() {
        let g = skewed_graph();
        let w = MachineWeights::from_ccr(&[1.0, 3.0]);
        let a = Oblivious::new().partition(&g, &w);
        let shares = a.edge_shares();
        // The paper notes the heuristic does not guarantee exact CCR
        // balance; allow a loose band around 0.75.
        assert!(
            shares[1] > 0.60 && shares[1] < 0.90,
            "fast machine share {} not tracking weight 0.75",
            shares[1]
        );
        assert!(shares[1] > shares[0]);
    }

    #[test]
    fn deterministic() {
        let g = skewed_graph();
        let w = MachineWeights::uniform(3);
        assert_eq!(
            Oblivious::new().partition(&g, &w),
            Oblivious::new().partition(&g, &w)
        );
    }

    #[test]
    fn all_edges_assigned() {
        let g = skewed_graph();
        let a = Oblivious::new().partition(&g, &MachineWeights::uniform(5));
        assert_eq!(a.edge_machines().len(), g.num_edges());
    }

    #[test]
    fn double_locality_beats_balance() {
        // Once both endpoints of an edge live on a machine, that machine
        // scores locality 2 vs at most bal 1 elsewhere: the closing edge of
        // a wedge joins its endpoints if they are colocated.
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 1)],
        ));
        let a = Oblivious::new().partition(&g, &MachineWeights::uniform(4));
        // Both (0,1) edges must colocate.
        assert_eq!(a.edge_machines()[0], a.edge_machines()[2]);
    }
}
