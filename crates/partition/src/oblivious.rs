//! Oblivious (greedy) partitioning (Section II-B-2).
//!
//! PowerGraph's greedy heuristic scores every machine for every incoming
//! edge by combining *locality* (does the machine already hold a replica of
//! an endpoint?) with *balance* (how loaded is it?):
//!
//! ```text
//! score(i) = bal(i) + [src has replica on i] + [dst has replica on i]
//! bal(i)   = (max_load − load_i) / (max_load − min_load + ε)
//! ```
//!
//! and assigns the edge to the highest-scoring machine. The
//! heterogeneity-aware variant (paper: "weights of different machines to be
//! incorporated to guide the assignment of each edge") replaces raw loads
//! with *normalized* loads `load / weight`, so fast machines absorb
//! proportionally more edges before their balance term decays. As the
//! paper notes, the "heuristics combined with CCR-guided weight assignment
//! do not guarantee an exact balance" — locality pulls against the target
//! ratio.

use std::collections::VecDeque;

use hetgraph_core::rng::hash64;
use hetgraph_core::{Edge, Graph};

use crate::assignment::PartitionAssignment;
use crate::traits::{Partitioner, StreamPartitioner};
use crate::weights::{assert_bitmask_capacity, MachineWeights};

/// `f64::max` restricted to non-NaN inputs: the bare compare-select maps
/// to a single `maxsd`, where `f64::max` pays a 7-instruction NaN-
/// propagation sequence. Scores and normalized loads are always finite
/// (never NaN), so the value is identical.
#[inline(always)]
fn fmax(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

/// Non-NaN `f64::min`; see [`fmax`].
#[inline(always)]
fn fmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Greedy history-based partitioner.
#[derive(Debug, Clone, Default)]
pub struct Oblivious {}

impl Oblivious {
    /// Default construction.
    pub fn new() -> Self {
        Oblivious {}
    }
}

impl Partitioner for Oblivious {
    fn name(&self) -> &'static str {
        "oblivious"
    }

    /// One greedy candidate-machine scan per placed edge.
    fn greedy_scans(&self, graph: &Graph) -> Option<u64> {
        Some(graph.num_edges() as u64)
    }

    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
        self.stream_impl(
            graph.num_vertices() as usize,
            weights,
            graph.edges().iter().copied(),
            graph.num_edges(),
        )
    }
}

impl StreamPartitioner for Oblivious {
    fn partition_stream(
        &self,
        num_vertices: u32,
        weights: &MachineWeights,
        edges: &mut dyn Iterator<Item = Edge>,
    ) -> PartitionAssignment {
        self.stream_impl(num_vertices as usize, weights, edges, 0)
    }
}

impl Oblivious {
    /// The single greedy pass both entry points share: scores arrive from
    /// whatever produces the edges — a CSR walk or a shard reader — and
    /// the per-edge state (replica masks, loads, balance cache) never
    /// depends on anything but the edges already seen, so the two
    /// entry points are byte-identical by construction.
    fn stream_impl(
        &self,
        n: usize,
        weights: &MachineWeights,
        mut edges: impl Iterator<Item = Edge>,
        capacity: usize,
    ) -> PartitionAssignment {
        let p = weights.len();
        assert_bitmask_capacity(p);
        let mut assignment: Vec<u16> = Vec::with_capacity(capacity);

        // Streaming fast path. The reference loop recomputes every
        // machine's normalized load `load / weight`, its min/max, and the
        // balance term `(max_nl - nl) / range` for all `p` machines on
        // every edge. This implementation produces byte-identical
        // assignments with far less work per edge:
        //
        // * `nl[i] = loads[i] / ws[i]` changes for exactly one machine per
        //   edge, so it is cached and recomputed — with the same division
        //   expression, keeping every value bit-identical — only for the
        //   chosen machine. The balance terms `bal[i] = (max_nl - nl[i]) /
        //   range` are likewise cached: loads only grow, so the max is a
        //   one-comparison update, the min needs a rescan only when the
        //   bitmask of minimum holders empties, and `bal` is refreshed in
        //   full only when the min or max actually moves (a few percent of
        //   edges) — otherwise only the chosen machine's entry changes.
        // * The scoring scan is split into two branchless, auto-
        //   vectorizable passes (score fill + running max, then a
        //   ≥ threshold filter mask) feeding the reference's sequential
        //   tie logic with only the machines within 2e-9 of the max —
        //   usually exactly one. This preserves the reference tie lists:
        //   the reference running best `B` ends at `B = s_{i*} ≥ max_i s_i
        //   − 1e-9` (a machine can only fail to raise the running best to
        //   its own score if it is within 1e-9 of it), and its final list
        //   is `{i*} ∪ {i > i* : |s_i − B| ≤ 1e-9}`. Machines below
        //   `max − 2e-9` are therefore below `B − 1e-9`: they can neither
        //   update the running best after `i*`, nor survive the clear at
        //   `i*`, nor append afterwards — dropping them before the tie
        //   logic leaves its result unchanged, while `i*` itself (with
        //   `s = B`) always survives the filter.
        //
        // Fixed 64-wide arrays (the replica masks cap `p` at 64) let the
        // `& 63` index masking elide bounds checks in the tie loop.
        let ws = weights.as_slice();
        let mut weight = [1f64; 64];
        weight[..p].copy_from_slice(ws);
        let mut loads = [0f64; 64]; // raw edge counts per machine
        let mut nl = [0f64; 64];
        for i in 0..p {
            nl[i] = loads[i] / weight[i];
        }
        // The scoring pass reads `baltab[loc * 64 + i] = bal(i) + loc` for
        // integer locality `loc ∈ {0, 1, 2}` — pre-adding the three
        // possible locality terms to the cached balance values replaces
        // two int→float conversions and two additions per lane with one
        // indexed load. `bal + 0.0`, `bal + 1.0`, `bal + 2.0` are the
        // exact sums the reference computes (its locality is
        // `0.0/1.0/2.0` exactly), so scores stay bit-identical. The table
        // is 256 wide so `(loc << 6) | lane` provably stays in bounds.
        //
        // Initial state: every load is 0, so min = max = 0, every machine
        // holds the minimum, the range is flat, and every balance term is
        // exactly 1. Padding lanes `p..` hold 0.0 in the loc-0 plane (the
        // only one they ever select, as no replica mask has bits >= p);
        // they can never win: some machine always holds the minimum with
        // `bal = 1`, so `max score >= 1` and the filter threshold stays
        // above `1 - 2e-9 > 0`.
        let mut baltab = [0f64; 256];
        for i in 0..p {
            baltab[i] = 1.0;
            baltab[64 + i] = 2.0;
            baltab[128 + i] = 3.0;
        }
        let p4 = (p + 3) & !3;
        let mut min_nl = 0.0f64;
        let mut max_nl = 0.0f64;
        let mut min_mask: u64 = if p == 64 { !0 } else { (1u64 << p) - 1 };
        let mut score = [0f64; 64];
        let mut best = [0u16; 64]; // reusable tie-list scratch

        // Refresh the cached balance terms after `min_nl`/`max_nl` moved.
        // `bal` is exactly 1 for the least-loaded machine(s) so that
        // "empty machine" ties "machine with one endpoint" and the hash
        // tie-break lets hubs spread (PowerGraph breaks these ties
        // randomly for the same reason).
        macro_rules! set_bal {
            ($i:expr, $v:expr) => {{
                let b = $v;
                baltab[$i] = b;
                baltab[64 + $i] = b + 1.0;
                baltab[128 + $i] = b + 2.0;
            }};
        }
        macro_rules! refresh_bal {
            () => {{
                let range = max_nl - min_nl;
                if range <= f64::EPSILON {
                    for i in 0..p {
                        set_bal!(i, 1.0);
                    }
                } else {
                    for i in 0..p {
                        set_bal!(i, (max_nl - nl[i]) / range);
                    }
                }
            }};
        }

        // The replica array is the loop's only random-access state: two
        // loads and two read-modify-write stores per edge, at
        // hash-scattered vertex indices. Monomorphizing its integer width
        // to the smallest type that holds `p` bits shrinks the working set
        // (4x for p <= 16), keeping it cache-resident on graphs where the
        // full u64 array would thrash.
        macro_rules! stream {
            ($mask:ty) => {{
                let mut replicas = vec![0 as $mask; n]; // running replica sets
                // An 8-deep lookahead ring stands in for slice indexing:
                // the back of the ring is the edge 8 ahead of the one being
                // placed (or the last edge once the source dries up).
                let mut ring: VecDeque<Edge> = VecDeque::with_capacity(8);
                while ring.len() < 8 {
                    match edges.next() {
                        Some(e) => ring.push_back(e),
                        None => break,
                    }
                }
                while let Some(cur) = ring.pop_front() {
                    if let Some(nx) = edges.next() {
                        ring.push_back(nx);
                    }
                    // Software prefetch: touch the replica entries a few
                    // edges ahead so their (hash-scattered) cache lines and
                    // TLB entries are resolved before the dependent scoring
                    // chain needs them. `black_box` keeps the otherwise
                    // dead loads alive; the values are discarded, so
                    // assignments are unaffected.
                    let pf = ring.back().copied().unwrap_or(cur);
                    std::hint::black_box(replicas[pf.src as usize]);
                    std::hint::black_box(replicas[pf.dst as usize]);
                    let e = &cur;
                    let mu = replicas[e.src as usize] as u64;
                    let mv = replicas[e.dst as usize] as u64;

                    // Pass 1 (branchless): scores from the locality-offset
                    // balance table, with running max, argmax, and second
                    // max. Four independent accumulator sets over the
                    // padded width break the serial `maxsd` latency chain;
                    // max over a set is order-independent for non-NaN
                    // inputs, so the combined value is bit-identical to a
                    // sequential fold. Strict `>` updates keep each
                    // accumulator's argmax at the first lane attaining its
                    // max, and a second-max that ties the max (exactly)
                    // routes to the slow path below, so the fast path only
                    // ever fires with a globally unique argmax.
                    let mut m0 = f64::NEG_INFINITY;
                    let mut m1 = f64::NEG_INFINITY;
                    let mut m2 = f64::NEG_INFINITY;
                    let mut m3 = f64::NEG_INFINITY;
                    let mut b0 = f64::NEG_INFINITY;
                    let mut b1 = f64::NEG_INFINITY;
                    let mut b2 = f64::NEG_INFINITY;
                    let mut b3 = f64::NEG_INFINITY;
                    let mut a0 = 0usize;
                    let mut a1 = 0usize;
                    let mut a2 = 0usize;
                    let mut a3 = 0usize;
                    let mut i = 0usize;
                    while i < p4 {
                        let j0 = i & 63;
                        let j1 = (i + 1) & 63;
                        let j2 = (i + 2) & 63;
                        let j3 = (i + 3) & 63;
                        let l0 = (((mu >> j0) & 1) + ((mv >> j0) & 1)) as usize;
                        let l1 = (((mu >> j1) & 1) + ((mv >> j1) & 1)) as usize;
                        let l2 = (((mu >> j2) & 1) + ((mv >> j2) & 1)) as usize;
                        let l3 = (((mu >> j3) & 1) + ((mv >> j3) & 1)) as usize;
                        let s0 = baltab[((l0 << 6) | j0) & 255];
                        let s1 = baltab[((l1 << 6) | j1) & 255];
                        let s2 = baltab[((l2 << 6) | j2) & 255];
                        let s3 = baltab[((l3 << 6) | j3) & 255];
                        score[j0] = s0;
                        score[j1] = s1;
                        score[j2] = s2;
                        score[j3] = s3;
                        // Two-max recurrence without data-dependent
                        // branches: the new second-best is
                        // `max(second, min(s, best_old))` — `min(s, best)`
                        // is whichever of the incoming score and the old
                        // best loses, exactly the value displaced into
                        // second place.
                        b0 = fmax(b0, fmin(s0, m0));
                        b1 = fmax(b1, fmin(s1, m1));
                        b2 = fmax(b2, fmin(s2, m2));
                        b3 = fmax(b3, fmin(s3, m3));
                        a0 = if s0 > m0 { j0 } else { a0 };
                        a1 = if s1 > m1 { j1 } else { a1 };
                        a2 = if s2 > m2 { j2 } else { a2 };
                        a3 = if s3 > m3 { j3 } else { a3 };
                        m0 = fmax(m0, s0);
                        m1 = fmax(m1, s1);
                        m2 = fmax(m2, s2);
                        m3 = fmax(m3, s3);
                        i += 4;
                    }
                    // Combine the four accumulator sets. An exact cross-
                    // accumulator tie leaves `mx2 == mx`, forcing the slow
                    // path, so `ax` is only consumed when it is the unique
                    // global argmax.
                    let mut mx = m0;
                    let mut ax = a0;
                    let mut mx2 = b0;
                    if m1 > mx {
                        mx2 = fmax(mx, b1);
                        mx = m1;
                        ax = a1;
                    } else {
                        mx2 = fmax(mx2, m1);
                    }
                    if m2 > mx {
                        mx2 = fmax(mx, b2);
                        mx = m2;
                        ax = a2;
                    } else {
                        mx2 = fmax(mx2, m2);
                    }
                    if m3 > mx {
                        mx2 = fmax(mx, b3);
                        mx = m3;
                        ax = a3;
                    } else {
                        mx2 = fmax(mx2, m3);
                    }
                    let thr = mx - 2e-9;
                    let chosen = if mx2 < thr {
                        // Unique max with margin: every other machine sits
                        // below `B - 1e-9`, so the reference tie list is
                        // exactly `{argmax}` and the hash tie-break
                        // degenerates to index 0. No filter, no tie scan,
                        // no hash.
                        ax as u16
                    } else {
                        // Pass 2 (branchless): bitmask of machines within
                        // 2e-9 of the max — the only ones that can appear
                        // in or perturb the reference tie list. Padding
                        // lanes hold 0.0 and never pass (the threshold
                        // stays above 1 - 2e-9).
                        let mut f0 = 0u64;
                        let mut f1 = 0u64;
                        let mut f2 = 0u64;
                        let mut f3 = 0u64;
                        let mut i = 0usize;
                        while i < p4 {
                            f0 |= ((score[i & 63] >= thr) as u64) << i;
                            f1 |= ((score[(i + 1) & 63] >= thr) as u64) << (i + 1);
                            f2 |= ((score[(i + 2) & 63] >= thr) as u64) << (i + 2);
                            f3 |= ((score[(i + 3) & 63] >= thr) as u64) << (i + 3);
                            i += 4;
                        }
                        let mut flt = f0 | f1 | f2 | f3;
                        // Pass 3: the reference sequential running-best tie
                        // logic, over the surviving machines in ascending
                        // id order.
                        let mut best_score = f64::NEG_INFINITY;
                        let mut blen = 0usize;
                        while flt != 0 {
                            let i = flt.trailing_zeros() as usize & 63;
                            flt &= flt - 1;
                            let s = score[i];
                            if s > best_score + 1e-9 {
                                best_score = s;
                                best[0] = i as u16;
                                blen = 1;
                            } else if (s - best_score).abs() <= 1e-9 {
                                best[blen & 63] = i as u16;
                                blen += 1;
                            }
                        }
                        // Unbiased deterministic tie-break: hash of the
                        // edge.
                        best[(hash64(e.key()) % blen as u64) as usize & 63]
                    };
                    let c = chosen as usize & 63;
                    let rbit = (1 as $mask) << (c as u32 & (<$mask>::BITS - 1));
                    replicas[e.src as usize] |= rbit;
                    replicas[e.dst as usize] |= rbit;
                    loads[c] += 1.0;
                    nl[c] = loads[c] / weight[c];
                    assignment.push(chosen);

                    // Incremental min/max/bal maintenance. Clearing the
                    // chosen machine's minimum bit is a no-op when it was
                    // not a minimum holder, so it runs unconditionally —
                    // the single branch that remains separates the common
                    // case (only the chosen machine's balance terms move)
                    // from the rare full refresh (new maximum, or the
                    // minimum set emptied: ~15% of edges combined).
                    let bit = 1u64 << c;
                    min_mask &= !bit;
                    let new_max = nl[c] > max_nl;
                    if new_max || min_mask == 0 {
                        if new_max {
                            max_nl = nl[c];
                        }
                        if min_mask == 0 {
                            min_nl = nl[..p].iter().copied().fold(f64::INFINITY, fmin);
                            for (i, &v) in nl[..p].iter().enumerate() {
                                if v == min_nl {
                                    min_mask |= 1u64 << i;
                                }
                            }
                        }
                        refresh_bal!();
                    } else {
                        // Min and max both survive elsewhere; only the
                        // chosen machine's balance terms changed. Select
                        // rather than branch on the flat-range case — it
                        // recurs every time the loads realign, which would
                        // make a branch here chronically mispredicted.
                        let range = max_nl - min_nl;
                        let b = (max_nl - nl[c]) / range;
                        set_bal!(c, if range <= f64::EPSILON { 1.0 } else { b });
                    }
                }
                replicas.iter().map(|&m| m as u64).collect::<Vec<u64>>()
            }};
        }
        let replicas: Vec<u64> = if p <= 16 {
            stream!(u16)
        } else if p <= 32 {
            stream!(u32)
        } else {
            stream!(u64)
        };

        // The loop's replica masks and load counts *are* the assignment's
        // replication structure — hand them over instead of replaying the
        // edges.
        let edges_per_machine: Vec<usize> = loads[..p].iter().map(|&l| l as usize).collect();
        PartitionAssignment::from_parts(p, assignment, replicas, edges_per_machine, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_hash::RandomHash;
    use hetgraph_core::{Edge, EdgeList};

    fn skewed_graph() -> Graph {
        let n = 3_000u32;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(Edge::new(0, v));
            edges.push(Edge::new(v, (v * 13 + 7) % n));
            if v % 3 == 0 {
                edges.push(Edge::new(v, (v * 31 + 1) % n));
            }
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn lower_replication_than_random_hash() {
        // The whole point of the greedy heuristic.
        let g = skewed_graph();
        let w = MachineWeights::uniform(4);
        let greedy = Oblivious::new().partition(&g, &w);
        let random = RandomHash::new().partition(&g, &w);
        assert!(
            greedy.replication_factor() < random.replication_factor(),
            "greedy {} !< random {}",
            greedy.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn uniform_weights_balance_loads() {
        let g = skewed_graph();
        let a = Oblivious::new().partition(&g, &MachineWeights::uniform(4));
        for &s in &a.edge_shares() {
            assert!((s - 0.25).abs() < 0.05, "share {s}");
        }
    }

    #[test]
    fn weighted_loads_track_ccr_approximately() {
        let g = skewed_graph();
        let w = MachineWeights::from_ccr(&[1.0, 3.0]);
        let a = Oblivious::new().partition(&g, &w);
        let shares = a.edge_shares();
        // The paper notes the heuristic does not guarantee exact CCR
        // balance; allow a loose band around 0.75.
        assert!(
            shares[1] > 0.60 && shares[1] < 0.90,
            "fast machine share {} not tracking weight 0.75",
            shares[1]
        );
        assert!(shares[1] > shares[0]);
    }

    #[test]
    fn deterministic() {
        let g = skewed_graph();
        let w = MachineWeights::uniform(3);
        assert_eq!(
            Oblivious::new().partition(&g, &w),
            Oblivious::new().partition(&g, &w)
        );
    }

    #[test]
    fn all_edges_assigned() {
        let g = skewed_graph();
        let a = Oblivious::new().partition(&g, &MachineWeights::uniform(5));
        assert_eq!(a.edge_machines().len(), g.num_edges());
    }

    #[test]
    fn stream_equals_graph_partition() {
        // The history-based scorer is the partitioner most sensitive to
        // ordering: byte-equality here exercises the full balance-cache
        // and tie-break machinery through the lookahead ring.
        let g = skewed_graph();
        for weights in [
            MachineWeights::uniform(3),
            MachineWeights::uniform(17), // u32 replica-mask monomorphization
            MachineWeights::from_ccr(&[1.0, 3.0]),
        ] {
            let from_graph = Oblivious::new().partition(&g, &weights);
            let from_stream = Oblivious::new().partition_stream(
                g.num_vertices(),
                &weights,
                &mut g.edges().iter().copied(),
            );
            assert_eq!(from_graph, from_stream);
        }
    }

    #[test]
    fn tiny_streams_shorter_than_the_lookahead_ring() {
        // Fewer edges than the 8-deep prefetch ring: the drain path (ring
        // shrinking, `unwrap_or(cur)` fallback) must not perturb anything.
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 1)],
        ));
        let w = MachineWeights::uniform(4);
        let a = Oblivious::new().partition(&g, &w);
        let b = Oblivious::new().partition_stream(4, &w, &mut g.edges().iter().copied());
        assert_eq!(a, b);
        let empty = Oblivious::new().partition_stream(4, &w, &mut std::iter::empty());
        assert_eq!(empty.edge_machines().len(), 0);
    }

    #[test]
    fn double_locality_beats_balance() {
        // Once both endpoints of an edge live on a machine, that machine
        // scores locality 2 vs at most bal 1 elsewhere: the closing edge of
        // a wedge joins its endpoints if they are colocated.
        let g = Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(0, 1)],
        ));
        let a = Oblivious::new().partition(&g, &MachineWeights::uniform(4));
        // Both (0,1) edges must colocate.
        assert_eq!(a.edge_machines()[0], a.edge_machines()[2]);
    }
}
