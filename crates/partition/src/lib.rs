//! # hetgraph-partition
//!
//! Streaming graph partitioners, homogeneous and heterogeneity-aware
//! (Section II of the paper).
//!
//! PowerGraph-style systems use **vertex cuts**: *edges* are assigned to
//! machines and a vertex that touches edges on several machines is
//! replicated there (one replica is the *master*, the rest are *mirrors*
//! that must be synchronized every superstep). The partitioners differ in
//! how they trade replication factor against balance and ingest cost:
//!
//! | Partitioner | Family | Strategy |
//! |---|---|---|
//! | [`RandomHash`] | vertex cut | hash of the edge |
//! | [`Oblivious`] | vertex cut | greedy, history of endpoint placements |
//! | [`Grid`] | vertex cut | constrain candidates to a row/column intersection |
//! | [`Hybrid`] | mixed cut | edge cut for low-degree, vertex cut for hubs |
//! | [`Ginger`] | mixed cut | Hybrid + Fennel-style score reassignment |
//!
//! Every partitioner takes a [`MachineWeights`] argument: uniform weights
//! reproduce the original homogeneous algorithms; CCR-derived weights give
//! the paper's heterogeneity-aware variants; thread-count weights give the
//! prior-work baseline. This mirrors the paper's design, where
//! heterogeneity awareness is a weighting layered onto each algorithm.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment;
pub(crate) mod chunk;
pub mod delta;
pub mod ginger;
pub mod grid;
pub mod hybrid;
pub mod metrics;
pub mod oblivious;
pub mod random_hash;
pub mod traits;
pub mod weights;

pub use assignment::PartitionAssignment;
pub use delta::{AssignmentDelta, EdgeMove, MaskChange};
pub use ginger::Ginger;
pub use grid::Grid;
pub use hybrid::Hybrid;
pub use metrics::{PartitionMetrics, PartitionMetricsTracker};
pub use oblivious::Oblivious;
pub use random_hash::RandomHash;
pub use traits::{Partitioner, PartitionerKind, StreamPartitioner};
pub use weights::{assert_bitmask_capacity, MachineWeights, MAX_MACHINES};
