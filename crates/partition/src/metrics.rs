//! Partition quality metrics.

use crate::assignment::PartitionAssignment;
use crate::weights::MachineWeights;

/// Quality summary of one partition against a target weight vector.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionMetrics {
    /// PowerGraph's λ: average replicas per covered vertex.
    pub replication_factor: f64,
    /// Total mirror replicas across machines.
    pub total_mirrors: u64,
    /// Fraction of edges per machine.
    pub edge_shares: Vec<f64>,
    /// `max_i share_i / weight_i` — how overloaded the worst machine is
    /// relative to its capability share. 1.0 is a perfect weighted balance.
    pub max_normalized_load: f64,
    /// `max_i |share_i − weight_i| / weight_i` — worst relative deviation
    /// from the target distribution.
    pub weighted_balance_error: f64,
}

impl PartitionMetrics {
    /// Compute metrics for `assignment` against `weights`.
    ///
    /// # Panics
    /// Panics if machine counts mismatch.
    pub fn compute(assignment: &PartitionAssignment, weights: &MachineWeights) -> Self {
        Self::compute_with_threads(assignment, weights, 1)
    }

    /// [`PartitionMetrics::compute`] with a host thread budget: the
    /// replica-mask reduction (the only O(vertices) pass here) fans out
    /// over index-deterministic chunks with integer partial sums, so the
    /// metrics are identical at any thread count.
    ///
    /// # Panics
    /// Panics if machine counts mismatch or `host_threads == 0`.
    pub fn compute_with_threads(
        assignment: &PartitionAssignment,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> Self {
        assert_eq!(
            assignment.num_machines(),
            weights.len(),
            "assignment and weights must cover the same machines"
        );
        let shares = assignment.edge_shares();
        let mut max_norm: f64 = 0.0;
        let mut max_err: f64 = 0.0;
        for (i, &s) in shares.iter().enumerate() {
            let w = weights.as_slice()[i];
            max_norm = max_norm.max(s / w);
            max_err = max_err.max((s - w).abs() / w);
        }
        let (total, covered, mirrors) = assignment.replication_summary_with_threads(host_threads);
        let replication_factor = if covered == 0 {
            1.0
        } else {
            total as f64 / covered as f64
        };
        PartitionMetrics {
            replication_factor,
            total_mirrors: mirrors,
            edge_shares: shares,
            max_normalized_load: max_norm,
            weighted_balance_error: max_err,
        }
    }
}

impl std::fmt::Display for PartitionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rf={:.3} mirrors={} max_norm_load={:.3} balance_err={:.3}",
            self.replication_factor,
            self.total_mirrors,
            self.max_normalized_load,
            self.weighted_balance_error
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList, Graph};

    fn graph() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 0),
            ],
        ))
    }

    #[test]
    fn perfect_uniform_split() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::uniform(2));
        assert!((m.max_normalized_load - 1.0).abs() < 1e-12);
        assert!(m.weighted_balance_error < 1e-12);
    }

    #[test]
    fn skewed_split_detected() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::uniform(2));
        // Machine 0 has 75% of edges at a 50% target -> normalized load 1.5.
        assert!((m.max_normalized_load - 1.5).abs() < 1e-12);
        assert!((m.weighted_balance_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_target_changes_interpretation() {
        let g = graph();
        // 75/25 split is PERFECT for a 3:1 weight vector.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::new(&[3.0, 1.0]));
        assert!(m.weighted_balance_error < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::uniform(2));
        let s = m.to_string();
        assert!(s.contains("rf=") && s.contains("mirrors="));
    }

    #[test]
    #[should_panic(expected = "same machines")]
    fn mismatched_machines_panic() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        PartitionMetrics::compute(&a, &MachineWeights::uniform(3));
    }
}
