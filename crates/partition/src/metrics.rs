//! Partition quality metrics.

use crate::assignment::PartitionAssignment;
use crate::delta::AssignmentDelta;
use crate::weights::MachineWeights;

/// Quality summary of one partition against a target weight vector.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionMetrics {
    /// PowerGraph's λ: average replicas per covered vertex.
    pub replication_factor: f64,
    /// Total mirror replicas across machines.
    pub total_mirrors: u64,
    /// Fraction of edges per machine.
    pub edge_shares: Vec<f64>,
    /// `max_i share_i / weight_i` — how overloaded the worst machine is
    /// relative to its capability share. 1.0 is a perfect weighted balance.
    pub max_normalized_load: f64,
    /// `max_i |share_i − weight_i| / weight_i` — worst relative deviation
    /// from the target distribution.
    pub weighted_balance_error: f64,
}

impl PartitionMetrics {
    /// Compute metrics for `assignment` against `weights`.
    ///
    /// # Panics
    /// Panics if machine counts mismatch.
    pub fn compute(assignment: &PartitionAssignment, weights: &MachineWeights) -> Self {
        Self::compute_with_threads(assignment, weights, 1)
    }

    /// [`PartitionMetrics::compute`] with a host thread budget: the
    /// replica-mask reduction (the only O(vertices) pass here) fans out
    /// over index-deterministic chunks with integer partial sums, so the
    /// metrics are identical at any thread count.
    ///
    /// # Panics
    /// Panics if machine counts mismatch or `host_threads == 0`.
    pub fn compute_with_threads(
        assignment: &PartitionAssignment,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> Self {
        assert_eq!(
            assignment.num_machines(),
            weights.len(),
            "assignment and weights must cover the same machines"
        );
        let (total, covered, _) = assignment.replication_summary_with_threads(host_threads);
        from_counts(assignment.edges_per_machine(), total, covered, weights)
    }
}

/// The metrics math, shared between the from-scratch compute and the
/// incremental tracker so both produce bit-identical floats: shares are
/// integer counts divided by the integer total, and the replica summary is
/// a pair of integers, so any path that hands over the same integers gets
/// the same metrics.
fn from_counts(
    edges_per_machine: &[usize],
    total_replicas: u64,
    covered: u64,
    weights: &MachineWeights,
) -> PartitionMetrics {
    let total_edges: usize = edges_per_machine.iter().sum();
    let shares: Vec<f64> = if total_edges == 0 {
        vec![0.0; edges_per_machine.len()]
    } else {
        edges_per_machine
            .iter()
            .map(|&c| c as f64 / total_edges as f64)
            .collect()
    };
    let mut max_norm: f64 = 0.0;
    let mut max_err: f64 = 0.0;
    for (i, &s) in shares.iter().enumerate() {
        let w = weights.as_slice()[i];
        max_norm = max_norm.max(s / w);
        max_err = max_err.max((s - w).abs() / w);
    }
    let replication_factor = if covered == 0 {
        1.0
    } else {
        total_replicas as f64 / covered as f64
    };
    PartitionMetrics {
        replication_factor,
        total_mirrors: total_replicas - covered,
        edge_shares: shares,
        max_normalized_load: max_norm,
        weighted_balance_error: max_err,
    }
}

/// Incrementally maintained [`PartitionMetrics`]: seeded from one full
/// compute, then patched per migration batch from the
/// [`AssignmentDelta`] in O(|delta| + machines) — no O(V + E) recompute.
///
/// The tracker carries the integer state the metrics derive from
/// (per-machine edge counts, total replicas, covered vertices); after each
/// delta it re-derives the floats through the same shared helper the full
/// compute uses, so tracked metrics are bit-identical to a from-scratch
/// [`PartitionMetrics::compute`] of the migrated assignment.
#[derive(Debug, Clone)]
pub struct PartitionMetricsTracker {
    weights: MachineWeights,
    edges_per_machine: Vec<usize>,
    total_replicas: u64,
    covered: u64,
    metrics: PartitionMetrics,
}

impl PartitionMetricsTracker {
    /// Seed the tracker with a full metrics compute of `assignment`.
    ///
    /// # Panics
    /// Panics if machine counts mismatch.
    pub fn new(assignment: &PartitionAssignment, weights: &MachineWeights) -> Self {
        assert_eq!(
            assignment.num_machines(),
            weights.len(),
            "assignment and weights must cover the same machines"
        );
        let (total, covered, _) = assignment.replication_summary_with_threads(1);
        let edges_per_machine = assignment.edges_per_machine().to_vec();
        let metrics = from_counts(&edges_per_machine, total, covered, weights);
        PartitionMetricsTracker {
            weights: weights.clone(),
            edges_per_machine,
            total_replicas: total,
            covered,
            metrics,
        }
    }

    /// Fold one migration batch into the metrics.
    ///
    /// # Panics
    /// Panics if the delta references machines outside this tracker's
    /// range (it came from a different assignment).
    pub fn apply_delta(&mut self, delta: &AssignmentDelta) {
        for mv in &delta.moves {
            self.edges_per_machine[mv.from.index()] -= 1;
            self.edges_per_machine[mv.to.index()] += 1;
        }
        for c in &delta.mask_changes {
            let old = c.old_mask.count_ones() as u64;
            let new = c.new_mask.count_ones() as u64;
            self.total_replicas = self.total_replicas + new - old;
            self.covered = (self.covered + u64::from(c.new_mask != 0)) - u64::from(c.old_mask != 0);
        }
        if !delta.is_empty() {
            self.metrics = from_counts(
                &self.edges_per_machine,
                self.total_replicas,
                self.covered,
                &self.weights,
            );
        }
    }

    /// The current metrics.
    pub fn metrics(&self) -> &PartitionMetrics {
        &self.metrics
    }
}

impl std::fmt::Display for PartitionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rf={:.3} mirrors={} max_norm_load={:.3} balance_err={:.3}",
            self.replication_factor,
            self.total_mirrors,
            self.max_normalized_load,
            self.weighted_balance_error
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetgraph_core::{Edge, EdgeList, Graph};

    fn graph() -> Graph {
        Graph::from_edge_list(EdgeList::from_edges(
            4,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(3, 0),
            ],
        ))
    }

    #[test]
    fn perfect_uniform_split() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::uniform(2));
        assert!((m.max_normalized_load - 1.0).abs() < 1e-12);
        assert!(m.weighted_balance_error < 1e-12);
    }

    #[test]
    fn skewed_split_detected() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::uniform(2));
        // Machine 0 has 75% of edges at a 50% target -> normalized load 1.5.
        assert!((m.max_normalized_load - 1.5).abs() < 1e-12);
        assert!((m.weighted_balance_error - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_target_changes_interpretation() {
        let g = graph();
        // 75/25 split is PERFECT for a 3:1 weight vector.
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 0, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::new(&[3.0, 1.0]));
        assert!(m.weighted_balance_error < 1e-9);
    }

    #[test]
    fn display_is_compact() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let m = PartitionMetrics::compute(&a, &MachineWeights::uniform(2));
        let s = m.to_string();
        assert!(s.contains("rf=") && s.contains("mirrors="));
    }

    #[test]
    #[should_panic(expected = "same machines")]
    fn mismatched_machines_panic() {
        let g = graph();
        let a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        PartitionMetrics::compute(&a, &MachineWeights::uniform(3));
    }

    #[test]
    fn tracker_matches_full_compute_after_migrations() {
        let g = graph();
        let w = MachineWeights::new(&[3.0, 1.0]);
        let mut a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let mut tracker = PartitionMetricsTracker::new(&a, &w);
        assert_eq!(tracker.metrics(), &PartitionMetrics::compute(&a, &w));

        let delta = a.migrate_edges(&g, &[(2, 0), (0, 1)]);
        tracker.apply_delta(&delta);
        assert_eq!(tracker.metrics(), &PartitionMetrics::compute(&a, &w));

        // A second batch, stacking on the first.
        let delta = a.migrate_edges(&g, &[(1, 1), (3, 0)]);
        tracker.apply_delta(&delta);
        assert_eq!(tracker.metrics(), &PartitionMetrics::compute(&a, &w));
    }

    #[test]
    fn tracker_empty_delta_is_a_noop() {
        let g = graph();
        let w = MachineWeights::uniform(2);
        let mut a = PartitionAssignment::from_edge_machines(&g, 2, vec![0, 0, 1, 1]);
        let mut tracker = PartitionMetricsTracker::new(&a, &w);
        let before = tracker.metrics().clone();
        let delta = a.migrate_edges(&g, &[(0, 0)]);
        tracker.apply_delta(&delta);
        assert_eq!(tracker.metrics(), &before);
    }
}
