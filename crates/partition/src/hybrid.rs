//! Hybrid (mixed-cut) partitioning (Section II-C; PowerLyra).
//!
//! Two phases:
//!
//! 1. **Edge cut for everyone**: every edge is assigned by a (weighted)
//!    hash of its *target* vertex, so all in-edges of a vertex colocate
//!    with it and low-degree vertices get zero in-edge mirrors.
//! 2. **Vertex cut for hubs**: after the first pass the in-degree of every
//!    vertex is known; vertices whose in-degree exceeds a threshold have
//!    their in-edges re-assigned by (weighted) hash of the *source*
//!    vertex, bounding a hub's replicas by the number of machines instead
//!    of by its degree.
//!
//! The heterogeneity-aware weighting is "exactly the same as in the Random
//! Hash method" (paper): both hash picks go through the CCR-weighted
//! threshold table.

use hetgraph_core::rng::{hash64, hash_combine};
use hetgraph_core::Graph;

use crate::assignment::PartitionAssignment;
use crate::chunk::chunked_map;
use crate::traits::Partitioner;
use crate::weights::{assert_bitmask_capacity, MachineWeights};

/// Default high-degree threshold (PowerLyra's default).
pub const DEFAULT_THRESHOLD: usize = 100;

/// Salt for the target-vertex hash (phase 1).
pub(crate) const TARGET_SALT: u64 = 0x6879_6272_6964_0001;
/// Salt for the source-vertex hash (phase 2).
pub(crate) const SOURCE_SALT: u64 = 0x6879_6272_6964_0002;

/// Mixed-cut Hybrid partitioner.
#[derive(Debug, Clone)]
pub struct Hybrid {
    threshold: usize,
}

impl Hybrid {
    /// Default construction (threshold 100).
    pub fn new() -> Self {
        Hybrid {
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Custom high-degree threshold.
    pub fn with_threshold(threshold: usize) -> Self {
        Hybrid { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl Default for Hybrid {
    fn default() -> Self {
        Self::new()
    }
}

/// Weighted hash of a vertex id with a salt.
pub(crate) fn vertex_pick(weights: &MachineWeights, v: u32, salt: u64) -> u16 {
    weights.pick(hash64(hash_combine(v as u64, salt))).0
}

/// Per-vertex pick table for `salt`, computed once so the per-edge loop is
/// two array lookups instead of two hash-plus-threshold scans. Pure per
/// vertex, so the chunked fan-out is byte-identical at any thread count.
pub(crate) fn pick_table(
    weights: &MachineWeights,
    n: usize,
    salt: u64,
    host_threads: usize,
) -> Vec<u16> {
    chunked_map(n, host_threads, |v| vertex_pick(weights, v as u32, salt))
}

impl Partitioner for Hybrid {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment {
        self.partition_with_threads(graph, weights, 1)
    }

    fn partition_with_threads(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> PartitionAssignment {
        assert!(host_threads > 0, "need at least one host thread");
        assert_bitmask_capacity(weights.len());
        let n = graph.num_vertices() as usize;
        let src_pick = pick_table(weights, n, SOURCE_SALT, host_threads);
        let dst_pick = pick_table(weights, n, TARGET_SALT, host_threads);
        let edges = graph.edges();
        let assignment: Vec<u16> = chunked_map(edges.len(), host_threads, |i| {
            let e = &edges[i];
            // Phase 1 + 2 fused: the in-degree is available from the
            // already-built in-CSR, which is exactly the information
            // the streaming system has after its first pass.
            if graph.in_degree(e.dst) > self.threshold {
                src_pick[e.src as usize]
            } else {
                dst_pick[e.dst as usize]
            }
        });
        PartitionAssignment::from_edge_machines_with_threads(
            graph,
            weights.len(),
            assignment,
            host_threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_hash::RandomHash;
    use hetgraph_core::{Edge, EdgeList};

    /// Many low-degree vertices (each with a handful of in-edges) plus one
    /// mega-hub — the regime where mixed cuts beat pure vertex cuts.
    fn hub_graph() -> Graph {
        let n = 4_000u32;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(Edge::new(v, 0)); // everyone points at hub 0
            for k in 0..4u32 {
                // four in-edges per low-degree vertex
                edges.push(Edge::new((v * 17 + 3 + k * 37) % n, v));
            }
        }
        Graph::from_edge_list(EdgeList::from_edges(n, edges))
    }

    #[test]
    fn low_degree_vertices_have_no_in_edge_split() {
        let g = hub_graph();
        let a = Hybrid::new().partition(&g, &MachineWeights::uniform(4));
        // Every low-degree vertex's in-edges are on one machine: the
        // machine hashed from the target. So for each edge to a low-degree
        // target, the assignment equals the target's hash-pick.
        let w = MachineWeights::uniform(4);
        for (i, e) in g.edges().iter().enumerate() {
            if g.in_degree(e.dst) <= DEFAULT_THRESHOLD {
                assert_eq!(
                    a.edge_machines()[i],
                    vertex_pick(&w, e.dst, TARGET_SALT),
                    "low-degree in-edges must follow the target hash"
                );
            }
        }
    }

    #[test]
    fn hub_in_edges_spread_by_source() {
        let g = hub_graph();
        let a = Hybrid::new().partition(&g, &MachineWeights::uniform(4));
        // Hub 0 has ~4k in-edges; they must be spread across machines.
        let mut machines = std::collections::HashSet::new();
        for (i, e) in g.edges().iter().enumerate() {
            if e.dst == 0 {
                machines.insert(a.edge_machines()[i]);
            }
        }
        assert_eq!(machines.len(), 4, "hub edges should reach every machine");
    }

    #[test]
    fn lower_replication_than_random_on_low_degree_graph() {
        let g = hub_graph();
        let w = MachineWeights::uniform(8);
        let hybrid = Hybrid::new().partition(&g, &w);
        let random = RandomHash::new().partition(&g, &w);
        assert!(
            hybrid.replication_factor() < random.replication_factor(),
            "hybrid {} !< random {}",
            hybrid.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn weighted_assignment_tracks_ccr() {
        let g = hub_graph();
        let w = MachineWeights::from_ccr(&[1.0, 3.0]);
        let a = Hybrid::new().partition(&g, &w);
        let shares = a.edge_shares();
        assert!(
            (shares[1] - 0.75).abs() < 0.08,
            "fast machine share {} vs target 0.75",
            shares[1]
        );
    }

    #[test]
    fn threshold_zero_degenerates_to_source_hash() {
        let g = hub_graph();
        let w = MachineWeights::uniform(3);
        let a = Hybrid::with_threshold(0).partition(&g, &w);
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(a.edge_machines()[i], vertex_pick(&w, e.src, SOURCE_SALT));
        }
    }

    #[test]
    fn huge_threshold_degenerates_to_target_hash() {
        let g = hub_graph();
        let w = MachineWeights::uniform(3);
        let a = Hybrid::with_threshold(usize::MAX).partition(&g, &w);
        for (i, e) in g.edges().iter().enumerate() {
            assert_eq!(a.edge_machines()[i], vertex_pick(&w, e.dst, TARGET_SALT));
        }
    }

    #[test]
    fn deterministic() {
        let g = hub_graph();
        let w = MachineWeights::uniform(4);
        assert_eq!(
            Hybrid::new().partition(&g, &w),
            Hybrid::new().partition(&g, &w)
        );
    }
}
