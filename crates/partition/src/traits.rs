//! The partitioner interface.

use hetgraph_core::Graph;

use crate::assignment::PartitionAssignment;
use crate::weights::MachineWeights;

/// A streaming edge partitioner.
///
/// Implementations must be deterministic: the same `(graph, weights)` pair
/// always yields the same assignment (experiment reproducibility depends on
/// this).
pub trait Partitioner {
    /// Human-readable algorithm name (used in figures and reports).
    fn name(&self) -> &'static str;

    /// Partition `graph` across `weights.len()` machines, distributing
    /// edges proportionally to the weights (uniform weights = the original
    /// homogeneous algorithm).
    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment;

    /// [`Partitioner::partition`] with a host thread budget.
    ///
    /// The determinism contract extends across thread counts: the returned
    /// assignment must be byte-identical at any `host_threads`, so the
    /// experiment harness may hand whatever budget is left over to the
    /// partitioner without perturbing results. Inherently sequential
    /// partitioners (history-based greedy scorers) default to ignoring the
    /// budget; embarrassingly parallel ones (hash-based) override this
    /// with index-deterministic chunked fan-out.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    fn partition_with_threads(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> PartitionAssignment {
        assert!(host_threads > 0, "need at least one host thread");
        self.partition(graph, weights)
    }
}

/// The five algorithms evaluated in the paper, as a value type for
/// iteration in harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PartitionerKind {
    /// Random hash of the edge (vertex cut; PowerGraph default).
    RandomHash,
    /// Greedy history-based placement (vertex cut).
    Oblivious,
    /// Constrained row/column intersection (vertex cut).
    Grid,
    /// Two-phase low/high-degree split (mixed cut; PowerLyra).
    Hybrid,
    /// Hybrid + Fennel-style scoring for low-degree vertices (mixed cut).
    Ginger,
}

impl PartitionerKind {
    /// All five, in the paper's figure order.
    pub const ALL: [PartitionerKind; 5] = [
        PartitionerKind::RandomHash,
        PartitionerKind::Oblivious,
        PartitionerKind::Grid,
        PartitionerKind::Hybrid,
        PartitionerKind::Ginger,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::RandomHash => "random",
            PartitionerKind::Oblivious => "oblivious",
            PartitionerKind::Grid => "grid",
            PartitionerKind::Hybrid => "hybrid",
            PartitionerKind::Ginger => "ginger",
        }
    }

    /// Instantiate with default parameters.
    pub fn build(self) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::RandomHash => Box::new(crate::RandomHash::new()),
            PartitionerKind::Oblivious => Box::new(crate::Oblivious::new()),
            PartitionerKind::Grid => Box::new(crate::Grid::new()),
            PartitionerKind::Hybrid => Box::new(crate::Hybrid::new()),
            PartitionerKind::Ginger => Box::new(crate::Ginger::new()),
        }
    }
}

impl std::fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            PartitionerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn build_matches_kind_name() {
        for kind in PartitionerKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(PartitionerKind::Hybrid.to_string(), "hybrid");
    }

    #[test]
    #[should_panic(expected = "at most 64 machines")]
    fn sixty_five_machine_weights_rejected() {
        // 65 machines would shift past bit 63 of the u64 replica masks.
        // `MachineWeights` refuses to construct, so no partitioner can be
        // handed an over-capacity cluster; the per-partitioner
        // `assert_bitmask_capacity` calls are defense-in-depth behind
        // this boundary.
        crate::MachineWeights::uniform(65);
    }
}
