//! The partitioner interface.

use hetgraph_core::metrics::MetricsRegistry;
use hetgraph_core::obs::{Recorder, TimeDomain, TraceEvent};
use hetgraph_core::{Edge, Graph};

use crate::assignment::PartitionAssignment;
use crate::weights::MachineWeights;

/// A streaming edge partitioner.
///
/// Implementations must be deterministic: the same `(graph, weights)` pair
/// always yields the same assignment (experiment reproducibility depends on
/// this).
pub trait Partitioner {
    /// Human-readable algorithm name (used in figures and reports).
    fn name(&self) -> &'static str;

    /// Partition `graph` across `weights.len()` machines, distributing
    /// edges proportionally to the weights (uniform weights = the original
    /// homogeneous algorithm).
    fn partition(&self, graph: &Graph, weights: &MachineWeights) -> PartitionAssignment;

    /// [`Partitioner::partition`] with a host thread budget.
    ///
    /// The determinism contract extends across thread counts: the returned
    /// assignment must be byte-identical at any `host_threads`, so the
    /// experiment harness may hand whatever budget is left over to the
    /// partitioner without perturbing results. Inherently sequential
    /// partitioners (history-based greedy scorers) default to ignoring the
    /// budget; embarrassingly parallel ones (hash-based) override this
    /// with index-deterministic chunked fan-out.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    fn partition_with_threads(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
    ) -> PartitionAssignment {
        assert!(host_threads > 0, "need at least one host thread");
        self.partition(graph, weights)
    }

    /// Greedy scoring scans this partitioner performs on `graph`: the
    /// number of candidate-machine scans its streaming greedy loop runs
    /// (one per placed edge for Oblivious, one per low-degree vertex for
    /// Ginger). `None` for partitioners with no greedy loop.
    fn greedy_scans(&self, _graph: &Graph) -> Option<u64> {
        None
    }

    /// [`Partitioner::partition_with_threads`] wrapped in observability:
    /// records a wall-clock span plus edge-throughput (and, where the
    /// algorithm has one, greedy-scan) counters to `recorder`. With a
    /// disabled recorder this is exactly `partition_with_threads` — the
    /// assignment is identical either way.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    fn partition_recorded(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
        recorder: &dyn Recorder,
    ) -> PartitionAssignment {
        if !recorder.enabled() {
            return self.partition_with_threads(graph, weights, host_threads);
        }
        let t0 = recorder.now_us();
        let assignment = self.partition_with_threads(graph, weights, host_threads);
        let t1 = recorder.now_us();
        let name = self.name();
        recorder.record(TraceEvent::wall_span(
            format!("partition/{name}"),
            "partition",
            0,
            t0,
            t1 - t0,
        ));
        let edges = graph.num_edges() as f64;
        recorder.record(TraceEvent::wall_counter("partition_edges", 0, t1, edges));
        let dur_s = (t1 - t0) / 1e6;
        if dur_s > 0.0 {
            recorder.record(TraceEvent::wall_counter(
                "partition_edges_per_sec",
                0,
                t1,
                edges / dur_s,
            ));
        }
        if let Some(scans) = self.greedy_scans(graph) {
            recorder.record(TraceEvent::wall_counter(
                "partition_greedy_scans",
                0,
                t1,
                scans as f64,
            ));
        }
        assignment
    }

    /// [`Partitioner::partition_recorded`] with aggregated metrics on top:
    /// per-algorithm edge and greedy-scan counters (sim domain — both are
    /// deterministic properties of the input, so they belong in the
    /// byte-stable snapshot), plus a wall-clock duration histogram and an
    /// edge-throughput gauge (wall domain — host-dependent). With both
    /// sinks disabled this is exactly `partition_with_threads`.
    ///
    /// # Panics
    /// Panics if `host_threads == 0`.
    fn partition_instrumented(
        &self,
        graph: &Graph,
        weights: &MachineWeights,
        host_threads: usize,
        recorder: &dyn Recorder,
        metrics: &MetricsRegistry,
    ) -> PartitionAssignment {
        if !metrics.enabled() {
            return self.partition_recorded(graph, weights, host_threads, recorder);
        }
        let t0 = std::time::Instant::now();
        let assignment = self.partition_recorded(graph, weights, host_threads, recorder);
        let wall_s = t0.elapsed().as_secs_f64();
        let name = self.name();
        metrics
            .counter(&format!("partition/{name}/edges_total"), TimeDomain::Sim)
            .add(graph.num_edges() as u64);
        if let Some(scans) = self.greedy_scans(graph) {
            metrics
                .counter(
                    &format!("partition/{name}/greedy_scans_total"),
                    TimeDomain::Sim,
                )
                .add(scans);
        }
        metrics
            .histogram(&format!("partition/{name}/wall_s"), TimeDomain::Wall)
            .observe(wall_s);
        if wall_s > 0.0 {
            metrics
                .gauge(&format!("partition/{name}/edges_per_sec"), TimeDomain::Wall)
                .set(graph.num_edges() as f64 / wall_s);
        }
        assignment
    }
}

/// A partitioner that can consume an edge *stream* — one pass, in edge
/// order, without a materialized [`Graph`] — so ingestion RSS stays
/// bounded by the per-vertex state (replica masks) plus the assignment
/// being produced, never by the edge list.
///
/// The contract is strict equality: for the same edges in the same order,
/// `partition_stream` must return an assignment byte-identical to
/// [`Partitioner::partition`] over the materialized graph. Only the
/// single-pass algorithms implement this — Random, Grid, and Oblivious
/// already score edge-at-a-time; Hybrid and Ginger need degree counts
/// before placement and stay graph-fed.
pub trait StreamPartitioner: Partitioner {
    /// Partition `edges` (over vertices `0..num_vertices`) across
    /// `weights.len()` machines in one pass.
    ///
    /// # Panics
    /// Panics if `weights.len()` exceeds the 64-machine bitmask capacity
    /// or an edge references a vertex `>= num_vertices`.
    fn partition_stream(
        &self,
        num_vertices: u32,
        weights: &MachineWeights,
        edges: &mut dyn Iterator<Item = Edge>,
    ) -> PartitionAssignment;
}

/// The five algorithms evaluated in the paper, as a value type for
/// iteration in harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PartitionerKind {
    /// Random hash of the edge (vertex cut; PowerGraph default).
    RandomHash,
    /// Greedy history-based placement (vertex cut).
    Oblivious,
    /// Constrained row/column intersection (vertex cut).
    Grid,
    /// Two-phase low/high-degree split (mixed cut; PowerLyra).
    Hybrid,
    /// Hybrid + Fennel-style scoring for low-degree vertices (mixed cut).
    Ginger,
}

impl PartitionerKind {
    /// All five, in the paper's figure order.
    pub const ALL: [PartitionerKind; 5] = [
        PartitionerKind::RandomHash,
        PartitionerKind::Oblivious,
        PartitionerKind::Grid,
        PartitionerKind::Hybrid,
        PartitionerKind::Ginger,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PartitionerKind::RandomHash => "random",
            PartitionerKind::Oblivious => "oblivious",
            PartitionerKind::Grid => "grid",
            PartitionerKind::Hybrid => "hybrid",
            PartitionerKind::Ginger => "ginger",
        }
    }

    /// Instantiate with default parameters.
    pub fn build(self) -> Box<dyn Partitioner> {
        match self {
            PartitionerKind::RandomHash => Box::new(crate::RandomHash::new()),
            PartitionerKind::Oblivious => Box::new(crate::Oblivious::new()),
            PartitionerKind::Grid => Box::new(crate::Grid::new()),
            PartitionerKind::Hybrid => Box::new(crate::Hybrid::new()),
            PartitionerKind::Ginger => Box::new(crate::Ginger::new()),
        }
    }

    /// Instantiate as a streaming partitioner, or `None` for the
    /// algorithms that need the whole graph before placing (Hybrid and
    /// Ginger count degrees first).
    pub fn build_stream(self) -> Option<Box<dyn StreamPartitioner>> {
        match self {
            PartitionerKind::RandomHash => Some(Box::new(crate::RandomHash::new())),
            PartitionerKind::Oblivious => Some(Box::new(crate::Oblivious::new())),
            PartitionerKind::Grid => Some(Box::new(crate::Grid::new())),
            PartitionerKind::Hybrid | PartitionerKind::Ginger => None,
        }
    }
}

impl std::fmt::Display for PartitionerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            PartitionerKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn build_matches_kind_name() {
        for kind in PartitionerKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(PartitionerKind::Hybrid.to_string(), "hybrid");
    }

    #[test]
    fn partition_recorded_matches_plain_and_emits_counters() {
        use hetgraph_core::obs::{TraceRecorder, NOOP};
        use hetgraph_core::{Edge, EdgeList};
        let n = 200u32;
        let edges: Vec<Edge> = (0..n).map(|v| Edge::new(v, (v * 7 + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let w = crate::MachineWeights::uniform(4);
        for kind in PartitionerKind::ALL {
            let p = kind.build();
            let plain = p.partition_with_threads(&g, &w, 1);
            let noop = p.partition_recorded(&g, &w, 1, &NOOP);
            assert_eq!(plain.edge_machines(), noop.edge_machines(), "{kind}");
            let rec = TraceRecorder::new();
            let traced = p.partition_recorded(&g, &w, 1, &rec);
            assert_eq!(plain.edge_machines(), traced.edge_machines(), "{kind}");
            let events = rec.take_events();
            assert!(
                events.iter().any(|e| e.name == format!("partition/{kind}")),
                "{kind} span"
            );
            let edges_counter = events
                .iter()
                .find(|e| e.name == "partition_edges")
                .unwrap_or_else(|| panic!("{kind} edge counter"));
            assert_eq!(edges_counter.value, g.num_edges() as f64);
        }
    }

    #[test]
    fn partition_instrumented_matches_plain_and_aggregates() {
        use hetgraph_core::metrics::{MetricsRegistry, NOOP as METRICS_NOOP};
        use hetgraph_core::obs::NOOP;
        use hetgraph_core::{Edge, EdgeList};
        let n = 200u32;
        let edges: Vec<Edge> = (0..n).map(|v| Edge::new(v, (v * 7 + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let w = crate::MachineWeights::uniform(4);
        for kind in PartitionerKind::ALL {
            let p = kind.build();
            let plain = p.partition_with_threads(&g, &w, 1);
            let noop = p.partition_instrumented(&g, &w, 1, &NOOP, &METRICS_NOOP);
            assert_eq!(plain.edge_machines(), noop.edge_machines(), "{kind}");
            let m = MetricsRegistry::new();
            let inst = p.partition_instrumented(&g, &w, 1, &NOOP, &m);
            assert_eq!(plain.edge_machines(), inst.edge_machines(), "{kind}");
            let snap = m.snapshot();
            assert_eq!(
                snap.counter_value(&format!("partition/{kind}/edges_total")),
                Some(g.num_edges() as u64),
                "{kind}"
            );
            assert_eq!(
                snap.counter_value(&format!("partition/{kind}/greedy_scans_total")),
                p.greedy_scans(&g),
                "{kind}"
            );
            // The wall histogram saw exactly one partition call, and the
            // sim-domain snapshot carries only the deterministic counters.
            let h = snap.histogram(&format!("partition/{kind}/wall_s")).unwrap();
            assert_eq!(h.count(), 1, "{kind}");
            let sim = m.snapshot_sim();
            assert!(sim.histograms.is_empty(), "{kind}");
            assert!(sim
                .counter_value(&format!("partition/{kind}/edges_total"))
                .is_some());
        }
    }

    #[test]
    fn greedy_scan_counts_follow_the_algorithm() {
        use hetgraph_core::{Edge, EdgeList};
        let n = 100u32;
        let edges: Vec<Edge> = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        // Hash partitioners have no greedy loop.
        assert_eq!(crate::RandomHash::new().greedy_scans(&g), None);
        assert_eq!(crate::Grid::new().greedy_scans(&g), None);
        assert_eq!(crate::Hybrid::new().greedy_scans(&g), None);
        // Oblivious scans once per edge.
        assert_eq!(
            crate::Oblivious::new().greedy_scans(&g),
            Some(g.num_edges() as u64)
        );
        // Every vertex of this ring has in-degree 1 ≤ threshold, so
        // Ginger scores all of them.
        assert_eq!(crate::Ginger::new().greedy_scans(&g), Some(n as u64));
    }

    #[test]
    #[should_panic(expected = "at most 64 machines")]
    fn sixty_five_machine_weights_rejected() {
        // 65 machines would shift past bit 63 of the u64 replica masks.
        // `MachineWeights` refuses to construct, so no partitioner can be
        // handed an over-capacity cluster; the per-partitioner
        // `assert_bitmask_capacity` calls are defense-in-depth behind
        // this boundary.
        crate::MachineWeights::uniform(65);
    }
}
