//! Index-deterministic chunked fan-out for per-edge / per-vertex maps.
//!
//! The embarrassingly parallel partitioners (hash-based picks, pick-table
//! precomputes) fan their pure index maps over
//! [`hetgraph_core::par::scheduled`] in fixed-width chunks. The chunk
//! width is a constant — *not* derived from the thread budget — and the
//! chunks are concatenated in index order, so the output vector is
//! byte-identical at any thread count (the crate-wide determinism
//! contract, see [`crate::Partitioner::partition_with_threads`]).

use hetgraph_core::par;

/// Fixed chunk width. Large enough to amortize scheduling, small enough
/// that skewed tails self-balance across workers.
pub(crate) const CHUNK: usize = 8192;

/// Map `f` over `0..len` with `host_threads` workers, returning the
/// results in index order. With one thread (or one chunk) this is a plain
/// serial map — no spawn cost on the reference path.
pub(crate) fn chunked_map<T: Send>(
    len: usize,
    host_threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if host_threads <= 1 || len <= CHUNK {
        return (0..len).map(f).collect();
    }
    let tasks = len.div_ceil(CHUNK);
    let chunks = par::scheduled(tasks, host_threads, |t| {
        let lo = t * CHUNK;
        let hi = (lo + CHUNK).min(len);
        (lo..hi).map(&f).collect::<Vec<T>>()
    });
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_at_any_thread_count() {
        let reference: Vec<u64> = (0..CHUNK * 3 + 17)
            .map(|i| (i as u64).wrapping_mul(31))
            .collect();
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                chunked_map(reference.len(), threads, |i| (i as u64).wrapping_mul(31)),
                reference
            );
        }
    }

    #[test]
    fn empty_and_small_inputs() {
        assert_eq!(chunked_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(chunked_map(3, 4, |i| i), vec![0, 1, 2]);
    }
}
