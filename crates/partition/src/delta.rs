//! Incremental partition edits.
//!
//! A [`PartitionAssignment`](crate::PartitionAssignment) is built once by a
//! partitioner, but an online rebalancer edits it *mid-run*: a batch of
//! edges moves from a straggling machine to one with slack, between two
//! supersteps. [`AssignmentDelta`] is the exact record of such an edit —
//! which edges moved and which vertices' replica sets (and possibly
//! masters) changed as a consequence. Consumers patch their derived state
//! from the delta in O(|delta|) instead of rebuilding O(E) structures:
//! `DistributedGraph::apply_delta` patches its CSR slot lanes, and
//! [`PartitionMetricsTracker`](crate::PartitionMetricsTracker) updates the
//! partition quality metrics.

use hetgraph_core::{MachineId, VertexId};

/// One edge reassigned from one machine to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeMove {
    /// Index of the edge in graph edge order.
    pub edge: usize,
    /// Machine the edge left.
    pub from: MachineId,
    /// Machine the edge landed on.
    pub to: MachineId,
}

/// One vertex whose replica set changed as a consequence of edge moves.
///
/// The new master is re-picked with the same deterministic hash rule the
/// full build uses, so a migrated assignment stays exactly equal to a
/// from-scratch rebuild of the same per-edge machine vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskChange {
    /// The vertex whose replica set changed.
    pub vertex: VertexId,
    /// Replica bit mask before the migration batch.
    pub old_mask: u64,
    /// Replica bit mask after the migration batch.
    pub new_mask: u64,
    /// Master machine before the migration batch.
    pub old_master: MachineId,
    /// Master machine after the migration batch.
    pub new_master: MachineId,
}

/// Everything one call to
/// [`PartitionAssignment::migrate_edges`](crate::PartitionAssignment::migrate_edges)
/// changed: the applied edge moves (no-op entries are dropped) and the
/// induced replica-set changes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AssignmentDelta {
    /// Edge moves actually applied, in batch order.
    pub moves: Vec<EdgeMove>,
    /// Vertices whose replica mask (and possibly master) changed, in
    /// ascending vertex order.
    pub mask_changes: Vec<MaskChange>,
}

impl AssignmentDelta {
    /// Whether the batch changed anything at all.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Number of edges that actually moved.
    pub fn edges_moved(&self) -> usize {
        self.moves.len()
    }

    /// Net change in total replica count (mirrors gained minus mirrors
    /// lost) across the batch.
    pub fn replica_delta(&self) -> i64 {
        self.mask_changes
            .iter()
            .map(|c| c.new_mask.count_ones() as i64 - c.old_mask.count_ones() as i64)
            .sum()
    }

    /// Edges moved per `(from, to)` machine pair, ascending by pair.
    /// Migration traffic between distinct pairs flows concurrently, so
    /// cost models price each pair's volume separately.
    pub fn moves_per_pair(&self) -> Vec<(MachineId, MachineId, usize)> {
        let mut pairs: Vec<(MachineId, MachineId, usize)> = Vec::new();
        for mv in &self.moves {
            match pairs
                .iter_mut()
                .find(|(f, t, _)| *f == mv.from && *t == mv.to)
            {
                Some((_, _, n)) => *n += 1,
                None => pairs.push((mv.from, mv.to, 1)),
            }
        }
        pairs.sort_unstable_by_key(|&(f, t, _)| (f, t));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delta_reports_empty() {
        let d = AssignmentDelta::default();
        assert!(d.is_empty());
        assert_eq!(d.edges_moved(), 0);
        assert_eq!(d.replica_delta(), 0);
        assert!(d.moves_per_pair().is_empty());
    }

    #[test]
    fn pair_aggregation_groups_and_sorts() {
        let d = AssignmentDelta {
            moves: vec![
                EdgeMove {
                    edge: 3,
                    from: MachineId(1),
                    to: MachineId(0),
                },
                EdgeMove {
                    edge: 0,
                    from: MachineId(0),
                    to: MachineId(1),
                },
                EdgeMove {
                    edge: 7,
                    from: MachineId(1),
                    to: MachineId(0),
                },
            ],
            mask_changes: vec![],
        };
        assert_eq!(d.edges_moved(), 3);
        assert_eq!(
            d.moves_per_pair(),
            vec![
                (MachineId(0), MachineId(1), 1),
                (MachineId(1), MachineId(0), 2)
            ]
        );
    }

    #[test]
    fn replica_delta_counts_bits() {
        let d = AssignmentDelta {
            moves: vec![EdgeMove {
                edge: 0,
                from: MachineId(0),
                to: MachineId(1),
            }],
            mask_changes: vec![
                MaskChange {
                    vertex: 0,
                    old_mask: 0b01,
                    new_mask: 0b11, // gained a mirror
                    old_master: MachineId(0),
                    new_master: MachineId(0),
                },
                MaskChange {
                    vertex: 1,
                    old_mask: 0b11,
                    new_mask: 0b10, // lost a mirror
                    old_master: MachineId(0),
                    new_master: MachineId(1),
                },
            ],
        };
        assert_eq!(d.replica_delta(), 0);
    }
}
