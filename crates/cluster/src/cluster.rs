//! Clusters: ordered sets of machines with group structure.

use std::collections::BTreeMap;

use hetgraph_core::MachineId;

use crate::machine::MachineSpec;

/// An ordered collection of machines forming one cluster.
///
/// Machine order matters: partition index `i` is executed by machine `i`.
/// Machines sharing a spec `name` form one *group* — the paper profiles one
/// machine per group ("all C4.xlarge machines within the deployed cluster
/// should be treated as one group, but only one of them needs to be
/// profiled").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cluster {
    machines: Vec<MachineSpec>,
}

impl Cluster {
    /// Create a cluster.
    ///
    /// # Panics
    /// Panics if empty or if any spec is invalid.
    pub fn new(machines: Vec<MachineSpec>) -> Self {
        assert!(!machines.is_empty(), "a cluster needs at least one machine");
        for m in &machines {
            m.assert_valid();
        }
        Cluster { machines }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The machines in partition order.
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// Machine by id.
    pub fn machine(&self, id: MachineId) -> &MachineSpec {
        &self.machines[id.index()]
    }

    /// Human-readable per-machine labels in partition order
    /// (`"m3 (xeon_l)"`), for report tables and metric legends where a
    /// bare track index would force readers back to the cluster spec.
    pub fn machine_labels(&self) -> Vec<String> {
        self.machines
            .iter()
            .enumerate()
            .map(|(i, m)| format!("m{i} ({})", m.name))
            .collect()
    }

    /// All machine ids in order.
    pub fn ids(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machines.len()).map(MachineId::from)
    }

    /// Group structure: spec name → member machine ids. One representative
    /// per group is profiled; its CCR applies to every member.
    pub fn groups(&self) -> BTreeMap<String, Vec<MachineId>> {
        let mut groups: BTreeMap<String, Vec<MachineId>> = BTreeMap::new();
        for (i, m) in self.machines.iter().enumerate() {
            groups
                .entry(m.name.clone())
                .or_default()
                .push(MachineId::from(i));
        }
        groups
    }

    /// One representative machine id per group, in group-name order.
    pub fn group_representatives(&self) -> Vec<MachineId> {
        self.groups().into_values().map(|ids| ids[0]).collect()
    }

    /// Whether every machine has the same spec name (a homogeneous cluster;
    /// prior work's assumption).
    pub fn is_homogeneous(&self) -> bool {
        self.groups().len() <= 1
    }

    /// The prior-work capability estimate: computing threads per machine
    /// (LeBeane et al. — "number of hardware computing slots/threads",
    /// after reserving two for communication).
    pub fn thread_count_weights(&self) -> Vec<f64> {
        self.machines
            .iter()
            .map(|m| m.computing_threads() as f64)
            .collect()
    }

    /// The Case 1 cluster: one m4.2xlarge + one c4.2xlarge (same thread
    /// counts; heterogeneous only microarchitecturally).
    pub fn case1() -> Self {
        Cluster::new(vec![
            crate::catalog::m4_2xlarge(),
            crate::catalog::c4_2xlarge(),
        ])
    }

    /// The Case 2 cluster: local Xeon S (4 HW threads) + Xeon L (12 HW
    /// threads) at the same frequency.
    pub fn case2() -> Self {
        Cluster::new(vec![crate::catalog::xeon_s(), crate::catalog::xeon_l()])
    }

    /// The Case 3 cluster: tiny ARM-like node (4 threads @ 1.8 GHz) + Xeon
    /// L (12 threads @ 2.5 GHz) — two frequency domains.
    pub fn case3() -> Self {
        Cluster::new(vec![crate::catalog::tiny_arm(), crate::catalog::xeon_l()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn grouping_by_name() {
        let c = Cluster::new(vec![
            catalog::c4_xlarge(),
            catalog::c4_xlarge(),
            catalog::c4_2xlarge(),
        ]);
        let groups = c.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups["c4.xlarge"].len(), 2);
        assert_eq!(c.group_representatives().len(), 2);
        assert!(!c.is_homogeneous());
    }

    #[test]
    fn homogeneous_detection() {
        let c = Cluster::new(vec![catalog::c4_xlarge(), catalog::c4_xlarge()]);
        assert!(c.is_homogeneous());
    }

    #[test]
    fn case_clusters_match_paper() {
        let c1 = Cluster::case1();
        assert_eq!(c1.machines()[0].name, "m4.2xlarge");
        assert_eq!(c1.machines()[1].name, "c4.2xlarge");
        // Case 1 looks homogeneous to prior work: equal thread counts.
        assert_eq!(
            c1.thread_count_weights(),
            vec![6.0, 6.0],
            "prior work sees case 1 as homogeneous"
        );

        let c2 = Cluster::case2();
        assert_eq!(c2.thread_count_weights(), vec![2.0, 10.0]);

        let c3 = Cluster::case3();
        assert_eq!(c3.machines()[0].name, "tiny_arm");
        assert!(c3.machines()[0].freq_ghz < c3.machines()[1].freq_ghz);
    }

    #[test]
    fn machine_lookup_by_id() {
        let c = Cluster::case2();
        assert_eq!(c.machine(hetgraph_core::MachineId(1)).name, "xeon_l");
        assert_eq!(c.ids().count(), 2);
    }

    #[test]
    fn machine_labels_follow_partition_order() {
        let c = Cluster::case3();
        assert_eq!(c.machine_labels(), vec!["m0 (tiny_arm)", "m1 (xeon_l)"]);
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_cluster_rejected() {
        Cluster::new(vec![]);
    }
}
