//! Machine specifications.

/// Specification of one machine (physical server or cloud instance).
///
/// The fields split into three groups:
///
/// * **Visible configuration** — what the prior-work estimator reads:
///   [`MachineSpec::hw_threads`] and the PowerGraph convention of reserving
///   two threads for communication ([`MachineSpec::reserved_threads`]).
/// * **Microarchitectural ground truth** — what actually determines graph
///   processing speed in the performance model: frequency, per-core IPC,
///   memory bandwidth. The prior-work estimator cannot see these; the
///   paper's proxy profiling measures their combined effect.
/// * **Operations data** — power envelope (for the energy model) and the
///   hourly price (for the cost study; `None` for physical machines, which
///   Table I lists as "N/A").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MachineSpec {
    /// Type name ("c4.2xlarge", "xeon_l", …). Machines with equal names
    /// form one profiling group.
    pub name: String,
    /// Hardware threads (Table I "HW Threads").
    pub hw_threads: u32,
    /// Threads reserved for communication (2 in PowerGraph and in the
    /// paper's prior-work formula `(4-2):(8-2)`).
    pub reserved_threads: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Per-core architectural factor: sustained giga-ops per GHz per
    /// thread, normalized so a Haswell-class x86 core is 1.0.
    pub ipc: f64,
    /// Sustained memory bandwidth in GB/s (shared across threads).
    pub mem_bw_gbps: f64,
    /// NIC bandwidth in Gb/s.
    pub nic_gbps: f64,
    /// Idle (static) power draw in watts.
    pub idle_power_w: f64,
    /// Peak power draw at full utilization in watts.
    pub peak_power_w: f64,
    /// Hourly price in dollars (cloud instances only).
    pub hourly_rate: Option<f64>,
}

impl MachineSpec {
    /// Threads available for computation (Table I "Computing Threads"):
    /// `hw_threads − reserved_threads`, minimum 1.
    pub fn computing_threads(&self) -> u32 {
        self.hw_threads.saturating_sub(self.reserved_threads).max(1)
    }

    /// Peak sequential compute rate of one thread in giga-ops/s.
    pub fn thread_gops(&self) -> f64 {
        self.freq_ghz * self.ipc
    }

    /// Validate invariants; used by constructors of higher-level types.
    ///
    /// # Panics
    /// Panics on non-positive frequency/IPC/bandwidth or a power envelope
    /// with `peak < idle`.
    pub fn assert_valid(&self) {
        assert!(
            self.hw_threads >= 1,
            "{}: needs at least one hw thread",
            self.name
        );
        assert!(self.freq_ghz > 0.0, "{}: non-positive frequency", self.name);
        assert!(self.ipc > 0.0, "{}: non-positive ipc", self.name);
        assert!(
            self.mem_bw_gbps > 0.0,
            "{}: non-positive memory bandwidth",
            self.name
        );
        assert!(
            self.nic_gbps > 0.0,
            "{}: non-positive NIC bandwidth",
            self.name
        );
        assert!(
            self.peak_power_w >= self.idle_power_w && self.idle_power_w >= 0.0,
            "{}: inconsistent power envelope",
            self.name
        );
    }

    /// A derived spec running at a different frequency (used to emulate the
    /// frequency-scaled tiny servers of Case 3). Power scales with the
    /// frequency ratio (dynamic power ∝ f at fixed voltage — a conservative
    /// approximation).
    pub fn at_frequency(&self, freq_ghz: f64, new_name: impl Into<String>) -> MachineSpec {
        assert!(freq_ghz > 0.0, "frequency must be positive");
        let ratio = freq_ghz / self.freq_ghz;
        MachineSpec {
            name: new_name.into(),
            freq_ghz,
            idle_power_w: self.idle_power_w,
            peak_power_w: self.idle_power_w + (self.peak_power_w - self.idle_power_w) * ratio,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec {
            name: "test".into(),
            hw_threads: 8,
            reserved_threads: 2,
            freq_ghz: 2.5,
            ipc: 1.0,
            mem_bw_gbps: 12.0,
            nic_gbps: 10.0,
            idle_power_w: 50.0,
            peak_power_w: 120.0,
            hourly_rate: Some(0.4),
        }
    }

    #[test]
    fn computing_threads_subtracts_reserved() {
        assert_eq!(spec().computing_threads(), 6);
    }

    #[test]
    fn computing_threads_never_zero() {
        let mut s = spec();
        s.hw_threads = 2;
        assert_eq!(s.computing_threads(), 1);
        s.hw_threads = 1;
        assert_eq!(s.computing_threads(), 1);
    }

    #[test]
    fn thread_gops() {
        assert!((spec().thread_gops() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn valid_spec_passes() {
        spec().assert_valid();
    }

    #[test]
    #[should_panic(expected = "power envelope")]
    fn invalid_power_envelope_panics() {
        let mut s = spec();
        s.peak_power_w = 10.0;
        s.assert_valid();
    }

    #[test]
    fn frequency_scaling_reduces_dynamic_power() {
        let base = spec();
        let slow = base.at_frequency(1.25, "test_slow");
        assert_eq!(slow.freq_ghz, 1.25);
        assert_eq!(slow.idle_power_w, base.idle_power_w);
        assert!(slow.peak_power_w < base.peak_power_w);
        assert_eq!(slow.hw_threads, base.hw_threads);
        assert_eq!(slow.name, "test_slow");
    }
}
