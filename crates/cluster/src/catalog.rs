//! Table I: the machine catalog.
//!
//! Six Amazon EC2 instance types (prices as listed in the paper) plus the
//! two local Xeon E5 servers, and the frequency-scaled "tiny ARM-like"
//! node used to project future data centers (Case 3).
//!
//! Thread counts and hourly rates are the paper's exact Table I values.
//! The microarchitectural parameters (frequency, IPC, memory bandwidth,
//! power envelope) are the calibrated ground truth of our simulated
//! testbed: they are chosen so the model reproduces the paper's observed
//! *relative* behaviours — c4.2xlarge ≈ 1.2× m4.2xlarge, r3.2xlarge ≈ 1.1×,
//! Case 2 CCRs around 1 : 3.5, PageRank saturating at mid-size machines —
//! and they are invisible to every scheduling policy (policies see thread
//! counts or profiled times only).

use crate::machine::MachineSpec;

fn ec2(
    name: &str,
    hw_threads: u32,
    freq_ghz: f64,
    ipc: f64,
    mem_bw_gbps: f64,
    nic_gbps: f64,
    hourly_rate: f64,
) -> MachineSpec {
    let spec = MachineSpec {
        name: name.into(),
        hw_threads,
        reserved_threads: 2,
        freq_ghz,
        ipc,
        mem_bw_gbps,
        nic_gbps,
        // Synthesized envelope: EC2 energy is not measurable (the paper
        // only measures energy on the local servers), but the simulator
        // needs finite values.
        idle_power_w: 20.0 + 2.5 * hw_threads as f64,
        peak_power_w: 40.0 + 10.0 * hw_threads as f64,
        hourly_rate: Some(hourly_rate),
    };
    spec.assert_valid();
    spec
}

/// `c4.xlarge` — 4 HW threads / 2 computing, $0.209/h.
pub fn c4_xlarge() -> MachineSpec {
    ec2("c4.xlarge", 4, 2.9, 1.0, 8.0, 1.25, 0.209)
}

/// `c4.2xlarge` — 8 HW threads / 6 computing, $0.419/h.
pub fn c4_2xlarge() -> MachineSpec {
    ec2("c4.2xlarge", 8, 2.9, 1.0, 13.0, 2.5, 0.419)
}

/// `c4.4xlarge` — 16 HW threads / 14 computing, $0.838/h.
pub fn c4_4xlarge() -> MachineSpec {
    ec2("c4.4xlarge", 16, 2.9, 1.0, 22.0, 5.0, 0.838)
}

/// `c4.8xlarge` — 36 HW threads / 34 computing, $1.675/h.
pub fn c4_8xlarge() -> MachineSpec {
    ec2("c4.8xlarge", 36, 2.9, 1.0, 24.0, 10.0, 1.675)
}

/// `m4.2xlarge` — 8 HW threads / 6 computing, $0.479/h (general purpose;
/// lower clock than c4).
pub fn m4_2xlarge() -> MachineSpec {
    ec2("m4.2xlarge", 8, 2.4, 1.0, 12.5, 2.5, 0.479)
}

/// `r3.2xlarge` — 8 HW threads / 6 computing, $0.665/h (memory optimized;
/// more bandwidth, slightly better IPC).
pub fn r3_2xlarge() -> MachineSpec {
    ec2("r3.2xlarge", 8, 2.5, 1.05, 14.0, 2.5, 0.665)
}

/// Local "Xeon Server S" — 4 HW threads / 2 computing (Table I), 2.5 GHz.
pub fn xeon_s() -> MachineSpec {
    let spec = MachineSpec {
        name: "xeon_s".into(),
        hw_threads: 4,
        reserved_threads: 2,
        freq_ghz: 2.5,
        ipc: 1.0,
        mem_bw_gbps: 10.0,
        nic_gbps: 10.0,
        idle_power_w: 40.0,
        peak_power_w: 95.0,
        hourly_rate: None,
    };
    spec.assert_valid();
    spec
}

/// Local "Xeon Server L" — 12 HW threads / 10 computing, 2.5 GHz (the
/// paper's Case 2 "fast" machine; Case 3 caps it at 2.5 GHz too).
pub fn xeon_l() -> MachineSpec {
    let spec = MachineSpec {
        name: "xeon_l".into(),
        hw_threads: 12,
        reserved_threads: 2,
        freq_ghz: 2.5,
        ipc: 1.0,
        mem_bw_gbps: 25.0,
        nic_gbps: 10.0,
        idle_power_w: 65.0,
        peak_power_w: 180.0,
        hourly_rate: None,
    };
    spec.assert_valid();
    spec
}

/// The Case 3 "tiny" node: 4 HW threads at 1.8 GHz with ARM-class IPC and
/// a narrow memory system. Emulates the wimpy servers the paper projects
/// into future data centers.
pub fn tiny_arm() -> MachineSpec {
    let spec = MachineSpec {
        name: "tiny_arm".into(),
        hw_threads: 4,
        reserved_threads: 2,
        freq_ghz: 1.8,
        ipc: 0.75,
        mem_bw_gbps: 4.0,
        nic_gbps: 10.0,
        idle_power_w: 15.0,
        peak_power_w: 35.0,
        hourly_rate: None,
    };
    spec.assert_valid();
    spec
}

/// All eight Table I machines, in the paper's row order.
pub fn table1() -> Vec<MachineSpec> {
    vec![
        c4_xlarge(),
        c4_2xlarge(),
        m4_2xlarge(),
        r3_2xlarge(),
        c4_4xlarge(),
        c4_8xlarge(),
        xeon_s(),
        xeon_l(),
    ]
}

/// Look up a machine by its Table I / catalog name.
pub fn by_name(name: &str) -> Option<MachineSpec> {
    table1()
        .into_iter()
        .chain(std::iter::once(tiny_arm()))
        .find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_thread_counts_match_paper() {
        let expect: [(&str, u32, u32); 8] = [
            ("c4.xlarge", 4, 2),
            ("c4.2xlarge", 8, 6),
            ("m4.2xlarge", 8, 6),
            ("r3.2xlarge", 8, 6),
            ("c4.4xlarge", 16, 14),
            ("c4.8xlarge", 36, 34),
            ("xeon_s", 4, 2),
            ("xeon_l", 12, 10),
        ];
        let t1 = table1();
        assert_eq!(t1.len(), 8);
        for (spec, (name, hw, comp)) in t1.iter().zip(expect) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.hw_threads, hw, "{name}");
            assert_eq!(spec.computing_threads(), comp, "{name}");
        }
    }

    #[test]
    fn table1_prices_match_paper() {
        let prices = [
            ("c4.xlarge", 0.209),
            ("c4.2xlarge", 0.419),
            ("m4.2xlarge", 0.479),
            ("r3.2xlarge", 0.665),
            ("c4.4xlarge", 0.838),
            ("c4.8xlarge", 1.675),
        ];
        for (name, price) in prices {
            let m = by_name(name).unwrap();
            assert_eq!(m.hourly_rate, Some(price), "{name}");
        }
        assert_eq!(by_name("xeon_s").unwrap().hourly_rate, None);
    }

    #[test]
    fn all_specs_valid() {
        for m in table1().iter().chain(std::iter::once(&tiny_arm())) {
            m.assert_valid();
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("p5.48xlarge").is_none());
    }

    #[test]
    fn same_category_machines_share_clock() {
        assert_eq!(c4_xlarge().freq_ghz, c4_8xlarge().freq_ghz);
    }

    #[test]
    fn categories_differ_microarchitecturally() {
        // The whole point of Case 1: identical thread counts, different
        // real capability.
        let c4 = c4_2xlarge();
        let m4 = m4_2xlarge();
        let r3 = r3_2xlarge();
        assert_eq!(c4.computing_threads(), m4.computing_threads());
        assert_eq!(c4.computing_threads(), r3.computing_threads());
        assert!(c4.thread_gops() > m4.thread_gops());
        assert!(r3.mem_bw_gbps > m4.mem_bw_gbps);
    }

    #[test]
    fn tiny_arm_is_weaker_everywhere() {
        let tiny = tiny_arm();
        let s = xeon_s();
        assert!(tiny.thread_gops() < s.thread_gops());
        assert!(tiny.mem_bw_gbps < s.mem_bw_gbps);
        assert!(tiny.peak_power_w < s.peak_power_w);
    }
}
