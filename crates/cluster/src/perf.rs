//! The roofline + extended-Amdahl timing model.
//!
//! This module is the heart of the testbed substitution: it converts the
//! *actual work* an application performed (counted by the engine while
//! executing the real algorithm on the real partition) into *time* on a
//! modeled machine.
//!
//! Model structure, per application profile:
//!
//! ```text
//! eff(T)     = 1 / (s + (1 − s) / T^γ)          extended Amdahl
//! rate       = eff(T) · freq · ipc               giga-ops/s
//! ops        = edge_units·edge_flops + vertex_units·vertex_flops
//! bytes      = edge_units·edge_bytes·relief(d̄) + vertex_units·vertex_bytes
//! time       = max(ops / rate, bytes / mem_bw)   roofline
//! ```
//!
//! * `s` (serial fraction) and `γ` (parallel-efficiency exponent) shape how
//!   the application scales with thread count — this reproduces Fig 2's
//!   observation that PageRank saturates while Triangle Count keeps
//!   scaling sharply and Coloring/CC scale near-linearly.
//! * The roofline `max` makes memory-intensive applications saturate on
//!   big machines once bandwidth, not compute, is the binding resource.
//! * `relief(d̄)` models that denser graphs amortize per-vertex data traffic
//!   over more edges (the paper: "denser graphs require more computation
//!   power and hence result in more speedup on fast machines").
//!
//! None of these parameters are visible to any scheduling policy: the
//! prior-work estimator reads only thread counts, and the paper's method
//! only observes profiling *times*. The model is ground truth, standing in
//! for physical silicon.

use crate::machine::MachineSpec;
use hetgraph_core::{Graph, GraphMeta};

/// The shape features of a graph that the timing model reads.
///
/// * `avg_degree` drives the density-relief term (denser graphs amortize
///   per-vertex traffic).
/// * `hub_fraction` — the largest vertex's share of total adjacency work,
///   `d_max / (2|E|)` — drives the *hub-straggler* term: a vertex's gather
///   is a single task in PowerGraph-style engines, so the biggest hub
///   bounds intra-machine thread parallelism. Natural graphs and clean
///   power-law proxies have systematically different hub fractions, which
///   is a principal source of the paper's ~8 % proxy estimation error.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphShape {
    /// Average out-degree `|E| / |V|`.
    pub avg_degree: f64,
    /// `max total degree / (2 |E|)` in `[0, 1]`.
    pub hub_fraction: f64,
}

impl GraphShape {
    /// Measure a graph's shape (O(|V|) for the max-degree scan).
    pub fn of(graph: &Graph) -> Self {
        let e = graph.num_edges();
        if e == 0 {
            return GraphShape {
                avg_degree: 0.0,
                hub_fraction: 0.0,
            };
        }
        let d_max = graph.vertices().map(|v| graph.degree(v)).max().unwrap_or(0);
        GraphShape {
            avg_degree: graph.avg_degree(),
            hub_fraction: d_max as f64 / (2.0 * e as f64),
        }
    }

    /// Measure shape from a [`GraphMeta`] view — bit-identical to
    /// [`GraphShape::of`] on the graph the meta was taken from, so cost
    /// models see the same inputs regardless of the backing representation.
    pub fn of_meta(meta: &GraphMeta<'_>) -> Self {
        let e = meta.num_edges();
        if e == 0 {
            return GraphShape {
                avg_degree: 0.0,
                hub_fraction: 0.0,
            };
        }
        let d_max = meta.max_total_degree();
        GraphShape {
            avg_degree: meta.avg_degree(),
            hub_fraction: d_max as f64 / (2.0 * e as f64),
        }
    }

    /// Explicit construction (tests, synthetic sweeps).
    ///
    /// # Panics
    /// Panics on out-of-range values.
    pub fn new(avg_degree: f64, hub_fraction: f64) -> Self {
        assert!(avg_degree >= 0.0, "negative average degree");
        assert!(
            (0.0..=1.0).contains(&hub_fraction),
            "hub fraction out of range"
        );
        GraphShape {
            avg_degree,
            hub_fraction,
        }
    }
}

/// Abstract work units accumulated by the engine during execution.
///
/// `edge_units` are app-defined edge-grain operations (a gather of one
/// neighbor, one intersection probe, …); `vertex_units` are vertex-grain
/// operations (one apply). The split matters because their compute/memory
/// intensities differ and sparse graphs shift the balance toward vertex
/// work.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkCounts {
    /// Edge-grain work units.
    pub edge_units: f64,
    /// Vertex-grain work units.
    pub vertex_units: f64,
}

impl WorkCounts {
    /// Zero work.
    pub fn zero() -> Self {
        WorkCounts::default()
    }

    /// Elementwise sum.
    pub fn add(&mut self, other: WorkCounts) {
        self.edge_units += other.edge_units;
        self.vertex_units += other.vertex_units;
    }

    /// Whether there is no work at all.
    pub fn is_zero(&self) -> bool {
        self.edge_units == 0.0 && self.vertex_units == 0.0
    }
}

/// Ground-truth performance profile of one application (see module docs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AppProfile {
    /// Application name (for reports).
    pub name: String,
    /// Compute ops per edge unit.
    pub edge_flops: f64,
    /// Memory bytes per edge unit (before density relief).
    pub edge_bytes: f64,
    /// Compute ops per vertex unit.
    pub vertex_flops: f64,
    /// Memory bytes per vertex unit.
    pub vertex_bytes: f64,
    /// Amdahl serial fraction `s ∈ [0, 1)`.
    pub serial_fraction: f64,
    /// Parallel-efficiency exponent `γ ∈ (0, 1]`; 1 is pure Amdahl.
    pub parallel_exponent: f64,
    /// Hub-straggler sensitivity `κ ≥ 0`: the effective serial fraction is
    /// `s + κ · hub_fraction` (capped), modeling the largest vertex's
    /// gather as an indivisible task.
    pub skew_sensitivity: f64,
    /// Density-relief floor `c ∈ (0, 1]`: at infinite density, edge bytes
    /// shrink to `c · edge_bytes`.
    pub relief_floor: f64,
    /// Reference average degree at which relief is exactly 1.
    pub relief_ref_degree: f64,
}

impl AppProfile {
    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn assert_valid(&self) {
        assert!(
            (0.0..1.0).contains(&self.serial_fraction),
            "{}: serial fraction out of range",
            self.name
        );
        assert!(
            self.parallel_exponent > 0.0 && self.parallel_exponent <= 1.0,
            "{}: parallel exponent out of range",
            self.name
        );
        assert!(
            self.skew_sensitivity >= 0.0,
            "{}: negative skew sensitivity",
            self.name
        );
        assert!(
            self.relief_floor > 0.0 && self.relief_floor <= 1.0,
            "{}: relief floor out of range",
            self.name
        );
        assert!(
            self.relief_ref_degree > 0.0,
            "{}: relief reference degree",
            self.name
        );
        for (label, v) in [
            ("edge_flops", self.edge_flops),
            ("edge_bytes", self.edge_bytes),
            ("vertex_flops", self.vertex_flops),
            ("vertex_bytes", self.vertex_bytes),
        ] {
            assert!(v >= 0.0, "{}: negative {label}", self.name);
        }
    }

    /// Extended-Amdahl parallel efficiency at `threads` computing threads
    /// (pure profile, no graph shape — the hub-straggler term is added by
    /// [`AppProfile::parallel_efficiency_on`]).
    pub fn parallel_efficiency(&self, threads: u32) -> f64 {
        self.efficiency_with_serial(threads, self.serial_fraction)
    }

    /// Parallel efficiency on a concrete graph: the effective serial
    /// fraction is `s + κ · hub_fraction`, capped at 0.95.
    pub fn parallel_efficiency_on(&self, threads: u32, shape: &GraphShape) -> f64 {
        let s = (self.serial_fraction + self.skew_sensitivity * shape.hub_fraction).min(0.95);
        self.efficiency_with_serial(threads, s)
    }

    fn efficiency_with_serial(&self, threads: u32, s: f64) -> f64 {
        let t = (threads.max(1)) as f64;
        1.0 / (s + (1.0 - s) / t.powf(self.parallel_exponent))
    }

    /// Upper clamp of the density-relief multiplier. The spread between
    /// `relief_floor` and this cap bounds how much a graph's density can
    /// shift an application's compute/memory balance — and therefore how
    /// far a proxy's CCR can drift from a real graph's. The paper observes
    /// that drift at <10 %, which a [0.85, 1.1] band reproduces.
    pub const RELIEF_MAX: f64 = 1.1;

    /// Density-relief multiplier on edge bytes for a graph with average
    /// degree `avg_degree`. Clamped to `[relief_floor, RELIEF_MAX]`.
    pub fn density_relief(&self, avg_degree: f64) -> f64 {
        if avg_degree <= 0.0 {
            return Self::RELIEF_MAX;
        }
        let c = self.relief_floor;
        (c + (1.0 - c) * self.relief_ref_degree / avg_degree).clamp(c, Self::RELIEF_MAX)
    }

    /// Sustained compute rate of `machine` for this app on a graph of the
    /// given shape, in giga-ops/s.
    pub fn compute_rate_gops(&self, machine: &MachineSpec, shape: &GraphShape) -> f64 {
        self.parallel_efficiency_on(machine.computing_threads(), shape) * machine.thread_gops()
    }

    /// Time in seconds for `work` on `machine`, for a graph of the given
    /// shape (roofline of compute and memory time).
    pub fn time_seconds(
        &self,
        machine: &MachineSpec,
        work: &WorkCounts,
        shape: &GraphShape,
    ) -> f64 {
        let ops = work.edge_units * self.edge_flops + work.vertex_units * self.vertex_flops;
        let bytes = work.edge_units * self.edge_bytes * self.density_relief(shape.avg_degree)
            + work.vertex_units * self.vertex_bytes;
        let t_compute = ops / (self.compute_rate_gops(machine, shape) * 1e9);
        let t_mem = bytes / (machine.mem_bw_gbps * 1e9);
        t_compute.max(t_mem)
    }

    /// Whether `machine` is memory-bound (vs compute-bound) for `work` on a
    /// graph of the given shape. Diagnostic used by the ablation benches.
    pub fn is_memory_bound(
        &self,
        machine: &MachineSpec,
        work: &WorkCounts,
        shape: &GraphShape,
    ) -> bool {
        let ops = work.edge_units * self.edge_flops + work.vertex_units * self.vertex_flops;
        let bytes = work.edge_units * self.edge_bytes * self.density_relief(shape.avg_degree)
            + work.vertex_units * self.vertex_bytes;
        bytes / (machine.mem_bw_gbps) > ops / self.compute_rate_gops(machine, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn compute_heavy() -> AppProfile {
        AppProfile {
            name: "compute_heavy".into(),
            edge_flops: 600.0,
            edge_bytes: 16.0,
            vertex_flops: 20.0,
            vertex_bytes: 8.0,
            serial_fraction: 0.0,
            parallel_exponent: 0.7,
            skew_sensitivity: 0.2,
            relief_floor: 0.7,
            relief_ref_degree: 10.0,
        }
    }

    fn memory_heavy() -> AppProfile {
        AppProfile {
            name: "memory_heavy".into(),
            edge_flops: 60.0,
            edge_bytes: 100.0,
            vertex_flops: 30.0,
            vertex_bytes: 16.0,
            serial_fraction: 0.02,
            parallel_exponent: 1.0,
            skew_sensitivity: 0.3,
            relief_floor: 0.7,
            relief_ref_degree: 10.0,
        }
    }

    fn shape(avg_degree: f64) -> GraphShape {
        GraphShape::new(avg_degree, 0.01)
    }

    fn work(edges: f64) -> WorkCounts {
        WorkCounts {
            edge_units: edges,
            vertex_units: edges / 10.0,
        }
    }

    #[test]
    fn parallel_efficiency_monotone_in_threads() {
        let p = memory_heavy();
        let mut prev = 0.0;
        for t in [1u32, 2, 4, 8, 16, 32] {
            let e = p.parallel_efficiency(t);
            assert!(e > prev, "efficiency must grow with threads");
            assert!(e <= t as f64 + 1e-9, "cannot exceed linear speedup");
            prev = e;
        }
    }

    #[test]
    fn serial_fraction_caps_efficiency() {
        let p = memory_heavy(); // s = 0.02 -> cap 50x
        assert!(p.parallel_efficiency(10_000) < 50.0 + 1e-9);
    }

    #[test]
    fn more_threads_never_slower() {
        let p = compute_heavy();
        let small = catalog::c4_xlarge();
        let big = catalog::c4_8xlarge();
        let w = work(1e6);
        assert!(p.time_seconds(&big, &w, &shape(10.0)) < p.time_seconds(&small, &w, &shape(10.0)));
    }

    #[test]
    fn memory_heavy_app_saturates_compute_heavy_does_not() {
        // The Fig 2 phenomenon: speedup from mid to big machine is much
        // smaller for a memory-bound app than a compute-bound one.
        let mid = catalog::c4_4xlarge();
        let big = catalog::c4_8xlarge();
        let w = work(1e7);
        let mem = memory_heavy();
        let cpu = compute_heavy();
        let mem_gain =
            mem.time_seconds(&mid, &w, &shape(12.0)) / mem.time_seconds(&big, &w, &shape(12.0));
        let cpu_gain =
            cpu.time_seconds(&mid, &w, &shape(12.0)) / cpu.time_seconds(&big, &w, &shape(12.0));
        assert!(
            cpu_gain > mem_gain + 0.2,
            "cpu gain {cpu_gain} should exceed mem gain {mem_gain}"
        );
        assert!(mem.is_memory_bound(&big, &w, &shape(12.0)));
        assert!(!cpu.is_memory_bound(&big, &w, &shape(12.0)));
    }

    #[test]
    fn density_relief_clamps() {
        let p = memory_heavy();
        assert!((p.density_relief(10.0) - 1.0).abs() < 1e-12);
        assert!((p.density_relief(1e9) - p.relief_floor).abs() < 1e-6);
        assert_eq!(p.density_relief(0.0), AppProfile::RELIEF_MAX);
        assert!(
            p.density_relief(2.0) > 1.0,
            "sparse graphs pay more per edge"
        );
        assert!(p.density_relief(2.0) <= AppProfile::RELIEF_MAX);
    }

    #[test]
    fn denser_graphs_favor_fast_machines() {
        // CCR between a big and a small machine grows with density for a
        // memory-leaning app (the paper's density observation).
        let p = memory_heavy();
        let small = catalog::c4_xlarge();
        let big = catalog::c4_8xlarge();
        let w = work(1e7);
        let ccr_sparse =
            p.time_seconds(&small, &w, &shape(2.0)) / p.time_seconds(&big, &w, &shape(2.0));
        let ccr_dense =
            p.time_seconds(&small, &w, &shape(20.0)) / p.time_seconds(&big, &w, &shape(20.0));
        assert!(
            ccr_dense >= ccr_sparse,
            "dense {ccr_dense} should not be below sparse {ccr_sparse}"
        );
    }

    #[test]
    fn hub_straggler_hurts_many_thread_machines_more() {
        // A hubby graph reduces parallel efficiency; the penalty must be
        // larger where there are more threads to idle.
        let p = memory_heavy(); // skew_sensitivity 0.3
        let smooth = GraphShape::new(10.0, 0.001);
        let hubby = GraphShape::new(10.0, 0.08);
        let few = p.parallel_efficiency_on(2, &hubby) / p.parallel_efficiency_on(2, &smooth);
        let many = p.parallel_efficiency_on(34, &hubby) / p.parallel_efficiency_on(34, &smooth);
        assert!(
            many < few,
            "34-thread penalty {many} must exceed 2-thread penalty {few}"
        );
        assert!(many < 0.8, "hub penalty should be visible: {many}");
    }

    #[test]
    fn hub_fraction_changes_ccr_between_machines() {
        // The proxy-error mechanism: two graphs with equal density but
        // different hub fractions yield different capability ratios.
        let p = memory_heavy();
        let small = catalog::xeon_s();
        let big = catalog::xeon_l();
        let w = work(1e7);
        let ccr = |shape: &GraphShape| {
            p.time_seconds(&small, &w, shape) / p.time_seconds(&big, &w, shape)
        };
        let smooth = ccr(&GraphShape::new(10.0, 0.001));
        let hubby = ccr(&GraphShape::new(10.0, 0.08));
        // The shift is muted when the big machine is memory-bound (the hub
        // term only throttles compute), but must still be visible.
        assert!(
            (smooth - hubby).abs() / smooth > 0.02,
            "hub fraction must move the CCR: {smooth} vs {hubby}"
        );
    }

    #[test]
    fn graph_shape_measurement() {
        use hetgraph_core::{Edge, EdgeList};
        // Star: hub degree n-1 of 2(n-1) total half-degrees.
        let n = 11u32;
        let edges = (1..n).map(|v| Edge::new(0, v)).collect();
        let g = Graph::from_edge_list(EdgeList::from_edges(n, edges));
        let shape = GraphShape::of(&g);
        assert!((shape.hub_fraction - 0.5).abs() < 1e-12);
        assert!((shape.avg_degree - 10.0 / 11.0).abs() < 1e-12);
        let empty = Graph::from_edge_list(EdgeList::new(4));
        assert_eq!(GraphShape::of(&empty).hub_fraction, 0.0);
    }

    #[test]
    fn time_scales_linearly_with_work() {
        let p = compute_heavy();
        let m = catalog::c4_2xlarge();
        let t1 = p.time_seconds(&m, &work(1e6), &shape(10.0));
        let t2 = p.time_seconds(&m, &work(2e6), &shape(10.0));
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_takes_zero_time() {
        let p = compute_heavy();
        let m = catalog::c4_xlarge();
        assert_eq!(p.time_seconds(&m, &WorkCounts::zero(), &shape(10.0)), 0.0);
        assert!(WorkCounts::zero().is_zero());
    }

    #[test]
    fn work_counts_add() {
        let mut w = work(10.0);
        w.add(work(5.0));
        assert!((w.edge_units - 15.0).abs() < 1e-12);
        assert!((w.vertex_units - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "serial fraction")]
    fn invalid_profile_panics() {
        let mut p = compute_heavy();
        p.serial_fraction = 1.5;
        p.assert_valid();
    }
}
