//! Mid-run machine perturbations.
//!
//! The paper's proxy-guided weighting is static: it assumes machines keep
//! the speed they were profiled at. Real clusters do not — thermal
//! throttling, noisy neighbors, or background jobs slow a machine down
//! mid-run and later release it. A [`PerturbationSchedule`] scripts such
//! events against *superstep* time (slow machine `m` to 40% between steps
//! 5 and 20), so the simulator can replay scenarios a static placement
//! cannot handle and a dynamic rebalancer should.

use crate::machine::MachineSpec;

/// One scripted slowdown (or speedup) of one machine over a superstep
/// interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbation {
    /// Index of the affected machine in the cluster's machine order.
    pub machine: usize,
    /// First superstep (inclusive) at which the perturbation is active.
    pub from_step: usize,
    /// First superstep at which the machine has recovered; `None` means
    /// it never recovers.
    pub until_step: Option<usize>,
    /// Multiplier on the machine's core clock while active (0.4 = the
    /// machine runs at 40% of nominal frequency).
    pub frequency_scale: f64,
}

impl Perturbation {
    /// Whether this perturbation is active at `step`.
    pub fn active_at(&self, step: usize) -> bool {
        step >= self.from_step && self.until_step.is_none_or(|u| step < u)
    }
}

/// A script of [`Perturbation`]s applied to a cluster, indexed by
/// superstep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerturbationSchedule {
    perturbations: Vec<Perturbation>,
}

impl PerturbationSchedule {
    /// An empty schedule (no machine is ever perturbed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a slowdown of `machine` to `frequency_scale` of nominal clock,
    /// active from superstep `from_step` until (exclusive) `until_step`
    /// (`None` = forever).
    ///
    /// # Panics
    /// Panics if `frequency_scale` is not positive or the interval is
    /// empty.
    pub fn slowdown(
        mut self,
        machine: usize,
        from_step: usize,
        until_step: Option<usize>,
        frequency_scale: f64,
    ) -> Self {
        assert!(frequency_scale > 0.0, "frequency scale must be positive");
        if let Some(u) = until_step {
            assert!(u > from_step, "perturbation interval must be non-empty");
        }
        self.perturbations.push(Perturbation {
            machine,
            from_step,
            until_step,
            frequency_scale,
        });
        self
    }

    /// Whether the schedule has no perturbations at all.
    pub fn is_empty(&self) -> bool {
        self.perturbations.is_empty()
    }

    /// The scripted perturbations.
    pub fn perturbations(&self) -> &[Perturbation] {
        &self.perturbations
    }

    /// The effective machine specs at `step`: `None` when no perturbation
    /// is active (the caller keeps using `base` untouched — the common
    /// path allocates nothing), otherwise a copy of `base` with each
    /// active machine's clock scaled via
    /// [`MachineSpec::at_frequency`] (names are preserved; stacked
    /// perturbations on one machine multiply).
    ///
    /// # Panics
    /// Panics if a perturbation's machine index is out of range for
    /// `base`.
    pub fn specs_at(&self, step: usize, base: &[MachineSpec]) -> Option<Vec<MachineSpec>> {
        let active: Vec<&Perturbation> = self
            .perturbations
            .iter()
            .filter(|p| p.active_at(step))
            .collect();
        if active.is_empty() {
            return None;
        }
        let mut specs = base.to_vec();
        for p in active {
            assert!(
                p.machine < specs.len(),
                "perturbation machine {} out of range",
                p.machine
            );
            let m = &specs[p.machine];
            let name = m.name.clone();
            specs[p.machine] = m.at_frequency(m.freq_ghz * p.frequency_scale, name);
        }
        Some(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn empty_schedule_never_perturbs() {
        let s = PerturbationSchedule::new();
        assert!(s.is_empty());
        let base = vec![catalog::xeon_s(), catalog::xeon_l()];
        for step in 0..10 {
            assert!(s.specs_at(step, &base).is_none());
        }
    }

    #[test]
    fn slowdown_window_scales_clock_and_recovers() {
        let s = PerturbationSchedule::new().slowdown(1, 2, Some(5), 0.5);
        let base = vec![catalog::xeon_s(), catalog::xeon_l()];
        assert!(s.specs_at(0, &base).is_none());
        assert!(s.specs_at(1, &base).is_none());
        for step in 2..5 {
            let specs = s.specs_at(step, &base).expect("active window");
            assert_eq!(specs[0], base[0]);
            assert!((specs[1].freq_ghz - base[1].freq_ghz * 0.5).abs() < 1e-12);
            assert_eq!(specs[1].name, base[1].name, "name survives the scaling");
        }
        assert!(s.specs_at(5, &base).is_none(), "recovered at until_step");
    }

    #[test]
    fn open_ended_slowdown_never_recovers() {
        let s = PerturbationSchedule::new().slowdown(0, 3, None, 0.25);
        let base = vec![catalog::xeon_s()];
        assert!(s.specs_at(2, &base).is_none());
        assert!(s.specs_at(1_000, &base).is_some());
    }

    #[test]
    fn stacked_perturbations_multiply() {
        let s = PerturbationSchedule::new()
            .slowdown(0, 0, None, 0.5)
            .slowdown(0, 0, None, 0.5);
        let base = vec![catalog::xeon_s()];
        let specs = s.specs_at(0, &base).expect("active");
        assert!((specs[0].freq_ghz - base[0].freq_ghz * 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_machine_panics() {
        let s = PerturbationSchedule::new().slowdown(5, 0, None, 0.5);
        s.specs_at(0, &[catalog::xeon_s()]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_rejected() {
        let _ = PerturbationSchedule::new().slowdown(0, 4, Some(4), 0.5);
    }
}
