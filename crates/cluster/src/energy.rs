//! Static + dynamic power model (the RAPL substitute).
//!
//! A machine draws `idle_power_w` whenever powered and ramps linearly to
//! `peak_power_w` at full utilization. During a BSP superstep each machine
//! is busy for its own compute time and then idles at the barrier until the
//! slowest machine arrives. Energy is the integral of power over the
//! schedule — so better load balance saves energy twice: shorter makespan
//! (less static energy everywhere) and less idle-at-barrier waste.

use crate::machine::MachineSpec;

/// Per-machine energy accumulator over a simulated schedule.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyReport {
    /// Joules per machine, indexed like the cluster.
    pub per_machine_j: Vec<f64>,
    /// Busy seconds per machine.
    pub busy_s: Vec<f64>,
    /// Idle-at-barrier seconds per machine.
    pub idle_s: Vec<f64>,
}

impl EnergyReport {
    /// An empty report for `n` machines.
    pub fn new(n: usize) -> Self {
        EnergyReport {
            per_machine_j: vec![0.0; n],
            busy_s: vec![0.0; n],
            idle_s: vec![0.0; n],
        }
    }

    /// Total joules across machines.
    pub fn total_j(&self) -> f64 {
        self.per_machine_j.iter().sum()
    }

    /// Total busy seconds across machines.
    pub fn total_busy_s(&self) -> f64 {
        self.busy_s.iter().sum()
    }

    /// Fraction of wall-clock machine-time spent idle (0 if nothing ran).
    pub fn idle_fraction(&self) -> f64 {
        let busy: f64 = self.busy_s.iter().sum();
        let idle: f64 = self.idle_s.iter().sum();
        if busy + idle == 0.0 {
            0.0
        } else {
            idle / (busy + idle)
        }
    }
}

/// Energy model over a fixed set of machines.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    machines: Vec<MachineSpec>,
}

impl EnergyModel {
    /// Create a model over the given machines.
    pub fn new(machines: Vec<MachineSpec>) -> Self {
        for m in &machines {
            m.assert_valid();
        }
        EnergyModel { machines }
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the model covers no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Instantaneous power of machine `i` at `utilization ∈ [0, 1]`.
    pub fn power_w(&self, i: usize, utilization: f64) -> f64 {
        let m = &self.machines[i];
        let u = utilization.clamp(0.0, 1.0);
        m.idle_power_w + (m.peak_power_w - m.idle_power_w) * u
    }

    /// Account one superstep: machine `i` was busy `busy_s` seconds (at
    /// full utilization) inside a superstep whose wall-clock length is
    /// `step_s`; the difference is barrier idle time.
    ///
    /// # Panics
    /// Panics if `busy_s > step_s` (a machine cannot be busy longer than
    /// the superstep it is inside).
    pub fn account_step(&self, report: &mut EnergyReport, i: usize, busy_s: f64, step_s: f64) {
        assert!(
            busy_s <= step_s + 1e-9,
            "machine {i} busy {busy_s}s exceeds superstep {step_s}s"
        );
        let idle = (step_s - busy_s).max(0.0);
        report.busy_s[i] += busy_s;
        report.idle_s[i] += idle;
        report.per_machine_j[i] += busy_s * self.power_w(i, 1.0) + idle * self.power_w(i, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn model() -> EnergyModel {
        EnergyModel::new(vec![catalog::xeon_s(), catalog::xeon_l()])
    }

    #[test]
    fn power_interpolates_linearly() {
        let m = model();
        let idle = m.power_w(0, 0.0);
        let peak = m.power_w(0, 1.0);
        let half = m.power_w(0, 0.5);
        assert_eq!(idle, 40.0);
        assert_eq!(peak, 95.0);
        assert!((half - 67.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_clamped() {
        let m = model();
        assert_eq!(m.power_w(0, -1.0), m.power_w(0, 0.0));
        assert_eq!(m.power_w(0, 2.0), m.power_w(0, 1.0));
    }

    #[test]
    fn account_splits_busy_and_idle() {
        let m = model();
        let mut r = EnergyReport::new(2);
        m.account_step(&mut r, 0, 2.0, 5.0);
        assert_eq!(r.busy_s[0], 2.0);
        assert_eq!(r.idle_s[0], 3.0);
        let expected = 2.0 * 95.0 + 3.0 * 40.0;
        assert!((r.per_machine_j[0] - expected).abs() < 1e-9);
        assert_eq!(r.per_machine_j[1], 0.0);
    }

    #[test]
    fn balanced_schedule_uses_less_energy_than_imbalanced() {
        // Same total work (4s of busy time across 2 identical machines),
        // but balanced finishes the superstep in 2s instead of 4s.
        let m = EnergyModel::new(vec![catalog::xeon_s(), catalog::xeon_s()]);
        let mut balanced = EnergyReport::new(2);
        m.account_step(&mut balanced, 0, 2.0, 2.0);
        m.account_step(&mut balanced, 1, 2.0, 2.0);
        let mut skewed = EnergyReport::new(2);
        m.account_step(&mut skewed, 0, 4.0, 4.0);
        m.account_step(&mut skewed, 1, 0.0, 4.0);
        assert!(balanced.total_j() < skewed.total_j());
    }

    #[test]
    #[should_panic(expected = "exceeds superstep")]
    fn busy_beyond_step_panics() {
        let m = model();
        let mut r = EnergyReport::new(2);
        m.account_step(&mut r, 0, 5.0, 2.0);
    }

    #[test]
    fn idle_fraction() {
        let m = model();
        let mut r = EnergyReport::new(2);
        m.account_step(&mut r, 0, 1.0, 4.0);
        m.account_step(&mut r, 1, 4.0, 4.0);
        assert!((r.idle_fraction() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(EnergyReport::new(1).idle_fraction(), 0.0);
    }
}
