//! # hetgraph-cluster
//!
//! Heterogeneous machine and cluster models — the simulated substrate that
//! replaces the paper's physical EC2 + Xeon testbed (see `DESIGN.md` for the
//! substitution argument).
//!
//! - [`machine`] — [`MachineSpec`]: cores, frequency, per-core IPC, memory
//!   bandwidth, reserved communication threads, power envelope, pricing.
//! - [`catalog`] — Table I: the six EC2 instance types and the local Xeon
//!   servers, plus the frequency-scaled "tiny ARM-like" node of Case 3.
//! - [`perf`] — the roofline + Amdahl timing model: application work counts
//!   (ops and bytes) → seconds on a given machine. This model is what makes
//!   different applications scale differently with thread count (Fig 2),
//!   which is the phenomenon the whole paper is about.
//! - [`energy`] — static + dynamic power integration (replaces RAPL).
//! - [`network`] — analytic communication model for mirror synchronization.
//! - [`cluster`] — a set of machines with group structure (one profiling
//!   run per machine *type*, as in Section III-B).
//! - [`perturb`] — scripted mid-run machine slowdowns/recoveries, indexed
//!   by superstep, for scenarios the static placement cannot handle.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod cluster;
pub mod energy;
pub mod machine;
pub mod network;
pub mod perf;
pub mod perturb;

pub use cluster::Cluster;
pub use energy::{EnergyModel, EnergyReport};
pub use machine::MachineSpec;
pub use network::{NetworkModel, MIGRATION_BYTES_PER_EDGE};
pub use perf::{AppProfile, GraphShape, WorkCounts};
pub use perturb::{Perturbation, PerturbationSchedule};
