//! Analytic communication model.
//!
//! PowerGraph synchronizes vertex replicas (mirrors) at superstep
//! boundaries: gather partials flow mirror → master, updated vertex data
//! flows master → mirror. The volume is proportional to the number of
//! *active* mirrors; the time is that volume over the machine's NIC
//! bandwidth, plus a fixed barrier latency.
//!
//! The model is deliberately simple — the paper explicitly scopes
//! communication optimization out ("minimizing communication overheads …
//! is beyond the scope of this paper") — but it must exist: barrier latency
//! and sync volume are what compress end-to-end speedups below raw
//! compute-ratio predictions, which the paper's absolute numbers reflect.

use crate::machine::MachineSpec;

/// Bytes shipped per migrated edge: the edge record itself plus the
/// replica/master bookkeeping and framing that travels with it when a
/// rebalancer moves placement mid-run. One number for all apps — migration
/// ships topology, not vertex state (the new owner re-gathers next step).
pub const MIGRATION_BYTES_PER_EDGE: f64 = 32.0;

/// Communication model parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkModel {
    /// Bytes exchanged per active mirror per superstep (gather partial up
    /// + vertex data down).
    pub bytes_per_mirror_sync: f64,
    /// Fixed per-superstep barrier latency in seconds.
    pub barrier_latency_s: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        // 64 bytes ≈ an 8-byte accumulator up + an 8-byte value down, plus
        // message headers and serialization framing in both directions;
        // 1 ms barrier ≈ a broadcast + reduction over a ToR switch.
        NetworkModel {
            bytes_per_mirror_sync: 64.0,
            barrier_latency_s: 1e-3,
        }
    }
}

impl NetworkModel {
    /// Seconds for machine `m` to synchronize `active_mirrors` mirror
    /// replicas it hosts or masters.
    pub fn sync_time_s(&self, m: &MachineSpec, active_mirrors: u64) -> f64 {
        let bytes = active_mirrors as f64 * self.bytes_per_mirror_sync;
        bytes / (m.nic_gbps * 1e9 / 8.0)
    }

    /// Communication wall-clock of one superstep: the slowest machine's
    /// sync time plus the barrier. A single-machine cluster has neither
    /// mirrors nor a barrier (the paper's profiling runs machines in
    /// isolation precisely to measure communication-free compute).
    pub fn step_comm_s(&self, machines: &[MachineSpec], active_mirrors: &[u64]) -> f64 {
        assert_eq!(
            machines.len(),
            active_mirrors.len(),
            "one mirror count per machine"
        );
        if machines.len() <= 1 {
            return 0.0;
        }
        let slowest = machines
            .iter()
            .zip(active_mirrors)
            .map(|(m, &am)| self.sync_time_s(m, am))
            .fold(0.0f64, f64::max);
        slowest + self.barrier_latency_s
    }

    /// Seconds to ship `bytes` of migration payload from `src` to `dst`:
    /// the transfer is gated by the slower of the two NICs. Transfers
    /// between distinct machine pairs overlap, so a batch's cost is the
    /// max over its pairs (plus one barrier), not the sum.
    pub fn migration_transfer_s(&self, src: &MachineSpec, dst: &MachineSpec, bytes: f64) -> f64 {
        let gbps = src.nic_gbps.min(dst.nic_gbps);
        bytes / (gbps * 1e9 / 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn sync_time_scales_with_mirrors() {
        let nm = NetworkModel::default();
        let m = catalog::xeon_s();
        let t1 = nm.sync_time_s(&m, 1_000);
        let t2 = nm.sync_time_s(&m, 2_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_nic_syncs_faster() {
        let nm = NetworkModel::default();
        let slow = catalog::c4_xlarge(); // 1.25 Gb/s
        let fast = catalog::c4_8xlarge(); // 10 Gb/s
        assert!(nm.sync_time_s(&fast, 10_000) < nm.sync_time_s(&slow, 10_000));
    }

    #[test]
    fn step_comm_includes_barrier() {
        let nm = NetworkModel::default();
        let ms = vec![catalog::xeon_s(), catalog::xeon_l()];
        let t = nm.step_comm_s(&ms, &[0, 0]);
        assert!((t - nm.barrier_latency_s).abs() < 1e-12);
    }

    #[test]
    fn step_comm_gated_by_slowest() {
        let nm = NetworkModel::default();
        let ms = vec![catalog::c4_xlarge(), catalog::c4_8xlarge()];
        let t = nm.step_comm_s(&ms, &[1_000_000, 1_000_000]);
        let expected = nm.sync_time_s(&ms[0], 1_000_000) + nm.barrier_latency_s;
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "per machine")]
    fn mismatched_lengths_panic() {
        NetworkModel::default().step_comm_s(&[catalog::xeon_s(), catalog::xeon_l()], &[1, 2, 3]);
    }

    #[test]
    fn single_machine_has_no_comm() {
        let nm = NetworkModel::default();
        assert_eq!(nm.step_comm_s(&[catalog::xeon_s()], &[1_000]), 0.0);
    }

    #[test]
    fn migration_transfer_gated_by_slower_nic() {
        let nm = NetworkModel::default();
        let slow = catalog::c4_xlarge(); // 1.25 Gb/s
        let fast = catalog::c4_8xlarge(); // 10 Gb/s
        let bytes = 1e6;
        let t = nm.migration_transfer_s(&slow, &fast, bytes);
        assert!((t - bytes / (slow.nic_gbps * 1e9 / 8.0)).abs() < 1e-15);
        // Symmetric: direction does not change the bottleneck.
        assert_eq!(t, nm.migration_transfer_s(&fast, &slow, bytes));
    }
}
